//! Every recorded `BENCH_*.json` in the repo root must parse against the
//! shared schema (`graphex_report::bench`): the five required top-level
//! keys, typed correctly, with a non-empty results object. A bench bin
//! that drifts its output shape fails here before the report renders a
//! broken page.

use graphex_report::{discover_bench_files, BenchDoc};
use std::path::Path;

fn repo_root() -> &'static Path {
    // This test is a target of crates/suite; the repo root is two up.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn every_recorded_bench_document_matches_the_schema() {
    let files = discover_bench_files(repo_root());
    assert!(
        files.len() >= 8,
        "expected the repo's recorded BENCH_*.json set, found {}: {files:?}",
        files.len()
    );
    for path in files {
        let name = path.file_name().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = BenchDoc::parse(name, &text)
            .unwrap_or_else(|e| panic!("schema violation: {e}"));
        assert!(!doc.bench.is_empty(), "{name}: empty bench id");
        assert!(!doc.results.is_empty(), "{name}: no results");
        // Each doc must carry at least one numeric (chartable) result.
        assert!(
            doc.results.iter().any(|r| r.value.is_some()),
            "{name}: no numeric result values"
        );
        // Dates are YYYY-MM-DD (bench bins stamp via --date).
        assert!(
            doc.date.len() == 10 && doc.date.as_bytes()[4] == b'-',
            "{name}: date {:?} is not YYYY-MM-DD",
            doc.date
        );
    }
}

#[test]
fn the_full_bench_set_renders_into_one_self_contained_page() {
    let docs: Vec<BenchDoc> = discover_bench_files(repo_root())
        .iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_str().unwrap();
            BenchDoc::parse(name, &std::fs::read_to_string(path).unwrap()).unwrap()
        })
        .collect();
    let page = graphex_report::render(&graphex_report::ReportInputs {
        generated: "test".into(),
        benches: docs.clone(),
        ..Default::default()
    });
    for doc in &docs {
        assert!(page.contains(&doc.file), "page missing {}", doc.file);
    }
    for forbidden in ["http://", "https://", "<script", "src=", "href=", "url("] {
        assert!(!page.contains(forbidden), "page contains forbidden {forbidden:?}");
    }
}

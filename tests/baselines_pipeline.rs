//! Integration across baselines + core: all six models trained on one
//! simulated category behave per their paper-documented contracts.

use graphex_baselines::fasttext::FastTextConfig;
use graphex_baselines::{
    FastTextLike, GraphExRecommender, Graphite, ItemRef, Recommender, RulesEngine, SlEmb, SlQuery,
};
use graphex_suite::{tiny_dataset, tiny_model};

fn all_models(ds: &graphex_marketsim::CategoryDataset) -> Vec<Box<dyn Recommender>> {
    vec![
        Box::new(FastTextLike::train(ds, FastTextConfig { epochs: 10, ..Default::default() })),
        Box::new(SlEmb::train(ds, 25, 0.05)),
        Box::new(SlQuery::train(ds, 0.2)),
        Box::new(Graphite::train(ds, 512)),
        Box::new(RulesEngine::train(ds, 1)),
        Box::new(GraphExRecommender::new(tiny_model(ds))),
    ]
}

#[test]
fn every_model_produces_output_for_clicked_items() {
    let ds = tiny_dataset(0xB1);
    let models = all_models(&ds);
    // A clicked item with enough history that even the co-click models work.
    let item_id = ds
        .train_log
        .item_clicks
        .iter()
        .position(|a| a.len() >= 2)
        .expect("clicked item") as u32;
    let item = &ds.marketplace.items[item_id as usize];
    let item_ref = ItemRef::known(item.id, &item.title, item.leaf);
    for model in &models {
        let recs = model.recommend(&item_ref, 20);
        assert!(!recs.is_empty(), "{} produced nothing for a well-clicked item", model.name());
        assert!(recs.len() <= 20, "{} exceeded k", model.name());
        // Scores are non-increasing.
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score, "{} unsorted", model.name());
        }
    }
}

#[test]
fn cold_start_contract_matches_paper_table1() {
    // RE and SL-query cannot serve new items; fastText, Graphite, SL-emb
    // and GraphEx can (cold-start capability, paper Sec. II).
    let ds = tiny_dataset(0xB2);
    let models = all_models(&ds);
    let template = &ds.marketplace.items[10];
    let cold = ItemRef::cold(&template.title, template.leaf);
    for model in &models {
        let recs = model.recommend(&cold, 20);
        match model.name() {
            "RE" | "SL-query" => {
                assert!(!model.cold_start_capable());
                assert!(recs.is_empty(), "{} served a cold item", model.name());
            }
            _ => {
                assert!(model.cold_start_capable());
                assert!(!recs.is_empty(), "{} failed on a cold item", model.name());
            }
        }
    }
}

#[test]
fn model_size_ordering_matches_figure6b() {
    // fastText's dense matrices dwarf GraphEx's integer CSR model.
    let ds = tiny_dataset(0xB3);
    let models = all_models(&ds);
    let size = |name: &str| {
        models.iter().find(|m| m.name() == name).map(|m| m.size_bytes()).unwrap_or(0)
    };
    assert!(
        size("fastText") > 3 * size("GraphEx"),
        "fastText {} should dwarf GraphEx {}",
        size("fastText"),
        size("GraphEx")
    );
}

#[test]
fn graphex_recommends_unclicked_head_queries() {
    // The de-biasing claim: GraphEx can recommend a head query that has
    // *zero* clicks for the item (MNAR blind spot of click-trained models).
    let ds = tiny_dataset(0xB4);
    let graphex = GraphExRecommender::new(tiny_model(&ds));
    let oracle = ds.oracle();
    let mut found = false;
    for item in ds.test_items(80, 9) {
        let clicked: Vec<&str> = ds.train_log.item_clicks[item.id as usize]
            .iter()
            .map(|&(q, _)| ds.queries[q as usize].text.as_str())
            .collect();
        for rec in graphex.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 10) {
            if !clicked.contains(&rec.text.as_str()) && oracle.is_relevant(item, &rec.text) {
                found = true;
                break;
            }
        }
        if found {
            break;
        }
    }
    assert!(found, "GraphEx never expanded beyond the click associations");
}

#[test]
fn click_trained_models_cannot_leave_the_click_vocabulary() {
    // The structural limitation GraphEx avoids: every fastText/Graphite/RE
    // prediction is a query someone already clicked.
    let ds = tiny_dataset(0xB5);
    let models = all_models(&ds);
    let clicked: std::collections::BTreeSet<&str> = ds
        .train_log
        .query_clicks
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(q, _)| ds.queries[q].text.as_str())
        .collect();
    for item in ds.test_items(30, 5) {
        let item_ref = ItemRef::known(item.id, &item.title, item.leaf);
        for model in &models {
            if !matches!(model.name(), "fastText" | "Graphite" | "RE") {
                continue;
            }
            for rec in model.recommend(&item_ref, 20) {
                assert!(
                    clicked.contains(rec.text.as_str()),
                    "{} predicted outside the click vocabulary: {}",
                    model.name(),
                    rec.text
                );
            }
        }
    }
}

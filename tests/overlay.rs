//! NRT overlay serving gates (the PR-8 CI gate):
//!
//! 1. **Compaction equivalence** — applying upserts to an overlay and
//!    then compacting them (journal → delta build over the base
//!    snapshot) yields a snapshot **byte-identical** to a direct
//!    rebuild of the union corpus. The overlay is a latency shortcut,
//!    never a semantic fork.
//! 2. **Live overlay under fire** — concurrent upserts and reads over
//!    HTTP with zero 5xx; every upserted leaf is servable on the very
//!    next request after its ack; a mid-run compaction publish
//!    hot-swaps the base under traffic, and the final answers for
//!    every upserted leaf are identical to a direct rebuild's.

use graphex_core::{Engine, GraphExConfig, InferRequest, LeafId};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{
    build, overlay_journal_source, BuildOutput, BuildPlan, DeltaBase, MarketsimSource, VecSource,
};
use graphex_serving::{KvStore, ModelRegistry, OverlayJournal, OverlayStore, ServingApi, SwapPolicy};
use graphex_server::{HttpClient, Json, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-overlay-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> GraphExConfig {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    config
}

fn spec(seed: u64) -> CategorySpec {
    CategorySpec {
        name: "NRT".into(),
        seed,
        num_leaves: 16,
        products_per_leaf: 6,
        num_items: 200,
        num_sessions: 1_200,
        leaf_id_base: 2_000,
    }
}

fn pipeline_build(
    corpus: &ChurnCorpus,
    journal: Option<&OverlayJournal>,
    delta: Option<DeltaBase>,
    jobs: usize,
) -> BuildOutput {
    let mut plan = BuildPlan::new(config()).jobs(jobs);
    if let Some(base) = delta {
        plan = plan.delta(base);
    }
    let mut sources: Vec<Box<dyn graphex_pipeline::RecordSource>> =
        vec![Box::new(MarketsimSource::new(corpus))];
    if let Some(journal) = journal {
        sources.push(Box::new(overlay_journal_source(journal)));
    }
    build(&plan, sources).unwrap()
}

/// Upsert records for brand-new leaves (unknown to the base corpus)
/// plus extra content on existing leaves — both composition modes.
fn upsert_records(corpus: &ChurnCorpus, count: usize) -> Vec<graphex_core::KeyphraseRecord> {
    let existing = corpus.marketplace().items[0].leaf;
    (0..count)
        .map(|i| {
            let (text, leaf) = if i % 3 == 2 {
                (format!("nrt extra phrase {i} widget"), existing)
            } else {
                (format!("nrt onboard item {i} gadget"), LeafId(9_000 + i as u32))
            };
            graphex_core::KeyphraseRecord::new(text, leaf, 40 + i as u32, 4)
        })
        .collect()
}

/// Gate 1: overlay-then-compact ≡ direct rebuild of the union corpus,
/// byte for byte — including through the journal's text interchange
/// format and across different worker counts.
#[test]
fn overlay_compaction_is_byte_identical_to_direct_rebuild() {
    let root = tempdir("compact");
    let corpus = ChurnCorpus::new(spec(0x0EE1), 0.0);

    // Base snapshot, published so the delta build has a registry base.
    let registry = ModelRegistry::open(&root).unwrap();
    let mut base = pipeline_build(&corpus, None, None, 2);
    base.publish(&registry, "base").unwrap();
    let base_model = Arc::new(base.model.clone());

    // Live writes: three upsert batches into an overlay over the base.
    let store = OverlayStore::new();
    let records = upsert_records(&corpus, 9);
    for chunk in records.chunks(3) {
        store.apply(&base_model, chunk).unwrap();
    }
    let journal = store.export_journal();
    assert_eq!(journal.entries.len(), 9);

    // The journal survives its own interchange format.
    let reparsed = OverlayJournal::parse(&journal.to_text()).unwrap();
    assert_eq!(reparsed, journal);

    // Compaction: delta build over the base, journal as one more source.
    let compacted = pipeline_build(&corpus, Some(&reparsed), Some(DeltaBase::load(&root).unwrap()), 3);
    assert!(compacted.report.leaves_reused > 0, "delta must borrow untouched leaves");

    // Direct rebuild of the union corpus: no overlay ever existed.
    let direct_plan = BuildPlan::new(config()).jobs(1);
    let direct = build(
        &direct_plan,
        vec![
            Box::new(MarketsimSource::new(&corpus)),
            Box::new(VecSource::new("direct-union", records)),
        ],
    )
    .unwrap();

    assert_eq!(
        compacted.bytes.as_ref(),
        direct.bytes.as_ref(),
        "overlay-then-compact diverged from the direct union rebuild"
    );
    std::fs::remove_dir_all(&root).ok();
}

fn infer_body(title: &str, leaf: u32) -> String {
    Json::obj(vec![
        ("title", Json::str(title)),
        ("leaf", Json::uint(u64::from(leaf))),
        ("k", Json::uint(5)),
    ])
    .render()
}

fn upsert_body(record: &graphex_core::KeyphraseRecord) -> String {
    Json::obj(vec![
        ("text", Json::str(record.text.clone())),
        ("leaf", Json::uint(u64::from(record.leaf.0))),
        ("search", Json::uint(u64::from(record.search_count))),
        ("recall", Json::uint(u64::from(record.recall_count))),
    ])
    .render()
}

/// Gate 2: concurrent upserts + reads over HTTP, zero 5xx; each upsert
/// servable within one request of its ack; a mid-run compaction publish
/// hot-swaps under load; final answers match a direct rebuild.
#[test]
fn live_upserts_with_midrun_compaction_zero_5xx() {
    let root = tempdir("live");
    let corpus = ChurnCorpus::new(spec(0x11FE), 0.0);

    let registry = Arc::new(ModelRegistry::open(&root).unwrap());
    let mut base = pipeline_build(&corpus, None, None, 2);
    base.publish(&registry, "base").unwrap();

    let api = Arc::new(
        ServingApi::with_watch(registry.watch().unwrap(), Arc::new(KvStore::new()), 10)
            .swap_policy(SwapPolicy::Invalidate)
            .with_overlay(Arc::new(OverlayStore::new())),
    );
    let server = graphex_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 16,
            deadline: None, // the zero-5xx gate must not race a timer
            keep_alive_timeout: Duration::from_secs(5),
            trace: Default::default(),
            history: Default::default(),
        },
        Arc::clone(&api),
    )
    .unwrap();
    let addr = server.addr();

    // Background readers hammer base titles for the whole run.
    let titles: Vec<(String, u32)> = corpus
        .marketplace()
        .items
        .iter()
        .take(32)
        .map(|i| (i.title.clone(), i.leaf.0))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3usize)
        .map(|t| {
            let titles = titles.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut requests = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (title, leaf) = &titles[(t + requests as usize) % titles.len()];
                    let response = client.post_json("/v1/infer", &infer_body(title, *leaf)).unwrap();
                    if response.header("Connection") == Some("close") {
                        client = HttpClient::connect(addr).unwrap();
                    }
                    assert_eq!(response.status, 200, "reader {t}: {}", response.text());
                    requests += 1;
                }
                requests
            })
        })
        .collect();

    // The writer: upsert → (next request) serve, for every record.
    let records = upsert_records(&corpus, 12);
    let mut writer = HttpClient::connect(addr).unwrap();
    let serve_now = |client: &mut HttpClient, record: &graphex_core::KeyphraseRecord| {
        let response =
            client.post_json("/v1/infer", &infer_body(&record.text, record.leaf.0)).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        let parsed = graphex_server::json::parse(&response.text()).unwrap();
        let phrases = parsed.get("keyphrases").unwrap().as_arr().unwrap();
        assert!(
            phrases.iter().any(|p| p.as_str() == Some(record.text.as_str())),
            "{:?} not servable right after its ack: {phrases:?}",
            record.text
        );
    };
    let (first_half, second_half) = records.split_at(6);
    for record in first_half {
        let ack = writer.post_json("/v1/upsert", &upsert_body(record)).unwrap();
        assert_eq!(ack.status, 200, "{}", ack.text());
        serve_now(&mut writer, record);
    }

    // Mid-run compaction: journal export → union delta build → publish
    // (the in-process watch hot-swaps the live server) → drain.
    let exported = writer.get("/v1/overlay/journal").unwrap();
    assert_eq!(exported.status, 200);
    let journal = OverlayJournal::parse(&exported.text()).unwrap();
    assert_eq!(journal.entries.len(), 6);
    let mut compacted =
        pipeline_build(&corpus, Some(&journal), Some(DeltaBase::load(&root).unwrap()), 3);
    let meta = compacted.publish(&registry, "compaction").unwrap();
    assert_eq!(meta.version, 2);
    let drained = writer
        .post_json("/v1/overlay/drain", &format!(r#"{{"upto":{}}}"#, journal.upto))
        .unwrap();
    assert_eq!(drained.status, 200, "{}", drained.text());
    let drained = graphex_server::json::parse(&drained.text()).unwrap();
    assert_eq!(drained.get("drained").unwrap().as_u64(), Some(6));

    // Upserts keep landing (and serving) on the swapped base.
    for record in second_half {
        let ack = writer.post_json("/v1/upsert", &upsert_body(record)).unwrap();
        assert_eq!(ack.status, 200, "{}", ack.text());
        serve_now(&mut writer, record);
    }

    std::thread::sleep(Duration::from_millis(40));
    stop.store(true, Ordering::Relaxed);
    let mut reads = 0u64;
    for reader in readers {
        reads += reader.join().unwrap();
    }
    assert!(reads > 0);

    // Every upserted leaf — compacted-into-base or still overlaid —
    // answers exactly like a from-scratch rebuild of the union corpus.
    let direct = build(
        &BuildPlan::new(config()).jobs(2),
        vec![
            Box::new(MarketsimSource::new(&corpus)),
            Box::new(VecSource::new("direct-union", records.clone())),
        ],
    )
    .unwrap();
    let oracle = Engine::from_model(direct.model.clone());
    for record in &records {
        let expected =
            oracle.infer(&InferRequest::new(&record.text, record.leaf).k(5).resolve_texts(true));
        let response =
            writer.post_json("/v1/infer", &infer_body(&record.text, record.leaf.0)).unwrap();
        let parsed = graphex_server::json::parse(&response.text()).unwrap();
        let served: Vec<&str> = parsed
            .get("keyphrases")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        let expected: Vec<&str> = expected.texts.iter().map(String::as_str).collect();
        assert_eq!(served, expected, "{:?}: overlay answer diverged from direct rebuild", record.text);
    }

    assert_eq!(server.metrics().server_errors(), 0, "zero 5xx across {reads} reads + upserts");
    let stats = api.stats();
    assert_eq!(stats.model_swaps, 1, "the compaction publish must have hot-swapped");
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

//! Network-frontend integration: concurrent clients drive `POST
//! /v1/infer` over loopback while the model registry publishes, swaps,
//! and rolls back underneath — the acceptance gate for the HTTP edge.
//!
//! Invariants pinned here:
//! * zero 5xx across a full publish → activate → rollback cycle
//!   (hot swap never fails a request);
//! * the `snapshot_version` echoed in responses is monotone per
//!   connection while only publishes happen (swaps move forward);
//! * after a rollback with `SwapPolicy::Invalidate`, cached answers from
//!   the withdrawn snapshot are recomputed, not served;
//! * malformed requests map to 4xx — never a panic, hang, or 5xx.

use graphex_serving::{KvStore, ModelRegistry, ServingApi, SwapPolicy};
use graphex_server::{HttpClient, Json, ServerConfig, ServerHandle};
use graphex_suite::{tiny_dataset, tiny_model};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-http-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    registry: Arc<ModelRegistry>,
    server: ServerHandle,
    api: Arc<ServingApi>,
    /// (title, leaf) pool for request traffic.
    titles: Vec<(String, u32)>,
    root: std::path::PathBuf,
}

impl Fixture {
    fn boot(name: &str, workers: usize, policy: SwapPolicy) -> Self {
        let ds = tiny_dataset(0xE46E);
        let model = tiny_model(&ds);
        let root = tempdir(name);
        let registry = Arc::new(ModelRegistry::open(&root).unwrap());
        registry.publish(&model, "v1").unwrap();
        let api = Arc::new(
            ServingApi::with_watch(registry.watch().unwrap(), Arc::new(KvStore::new()), 10)
                .swap_policy(policy),
        );
        let server = graphex_server::start(
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                queue_depth: 64,
                max_body_bytes: 1 << 16,
                deadline: None, // zero-5xx gate must not race a timer
                keep_alive_timeout: Duration::from_secs(5),
                trace: Default::default(),
                history: Default::default(),
            },
            Arc::clone(&api),
        )
        .unwrap();
        let titles: Vec<(String, u32)> = ds
            .marketplace
            .items
            .iter()
            .take(64)
            .map(|i| (i.title.clone(), i.leaf.0))
            .collect();
        Self { registry, server, api, titles, root }
    }

    fn finish(self) {
        self.server.shutdown();
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn infer_body(title: &str, leaf: u32, id: u64) -> String {
    Json::obj(vec![
        ("title", Json::str(title)),
        ("leaf", Json::uint(u64::from(leaf))),
        ("k", Json::uint(5)),
        ("id", Json::uint(id)),
    ])
    .render()
}

/// The tentpole acceptance test: N concurrent keep-alive clients, two
/// live publishes and one rollback underneath, zero 5xx anywhere.
#[test]
fn hot_swap_and_rollback_under_concurrent_load_zero_5xx() {
    let clients = 6usize;
    let fixture = Fixture::boot("swap", clients, SwapPolicy::Invalidate);
    let addr = fixture.server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..clients)
        .map(|t| {
            let titles = fixture.titles.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut versions_seen = Vec::new();
                let mut requests = 0u64;
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    let (title, leaf) = &titles[(t as u64 + round) as usize % titles.len()];
                    // Overlapping id space across threads: mixes store
                    // hits, read-throughs, and coalesced answers.
                    let id = (t as u64 + round) % 48;
                    let response = if round % 7 == 0 {
                        // Periodically exercise the batch envelope too.
                        let body = format!(
                            r#"{{"requests":[{},{}]}}"#,
                            infer_body(title, *leaf, id),
                            infer_body(title, *leaf, id + 1000)
                        );
                        client.post_json("/v1/infer", &body).unwrap()
                    } else {
                        client.post_json("/v1/infer", &infer_body(title, *leaf, id)).unwrap()
                    };
                    assert!(
                        response.status < 500,
                        "thread {t} round {round}: got 5xx {}: {}",
                        response.status,
                        response.text()
                    );
                    assert_eq!(response.status, 200, "{}", response.text());
                    let body = graphex_server::json::parse(&response.text()).unwrap();
                    let (version, source) = match body.get("responses") {
                        // Batch envelope: the top-level field is the
                        // currently-serving snapshot.
                        Some(_) => (
                            body.get("snapshot_version").unwrap().as_u64().unwrap(),
                            "envelope".to_string(),
                        ),
                        None => (
                            body.get("snapshot_version").unwrap().as_u64().unwrap(),
                            body.get("source").unwrap().as_str().unwrap().to_string(),
                        ),
                    };
                    versions_seen.push((version, source));
                    requests += 1;
                }
                (requests, versions_seen)
            })
        })
        .collect();

    // Two hot swaps while traffic is flowing.
    std::thread::sleep(Duration::from_millis(100));
    let model = tiny_model(&tiny_dataset(0xE46E));
    fixture.registry.publish(&model, "v2").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    fixture.registry.publish(&model, "v3").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);

    let mut total_requests = 0u64;
    for worker in workers {
        let (requests, versions) = worker.join().unwrap();
        assert!(requests > 0, "every client made progress");
        total_requests += requests;
        // While only publishes happen, the *producing* version a
        // connection observes may only move forward — except coalesced
        // answers, which are attributed to a leader that may have begun
        // computing before this connection's previous request.
        let monotone: Vec<u64> = versions
            .iter()
            .filter(|(_, source)| source != "coalesced")
            .map(|(v, _)| *v)
            .collect();
        for pair in monotone.windows(2) {
            assert!(pair[0] <= pair[1], "snapshot_version went backwards: {pair:?}");
        }
        assert!(
            versions.iter().all(|(v, _)| (1..=3).contains(v)),
            "unknown version in {versions:?}"
        );
    }

    let stats = fixture.api.stats();
    assert_eq!(stats.snapshot_version, 3);
    assert_eq!(stats.model_swaps, 2);
    assert_eq!(
        stats.outcomes.total(),
        stats.store_hits
            + stats.read_throughs
            + stats.coalesced
            + stats.direct
            + stats.unservable,
        "every request is accounted for exactly once"
    );
    assert_eq!(fixture.server.metrics().server_errors(), 0, "zero 5xx through two hot swaps");

    // Rollback (3 → 2) under a fresh request wave: still zero 5xx, and
    // the invalidate policy recomputes answers cached by snapshot 3.
    let invalidated_before = stats.invalidated;
    fixture.registry.rollback().unwrap();
    let mut client = HttpClient::connect(addr).unwrap();
    for (i, (title, leaf)) in fixture.titles.iter().take(24).enumerate() {
        let response = client.post_json("/v1/infer", &infer_body(title, *leaf, i as u64)).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        let body = graphex_server::json::parse(&response.text()).unwrap();
        assert_eq!(body.get("snapshot_version").unwrap().as_u64(), Some(2));
    }
    let stats = fixture.api.stats();
    assert_eq!(stats.snapshot_version, 2, "rollback swapped the serving model");
    assert_eq!(stats.model_swaps, 3);
    assert!(
        stats.invalidated > invalidated_before,
        "rollback must invalidate answers cached by the withdrawn snapshot"
    );
    assert_eq!(fixture.server.metrics().server_errors(), 0);
    drop(client);
    assert!(total_requests >= 100, "meaningful concurrency: {total_requests} requests");
    fixture.finish();
}

/// Malformed traffic: wrong shapes map to 400/404/405/413 and the server
/// keeps serving — never a panic, never a 5xx, never a hang.
#[test]
fn malformed_requests_never_panic_or_5xx() {
    let fixture = Fixture::boot("malformed", 2, SwapPolicy::Serve);
    let addr = fixture.server.addr();

    let post_cases: &[(&str, u16)] = &[
        ("{not json", 400),
        ("", 400),
        ("[1,2,3]", 400),                                  // valid JSON, wrong shape
        (r#"{"title":"x"}"#, 400),                         // missing leaf
        (r#"{"title":"x","leaf":"one"}"#, 400),            // non-integer leaf
        (r#"{"title":"x","leaf":4294967296}"#, 400),       // leaf > u32
        (r#"{"title":"x","leaf":1,"alignment":"bogus"}"#, 400),
        (r#"{"requests":{}}"#, 400),
        (r#"{"title":"\ud800","leaf":1}"#, 400),           // lone surrogate
    ];
    for (body, expected) in post_cases {
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client.post_json("/v1/infer", body).unwrap();
        assert_eq!(response.status, *expected, "body {body:?} → {}", response.text());
    }

    // Unknown path → 404; wrong method → 405; oversized body → 413.
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/v2/wrong").unwrap().status, 404);
    assert_eq!(client.get("/v1/infer").unwrap().status, 405);
    let mut client = HttpClient::connect(addr).unwrap();
    let big = format!(r#"{{"title":"{}","leaf":1}}"#, "x".repeat(1 << 17));
    assert_eq!(client.post_json("/v1/infer", &big).unwrap().status, 413);

    // After all of that, the server still answers healthily and has
    // recorded zero 5xx.
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let (title, leaf) = &fixture.titles[0];
    let ok = client.post_json("/v1/infer", &infer_body(title, *leaf, 7)).unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(fixture.server.metrics().server_errors(), 0);
    drop(client);
    fixture.finish();
}

/// `/statusz` and `/metrics` agree with each other and with the counters
/// the api reports.
#[test]
fn statusz_and_metrics_are_consistent() {
    let fixture = Fixture::boot("statusz", 2, SwapPolicy::Serve);
    let addr = fixture.server.addr();
    let mut client = HttpClient::connect(addr).unwrap();
    let (title, leaf) = &fixture.titles[0];
    for id in 0..5u64 {
        assert_eq!(
            client.post_json("/v1/infer", &infer_body(title, *leaf, id % 2)).unwrap().status,
            200
        );
    }
    let statusz = graphex_server::json::parse(&client.get("/statusz").unwrap().text()).unwrap();
    let stats = fixture.api.stats();
    assert_eq!(statusz.get("store_hits").unwrap().as_u64(), Some(stats.store_hits));
    assert_eq!(statusz.get("read_throughs").unwrap().as_u64(), Some(stats.read_throughs));
    assert_eq!(statusz.get("snapshot_version").unwrap().as_u64(), Some(1));

    let metrics = client.get("/metrics").unwrap().text();
    assert!(metrics.contains(&format!(
        "graphex_serve_source_total{{source=\"store_hit\"}} {}",
        stats.store_hits
    )));
    assert!(metrics.contains("graphex_request_duration_seconds_count 5"));
    assert!(metrics.contains("graphex_model_snapshot_version 1"));
    drop(client);
    fixture.finish();
}

//! Scale-out serving integration: per-shard snapshot emission → a local
//! backend cluster behind the scatter-gather router → the cluster-wide
//! acceptance gates.
//!
//! Invariants pinned here:
//! * **sharded ≡ monolith** — the router's responses are byte-identical
//!   to a single-process server over the unsharded model, for single and
//!   cross-shard batch envelopes alike;
//! * **zero 5xx across a rolling cluster-wide hot swap** — concurrent
//!   keep-alive clients drive the router while every backend republishes
//!   one shard at a time;
//! * **chaos** — a misbehaving backend is ejected after K consecutive
//!   failures, fails fast while ejected (degraded `Outcome`s inside 200
//!   envelopes, never a 5xx storm), and is re-admitted by the half-open
//!   probe once it recovers;
//! * **wire fuzz** — malformed/truncated/oversized/wrong-shape backend
//!   responses degrade cleanly; malformed client traffic 400s exactly
//!   like a single backend; ids past 2^53 ride decimal strings through
//!   the scatter-gather unchanged.

use graphex_core::{Engine, GraphExConfig, InferRequest};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildOutput, BuildPlan, MarketsimSource, BUILDINFO_FILE};
use graphex_server::{
    start_router, ChaosBackend, ChaosMode, ClusterConfig, HttpClient, Json, LocalCluster,
    RouterConfig, ServerConfig, ShardMap, TraceConfig, OUTCOME_BACKEND_UNAVAILABLE,
};
use graphex_serving::{KvStore, ModelRegistry, ServingApi};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: u32 = 3;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-cluster-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(seed: u64) -> CategorySpec {
    CategorySpec {
        name: "CLUSTER".into(),
        seed,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 400,
        num_sessions: 2_500,
        leaf_id_base: 6_000,
    }
}

fn build_gen(corpus: &ChurnCorpus) -> BuildOutput {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config).jobs(2);
    build(&plan, vec![Box::new(MarketsimSource::new(corpus))]).unwrap()
}

/// A 3-shard cluster and a monolith server over the same gen-0 build.
struct Fixture {
    corpus: ChurnCorpus,
    cluster: LocalCluster,
    monolith: graphex_server::ServerHandle,
    root: PathBuf,
    monolith_root: PathBuf,
}

impl Fixture {
    fn boot(name: &str, seed: u64) -> Self {
        let corpus = ChurnCorpus::new(spec(seed), 0.05);
        let gen0 = build_gen(&corpus);

        let root = tempdir(name);
        let snapshots = gen0.emit_shards(SHARDS).unwrap();
        graphex_pipeline::publish_shards(&snapshots, &root, "gen0").unwrap();
        let roots: Vec<PathBuf> =
            (0..SHARDS).map(|i| graphex_pipeline::shard_root(&root, i)).collect();
        // Trace ids are minted per process, so traced responses can never
        // be byte-identical across servers — the sharded≡monolith byte
        // gates run with tracing off on every frontend. (The trace gate
        // lives in tests/trace.rs.)
        let untraced = TraceConfig { enabled: false, ..TraceConfig::default() };
        let config = ClusterConfig {
            backend: ServerConfig {
                addr: "127.0.0.1:0".into(),
                trace: untraced.clone(),
                ..Default::default()
            },
            router: RouterConfig {
                addr: "127.0.0.1:0".into(),
                trace: untraced.clone(),
                ..Default::default()
            },
            ..Default::default()
        };
        let cluster = LocalCluster::boot(&roots, &config).unwrap();

        // The monolith control arm goes through its own registry so both
        // sides serve snapshot_version 1 — responses can then be compared
        // byte for byte.
        let monolith_root = tempdir(&format!("{name}-monolith"));
        let registry = ModelRegistry::open(&monolith_root).unwrap();
        registry.publish(&gen0.model, "gen0").unwrap();
        let api = Arc::new(ServingApi::with_watch(
            registry.watch().unwrap(),
            Arc::new(KvStore::new()),
            10,
        ));
        let monolith = graphex_server::start(
            ServerConfig { addr: "127.0.0.1:0".into(), trace: untraced, ..Default::default() },
            api,
        )
        .unwrap();

        Self { corpus, cluster, monolith, root, monolith_root }
    }

    /// (title, leaf) probe pool from the corpus.
    fn probes(&self, n: usize) -> Vec<(String, u32)> {
        self.corpus
            .marketplace()
            .items
            .iter()
            .take(n)
            .map(|item| (item.title.clone(), item.leaf.0))
            .collect()
    }

    fn finish(self) {
        self.cluster.shutdown();
        self.monolith.shutdown();
        std::fs::remove_dir_all(&self.root).ok();
        std::fs::remove_dir_all(&self.monolith_root).ok();
    }
}

fn single_body(title: &str, leaf: u32) -> String {
    Json::obj(vec![
        ("title", Json::str(title)),
        ("leaf", Json::uint(u64::from(leaf))),
        ("k", Json::uint(8)),
    ])
    .render()
}

/// The tentpole gate: equality with the monolith, then zero 5xx across a
/// rolling cluster-wide hot swap under concurrent keep-alive traffic.
#[test]
fn sharded_cluster_equals_monolith_and_rolls_with_zero_5xx() {
    let mut fixture = Fixture::boot("e2e", 0xC1);
    let router_addr = fixture.cluster.router_addr();
    let monolith_addr = fixture.monolith.addr();

    // --- Gate 1: byte-identical responses, single envelopes. -----------
    let mut via_router = HttpClient::connect(router_addr).unwrap();
    let mut via_monolith = HttpClient::connect(monolith_addr).unwrap();
    let probes = fixture.probes(80);
    for (title, leaf) in &probes {
        let body = single_body(title, *leaf);
        let sharded = via_router.post_json("/v1/infer", &body).unwrap();
        let monolith = via_monolith.post_json("/v1/infer", &body).unwrap();
        assert_eq!(sharded.status, 200, "{}", sharded.text());
        assert_eq!(monolith.status, 200);
        assert_eq!(
            sharded.body, monolith.body,
            "sharded ≠ monolith for {title:?} (leaf {leaf}):\n  cluster:  {}\n  monolith: {}",
            sharded.text(),
            monolith.text()
        );
    }

    // --- Gate 1b: cross-shard batch envelopes merge in caller order. ---
    // Consecutive corpus items hit different residues, so each batch
    // scatters across several backends and must reassemble byte-equal.
    for window in probes.chunks(9).take(5) {
        let entries: Vec<String> =
            window.iter().map(|(title, leaf)| single_body(title, *leaf)).collect();
        let body = format!(r#"{{"requests":[{}]}}"#, entries.join(","));
        let sharded = via_router.post_json("/v1/infer", &body).unwrap();
        let monolith = via_monolith.post_json("/v1/infer", &body).unwrap();
        assert_eq!(sharded.status, 200, "{}", sharded.text());
        assert_eq!(
            sharded.body, monolith.body,
            "cross-shard batch diverged:\n  cluster:  {}\n  monolith: {}",
            sharded.text(),
            monolith.text()
        );
    }
    drop(via_monolith);

    // --- Gate 2: rolling cluster-wide swap, zero 5xx. -------------------
    let stop = Arc::new(AtomicBool::new(false));
    let titles = fixture.probes(48);
    let clients = 4usize;
    let workers: Vec<_> = (0..clients)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let titles = titles.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(router_addr).unwrap();
                let mut requests = 0u64;
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    let (title, leaf) = &titles[(t + round) % titles.len()];
                    let response = if round % 5 == 0 {
                        // Cross-shard batches mid-swap too.
                        let body = format!(
                            r#"{{"requests":[{},{}]}}"#,
                            single_body(title, *leaf),
                            single_body(title, leaf + 1)
                        );
                        client.post_json("/v1/infer", &body).unwrap()
                    } else {
                        client.post_json("/v1/infer", &single_body(title, *leaf)).unwrap()
                    };
                    assert!(
                        response.status < 500,
                        "client {t} round {round}: HTTP {} during the roll: {}",
                        response.status,
                        response.text()
                    );
                    // The edge caps keep-alive; reconnect when told to.
                    if response
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                    {
                        client = HttpClient::connect(router_addr).unwrap();
                    }
                    requests += 1;
                }
                requests
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    fixture.corpus.advance_to(1);
    let gen1 = build_gen(&fixture.corpus);
    let next = gen1.emit_shards(SHARDS).unwrap();
    let payloads: Vec<graphex_server::ShardPayload> = next
        .iter()
        .map(|s| {
            (
                s.bytes.to_vec(),
                vec![(BUILDINFO_FILE.to_string(), s.manifest.render().into_bytes())],
            )
        })
        .collect();
    let rolled = fixture
        .cluster
        .rolling_publish(&payloads, "gen1", Duration::from_secs(10))
        .expect("rolling publish");
    assert_eq!(rolled.len(), SHARDS as usize);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total >= 100, "meaningful concurrency across the roll: {total} requests");

    assert_eq!(fixture.cluster.server_errors(), 0, "zero-5xx gate across the rolling swap");
    assert_eq!(fixture.cluster.router().degraded(), 0, "no degradation during a clean roll");
    for backend in fixture.cluster.backends() {
        assert_eq!(backend.api.snapshot_version(), 2, "shard {} rolled", backend.shard);
    }

    // --- Gate 3: after the roll, the cluster serves gen1's answers. ----
    let engine = Engine::new(Arc::new(gen1.model.clone()));
    let mut checked = 0usize;
    for item in fixture.corpus.marketplace().items.iter().take(40) {
        let request = InferRequest::new(&item.title, item.leaf).k(8);
        let want: Vec<String> = engine
            .infer(&request)
            .predictions
            .iter()
            .map(|p| engine.model().keyphrase_text(p.keyphrase).unwrap().to_string())
            .collect();
        let response =
            via_router.post_json("/v1/infer", &single_body(&item.title, item.leaf.0)).unwrap();
        assert_eq!(response.status, 200);
        let parsed = graphex_server::json::parse(&response.text()).unwrap();
        assert_eq!(parsed.get("snapshot_version").and_then(Json::as_u64), Some(2));
        let got: Vec<String> = parsed
            .get("keyphrases")
            .and_then(|k| k.as_arr())
            .map(|arr| arr.iter().filter_map(|k| k.as_str().map(str::to_string)).collect())
            .unwrap_or_default();
        assert_eq!(got, want, "post-roll answer for {:?} is not gen1's", item.title);
        checked += 1;
    }
    assert!(checked >= 30);
    drop(via_router);
    fixture.finish();
}

/// Chaos fixture: shard 0 is a real backend, shard 1 is the chaos
/// backend. Short timeouts/backoffs so the state machine is observable
/// in test time.
struct ChaosFixture {
    real: graphex_server::ServerHandle,
    chaos: ChaosBackend,
    router: graphex_server::RouterHandle,
}

impl ChaosFixture {
    fn boot() -> Self {
        let ds = graphex_suite::tiny_dataset(0xC4A0);
        let model = graphex_suite::tiny_model(&ds);
        let api = Arc::new(ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10));
        let real = graphex_server::start(
            ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
            api,
        )
        .unwrap();
        let chaos = ChaosBackend::start_with_hang_cap(Duration::from_secs(2)).unwrap();
        let map = ShardMap::from_backends(vec![
            real.addr().to_string(),
            chaos.addr().to_string(),
        ])
        .unwrap();
        let router = start_router(
            RouterConfig {
                addr: "127.0.0.1:0".into(),
                backend_timeout: Duration::from_millis(300),
                retries: 1,
                eject_after: 2,
                backoff_initial: Duration::from_millis(200),
                backoff_max: Duration::from_secs(1),
                ..Default::default()
            },
            map,
        )
        .unwrap();
        Self { real, chaos, router }
    }

    fn statusz_backend(&self, client: &mut HttpClient, shard: usize) -> Json {
        let status = client.get("/statusz").unwrap();
        assert_eq!(status.status, 200);
        let parsed = graphex_server::json::parse(&status.text()).unwrap();
        parsed.get("backends").unwrap().as_arr().unwrap()[shard].clone()
    }

    fn finish(self) {
        self.router.shutdown();
        self.real.shutdown();
        self.chaos.shutdown();
    }
}

/// Leaf 1 routes to the chaos backend (1 mod 2); leaf 0 to the real one.
fn chaos_body() -> String {
    single_body("chaos probe title", 1)
}

#[test]
fn chaos_backend_is_ejected_fails_fast_and_readmitted() {
    let fixture = ChaosFixture::boot();
    let addr = fixture.router.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // Healthy chaos shard answers through the router.
    let ok = client.post_json("/v1/infer", &chaos_body()).unwrap();
    assert_eq!(ok.status, 200);
    let parsed = graphex_server::json::parse(&ok.text()).unwrap();
    assert_eq!(
        parsed.get("keyphrases").unwrap().as_arr().unwrap()[0].as_str(),
        Some(graphex_server::chaos::CHAOS_KEYPHRASE)
    );

    // 500s: each request degrades (200 envelope, backend_unavailable),
    // and after eject_after=2 consecutive failures the shard is ejected.
    fixture.chaos.set_mode(ChaosMode::Error500);
    for round in 0..3 {
        let degraded = client.post_json("/v1/infer", &chaos_body()).unwrap();
        assert_eq!(degraded.status, 200, "degradation is never a 5xx (round {round})");
        let parsed = graphex_server::json::parse(&degraded.text()).unwrap();
        assert_eq!(
            parsed.get("outcome").and_then(Json::as_str),
            Some(OUTCOME_BACKEND_UNAVAILABLE),
            "round {round}: {}",
            degraded.text()
        );
        assert_eq!(parsed.get("keyphrases").unwrap().as_arr().unwrap().len(), 0);
    }
    let backend = fixture.statusz_backend(&mut client, 1);
    assert_eq!(backend.get("state").and_then(Json::as_str), Some("ejected"));
    assert!(backend.get("ejections").and_then(Json::as_u64).unwrap() >= 1);
    let calls_at_ejection = backend.get("calls").and_then(Json::as_u64).unwrap();

    // While ejected: fail fast — degraded answers without backend calls.
    let fast = client.post_json("/v1/infer", &chaos_body()).unwrap();
    assert_eq!(fast.status, 200);
    let parsed = graphex_server::json::parse(&fast.text()).unwrap();
    assert_eq!(parsed.get("outcome").and_then(Json::as_str), Some(OUTCOME_BACKEND_UNAVAILABLE));
    let backend = fixture.statusz_backend(&mut client, 1);
    assert_eq!(
        backend.get("calls").and_then(Json::as_u64).unwrap(),
        calls_at_ejection,
        "ejected backends must not be called"
    );
    assert!(backend.get("fast_failures").and_then(Json::as_u64).unwrap() >= 1);

    // The healthy shard is unaffected throughout.
    let healthy = client.post_json("/v1/infer", &single_body("some real title", 0)).unwrap();
    assert_eq!(healthy.status, 200);
    let parsed = graphex_server::json::parse(&healthy.text()).unwrap();
    assert!(
        parsed.get("outcome").and_then(Json::as_str) != Some(OUTCOME_BACKEND_UNAVAILABLE),
        "one sick shard must not degrade the others"
    );

    // Recovery: once the backend behaves and the backoff expires, the
    // half-open probe re-admits it and traffic resumes.
    fixture.chaos.set_mode(ChaosMode::Healthy);
    let mut recovered = false;
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(120));
        let response = client.post_json("/v1/infer", &chaos_body()).unwrap();
        assert_eq!(response.status, 200);
        let parsed = graphex_server::json::parse(&response.text()).unwrap();
        if parsed.get("outcome").and_then(Json::as_str) != Some(OUTCOME_BACKEND_UNAVAILABLE) {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "backend was never re-admitted after recovery");
    let backend = fixture.statusz_backend(&mut client, 1);
    assert_eq!(backend.get("state").and_then(Json::as_str), Some("healthy"));
    assert!(backend.get("readmissions").and_then(Json::as_u64).unwrap() >= 1);

    assert_eq!(fixture.router.metrics().server_errors(), 0, "no 5xx through the whole storm");
    drop(client);
    fixture.finish();
}

#[test]
fn retries_ride_out_keepalive_deaths_and_hangs_degrade_not_5xx() {
    let fixture = ChaosFixture::boot();
    let addr = fixture.router.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // ServeThenDie: the backend answers one request per connection, then
    // closes. The router's pooled connection dies between requests; the
    // bounded retry on a fresh connection makes that invisible.
    fixture.chaos.set_mode(ChaosMode::ServeThenDie);
    for round in 0..4 {
        let response = client.post_json("/v1/infer", &chaos_body()).unwrap();
        assert_eq!(response.status, 200);
        let parsed = graphex_server::json::parse(&response.text()).unwrap();
        assert_ne!(
            parsed.get("outcome").and_then(Json::as_str),
            Some(OUTCOME_BACKEND_UNAVAILABLE),
            "round {round}: a dead keep-alive with retries left must not degrade"
        );
    }

    // Hang: the backend reads the request and goes silent. The router's
    // backend deadline fires; the entry degrades inside a 200.
    fixture.chaos.set_mode(ChaosMode::Hang);
    let hung = client.post_json("/v1/infer", &chaos_body()).unwrap();
    assert_eq!(hung.status, 200, "a hung backend degrades, never 5xxs");
    let parsed = graphex_server::json::parse(&hung.text()).unwrap();
    assert_eq!(parsed.get("outcome").and_then(Json::as_str), Some(OUTCOME_BACKEND_UNAVAILABLE));

    assert_eq!(fixture.router.metrics().server_errors(), 0);
    drop(client);
    fixture.finish();
}

/// Wire fuzz: a backend that answers garbage/truncations/oversized
/// bodies/wrong shapes degrades cleanly, and malformed *client* traffic
/// gets the same 4xx map a single backend produces — never a panic.
#[test]
fn router_wire_fuzz_never_panics() {
    let fixture = ChaosFixture::boot();
    let addr = fixture.router.addr();

    for mode in [
        ChaosMode::Garbage,
        ChaosMode::Truncated,
        ChaosMode::Oversized,
        ChaosMode::WrongShape,
    ] {
        fixture.chaos.set_mode(mode);
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client.post_json("/v1/infer", &chaos_body()).unwrap();
        assert_eq!(response.status, 200, "{mode:?}: wire garbage must degrade, not error");
        let parsed = graphex_server::json::parse(&response.text()).unwrap();
        assert_eq!(
            parsed.get("outcome").and_then(Json::as_str),
            Some(OUTCOME_BACKEND_UNAVAILABLE),
            "{mode:?}: {}",
            response.text()
        );
        // Wait out the ejection this mode caused before the next one.
        fixture.chaos.set_mode(ChaosMode::Healthy);
        let mut healthy_again = false;
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(100));
            let probe = client.post_json("/v1/infer", &chaos_body()).unwrap();
            let parsed = graphex_server::json::parse(&probe.text()).unwrap();
            if parsed.get("outcome").and_then(Json::as_str)
                != Some(OUTCOME_BACKEND_UNAVAILABLE)
            {
                healthy_again = true;
                break;
            }
        }
        assert!(healthy_again, "{mode:?}: no recovery between fuzz modes");
    }

    // Malformed client traffic: the router 400s with the backend's rules.
    let cases: &[(&str, u16)] = &[
        ("{not json", 400),
        (r#"{"title":"x"}"#, 400),
        (r#"{"title":"x","leaf":4294967296}"#, 400),
        (r#"{"requests":{}}"#, 400),
        (r#"{"requests":[{"title":"x","leaf":1},{"title":"y"}]}"#, 400),
    ];
    for (body, expected) in cases {
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client.post_json("/v1/infer", body).unwrap();
        assert_eq!(response.status, *expected, "{body:?} → {}", response.text());
    }
    let mut client = HttpClient::connect(addr).unwrap();
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/v1/infer").unwrap().status, 405);
    let err = graphex_server::json::parse(
        &client
            .post_json(
                "/v1/infer",
                r#"{"requests":[{"title":"x","leaf":1},{"title":"y"}]}"#,
            )
            .unwrap()
            .text(),
    )
    .unwrap();
    assert!(
        err.get("error").and_then(Json::as_str).unwrap().starts_with("requests[1]:"),
        "batch errors must be indexed like a backend's"
    );

    // Ids past 2^53 travel as decimal strings both ways, through the
    // scatter-gather and back.
    let big = u64::MAX.to_string();
    let body = format!(r#"{{"title":"big id","leaf":1,"id":"{big}"}}"#);
    let response = client.post_json("/v1/infer", &body).unwrap();
    assert_eq!(response.status, 200);
    let parsed = graphex_server::json::parse(&response.text()).unwrap();
    assert_eq!(parsed.get("id").and_then(Json::as_str), Some(big.as_str()));

    assert_eq!(fixture.router.metrics().server_errors(), 0, "fuzz produced no 5xx");
    drop(client);
    fixture.finish();
}

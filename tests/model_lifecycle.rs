//! Model lifecycle integration: the acceptance criteria of the snapshot
//! subsystem.
//!
//! * a v1 model round-trips through v2 with **byte-identical inference
//!   results** (this is also the CI migration gate — see
//!   `.github/workflows/ci.yml`),
//! * the registry hot-swaps under concurrent request load with **zero
//!   failed requests**, and `rollback` restores the prior version,
//! * batch and NRT consumers follow the watch across republishes.

use graphex_core::{
    serialize, GraphExBuilder, GraphExConfig, GraphExModel, InferRequest, KeyphraseRecord, LeafId,
};
use graphex_serving::batch::BatchItem;
use graphex_serving::{
    BatchPipeline, ItemEvent, KvStore, ModelRegistry, NrtConfig, NrtService, ServeSource,
    ServingApi,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn build_model(extra_phrases: &[(&str, u32)]) -> GraphExModel {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    let mut records = vec![
        KeyphraseRecord::new("alpha widget pro", LeafId(1), 900, 100),
        KeyphraseRecord::new("alpha widget max", LeafId(1), 700, 200),
        KeyphraseRecord::new("beta gadget pro", LeafId(2), 800, 150),
        KeyphraseRecord::new("beta gadget case", LeafId(2), 500, 300),
        KeyphraseRecord::new("gamma gizmo charger", LeafId(3), 400, 250),
    ];
    records.extend(
        extra_phrases.iter().map(|&(text, leaf)| KeyphraseRecord::new(text, LeafId(leaf), 300, 50)),
    );
    GraphExBuilder::new(config).add_records(records).build().unwrap()
}

fn probe_requests() -> Vec<(String, LeafId)> {
    vec![
        ("alpha widget pro max edition".into(), LeafId(1)),
        ("beta gadget pro with case".into(), LeafId(2)),
        ("gamma gizmo usb charger".into(), LeafId(3)),
        ("alpha widget unknown words".into(), LeafId(1)),
    ]
}

fn infer_all(model: &GraphExModel) -> Vec<(Vec<graphex_core::Prediction>, Vec<String>)> {
    let mut scratch = graphex_core::Scratch::new();
    probe_requests()
        .iter()
        .map(|(title, leaf)| {
            let req = InferRequest::new(title, *leaf).k(10).resolve_texts(true);
            let resp = model.infer_request(&req, &mut scratch);
            (resp.predictions, resp.texts)
        })
        .collect()
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-lifecycle-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// v1 → load → v2 → load: inference outputs must be byte-identical at
/// every hop (`Prediction` is `Eq`, so this compares every ranking
/// attribute, not just the texts).
#[test]
fn v1_to_v2_roundtrip_is_inference_identical() {
    let original = build_model(&[]);
    let expected = infer_all(&original);

    let v1_bytes = serialize::to_bytes_v1(&original);
    let from_v1 = serialize::from_bytes(&v1_bytes).expect("v1 load");
    assert_eq!(expected, infer_all(&from_v1), "v1 load changed inference results");

    let v2_bytes = serialize::to_bytes(&from_v1);
    let from_v2 = serialize::from_shared(v2_bytes).expect("v2 load");
    assert_eq!(expected, infer_all(&from_v2), "v2 round-trip changed inference results");

    // And the v2 load really borrowed its arrays.
    assert!(from_v2.leaf_ids().all(|l| from_v2.leaf_graph(l).unwrap().is_zero_copy()));
    assert!(from_v1.leaf_ids().all(|l| !from_v1.leaf_graph(l).unwrap().is_zero_copy()));
}

/// The same equality, through registry publish of a v1 *file* — the CLI
/// migration path (`graphex model publish --input legacy.gexm`).
#[test]
fn registry_serves_v1_and_v2_snapshots_identically() {
    let root = tempdir("mixed-formats");
    let model = build_model(&[]);
    let expected = infer_all(&model);

    let v1_path = root.join("legacy.gexm");
    std::fs::write(&v1_path, serialize::to_bytes_v1(&model)).unwrap();

    let registry = ModelRegistry::open(root.join("registry")).unwrap();
    let meta_v1 = registry.publish_file(&v1_path, "legacy v1 import").unwrap();
    assert_eq!(meta_v1.format, 1);
    let served_v1 = infer_all(registry.current().unwrap().engine.model());

    let meta_v2 = registry.publish(&model, "rewritten as v2").unwrap();
    assert_eq!(meta_v2.format, 2);
    let served_v2 = infer_all(registry.current().unwrap().engine.model());

    assert_eq!(expected, served_v1);
    assert_eq!(expected, served_v2);
    std::fs::remove_dir_all(&root).ok();
}

/// Hot swap under concurrent request load: worker threads hammer a
/// watch-backed `ServingApi` while the main thread flips the registry
/// between two published versions. Every single request must be served
/// (zero unservable answers, no panics), and afterwards `rollback`
/// restores the prior version.
#[test]
fn hot_swap_under_load_has_zero_failed_requests() {
    let root = tempdir("swap-load");
    let registry = Arc::new(ModelRegistry::open(&root).unwrap());
    registry.publish(&build_model(&[]), "v1").unwrap();
    registry.publish(&build_model(&[("alpha widget deluxe", 1)]), "v2").unwrap();
    let api =
        Arc::new(ServingApi::with_watch(registry.watch().unwrap(), Arc::new(KvStore::new()), 10));

    let done = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let api = Arc::clone(&api);
        workers.push(std::thread::spawn(move || {
            let probes = probe_requests();
            let mut failed = 0usize;
            for i in 0..400u64 {
                let (title, leaf) = &probes[(i % 3) as usize]; // servable probes only
                // Mix store-path requests (cycling ids → hits + misses)
                // and id-less direct computations.
                let served = if i % 3 == 0 {
                    api.serve_request(
                        &InferRequest::new(title, *leaf).k(5).resolve_texts(true),
                    )
                } else {
                    api.serve(t * 10_000 + (i % 50), title, *leaf)
                };
                if served.source == ServeSource::None || served.keyphrases.is_empty() {
                    failed += 1;
                }
            }
            failed
        }));
    }

    // Swap continuously until every worker finished its loop.
    let swapper = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut swaps = 0u64;
            let mut target = 1u64;
            // At least a handful of swaps even if the workers race ahead,
            // then keep flipping until they are done.
            while swaps < 6 || !done.load(Ordering::Acquire) {
                registry.activate(target).expect("swap during load");
                swaps += 1;
                target = if target == 1 { 2 } else { 1 };
            }
            swaps
        })
    };

    let failed: usize = workers.into_iter().map(|w| w.join().expect("worker panicked")).sum();
    done.store(true, Ordering::Release);
    let swaps = swapper.join().expect("swapper panicked");

    assert_eq!(failed, 0, "requests failed during hot swaps");
    assert!(swaps >= 1, "load test finished before a single swap happened");
    let stats = api.stats();
    assert_eq!(
        stats.store_hits + stats.read_throughs + stats.coalesced + stats.direct,
        4 * 400,
        "every request accounted for"
    );
    assert_eq!(stats.unservable, 0);
    assert!(stats.model_swaps >= swaps, "api missed swaps: {stats:?}");

    // Rollback restores the prior version (whatever the swapper left
    // active, rollback lands on the older snapshot).
    registry.activate(2).unwrap();
    let (from, to) = registry.rollback().unwrap();
    assert_eq!((from, to), (2, 1));
    assert_eq!(registry.current_version(), Some(1));
    assert_eq!(api.stats().snapshot_version, 1);
    std::fs::remove_dir_all(&root).ok();
}

/// Batch and NRT consumers resolve the watch per run/window: a republish
/// between runs changes the snapshot version they report, without
/// rebuilding either component.
#[test]
fn batch_and_nrt_follow_republishes() {
    let root = tempdir("consumers");
    let registry = ModelRegistry::open(&root).unwrap();
    registry.publish(&build_model(&[]), "").unwrap();
    let watch = registry.watch().unwrap();

    let store = KvStore::new();
    let pipeline = BatchPipeline::with_watch(watch.clone(), &store, 10, 2);
    let items: Vec<BatchItem> = (0..20)
        .map(|i| BatchItem {
            id: i,
            title: "alpha widget pro max".into(),
            leaf: LeafId(1),
        })
        .collect();
    let report = pipeline.run_full(&items);
    assert_eq!(report.snapshot_version, 1);
    assert_eq!(report.items_with_recommendations, 20);

    registry.publish(&build_model(&[("alpha widget deluxe", 1)]), "").unwrap();
    let report = pipeline.run_differential(&items[..5]);
    assert_eq!(report.snapshot_version, 2, "pipeline did not follow the publish");

    // NRT across a publish: no events lost, final version reported.
    let nrt_store = Arc::new(KvStore::new());
    let service =
        NrtService::start_with_watch(watch.clone(), nrt_store.clone(), NrtConfig::default());
    for i in 0..10u32 {
        service.submit(ItemEvent::Created {
            id: i,
            title: "beta gadget pro".into(),
            leaf: LeafId(2),
        });
    }
    let stats = service.shutdown();
    assert_eq!(stats.events_received, 10);
    assert_eq!(stats.items_scored + stats.deduplicated, 10);
    assert_eq!(stats.snapshot_version, 2);
    assert!(!nrt_store.is_empty());
    std::fs::remove_dir_all(&root).ok();
}

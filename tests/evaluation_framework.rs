//! Evaluation-framework integration: the judged evaluation pipeline holds
//! its invariants on a real (simulated) dataset with real models.

use graphex_baselines::{GraphExRecommender, Recommender, RulesEngine};
use graphex_eval::metrics::{exclusive_relevant_head, fig4_rows, precision_recall_vs, venn_counts};
use graphex_eval::{Evaluation, HeadThreshold, RelevanceJudge};
use graphex_suite::{tiny_dataset, tiny_model};

fn run_eval(seed: u64) -> (graphex_marketsim::CategoryDataset, Vec<Box<dyn Recommender>>) {
    let ds = tiny_dataset(seed);
    let models: Vec<Box<dyn Recommender>> = vec![
        Box::new(RulesEngine::train(&ds, 1)),
        Box::new(GraphExRecommender::new(tiny_model(&ds))),
    ];
    (ds, models)
}

#[test]
fn evaluation_invariants_hold() {
    let (ds, models) = run_eval(0xEF1);
    let judge = RelevanceJudge::new(&ds);
    let items = ds.test_items(50, 3);
    let refs: Vec<&dyn Recommender> = models.iter().map(|m| m.as_ref()).collect();
    let eval = Evaluation::run(&ds, &refs, &items, 40, &judge);

    for m in &eval.models {
        // Counting identities.
        assert_eq!(m.relevant(), m.relevant_head() + m.relevant_tail());
        assert_eq!(m.total_predictions(), m.relevant() + m.irrelevant());
        assert!(m.rp() <= 1.0 && m.hp() <= m.rp() + 1e-12);
        assert_eq!(m.per_item.len(), items.len());
        // k cap respected.
        assert!(m.per_item.iter().all(|p| p.len() <= 40));
    }
    // Self-ratios are exactly 1 when the model has any relevant prediction.
    let graphex = eval.model("GraphEx").unwrap();
    if graphex.relevant() > 0 {
        assert!((eval.rrr("GraphEx", "GraphEx") - 1.0).abs() < 1e-12);
    }
}

#[test]
fn evaluation_is_deterministic() {
    let (ds, models) = run_eval(0xEF2);
    let judge = RelevanceJudge::new(&ds);
    let items = ds.test_items(30, 4);
    let refs: Vec<&dyn Recommender> = models.iter().map(|m| m.as_ref()).collect();
    let a = Evaluation::run(&ds, &refs, &items, 20, &judge);
    let b = Evaluation::run(&ds, &refs, &items, 20, &judge);
    for (ma, mb) in a.models.iter().zip(&b.models) {
        assert_eq!(ma.per_item, mb.per_item, "evaluation not reproducible for {}", ma.name);
    }
}

#[test]
fn metrics_are_internally_consistent() {
    let (ds, models) = run_eval(0xEF3);
    let judge = RelevanceJudge::new(&ds);
    let items = ds.test_items(40, 5);
    let refs: Vec<&dyn Recommender> = models.iter().map(|m| m.as_ref()).collect();
    let eval = Evaluation::run(&ds, &refs, &items, 40, &judge);

    // Fig. 4 averages times item count reproduce the totals.
    for row in fig4_rows(&eval) {
        let m = eval.model(&row.model).unwrap();
        let n = items.len() as f64;
        assert!((row.avg_total * n - m.total_predictions() as f64).abs() < 1e-6);
        assert!(
            (row.avg_irrelevant + row.avg_relevant_tail + row.avg_relevant_head - row.avg_total)
                .abs()
                < 1e-9
        );
    }
    // Exclusive head counts can never exceed the model's relevant-head.
    for (name, avg_exclusive) in exclusive_relevant_head(&eval) {
        let m = eval.model(&name).unwrap();
        assert!(avg_exclusive * items.len() as f64 <= m.relevant_head() as f64 + 1e-9);
    }
    // Venn region sizes add up.
    for (name, unique, shared) in venn_counts(&eval) {
        assert_eq!(unique + shared, eval.model(&name).unwrap().total_predictions());
    }
    // RE scores perfectly against itself.
    let self_pr = precision_recall_vs(&eval, "RE", "RE");
    assert!((self_pr.precision - 1.0).abs() < 1e-12);
    assert!((self_pr.recall - 1.0).abs() < 1e-12);
}

#[test]
fn judge_noise_shifts_but_does_not_dominate() {
    // With 8% noise, measured RP must stay within a few points of exact-
    // oracle RP — the property that makes the AI-judge methodology sound.
    let ds = tiny_dataset(0xEF4);
    let graphex: Box<dyn Recommender> = Box::new(GraphExRecommender::new(tiny_model(&ds)));
    let items = ds.test_items(60, 6);
    let refs = [graphex.as_ref()];

    let noisy = RelevanceJudge::with_noise(&ds, 0.08, 99);
    let exact = RelevanceJudge::with_noise(&ds, 0.0, 99);
    let e_noisy = Evaluation::run(&ds, &refs, &items, 20, &noisy);
    let e_exact = Evaluation::run(&ds, &refs, &items, 20, &exact);
    let rp_noisy = e_noisy.model("GraphEx").unwrap().rp();
    let rp_exact = e_exact.model("GraphEx").unwrap().rp();
    assert!(
        (rp_noisy - rp_exact).abs() < 0.10,
        "noise changed RP too much: {rp_exact:.3} → {rp_noisy:.3}"
    );
}

#[test]
fn head_threshold_consistency_with_eval_window() {
    let ds = tiny_dataset(0xEF5);
    let threshold = HeadThreshold::from_dataset(&ds);
    // Nothing below/equal the cut is head; something above it exists.
    let mut above = 0;
    for &c in &ds.eval_log.search_counts {
        if c > 0 && threshold.is_head(c) {
            above += 1;
            assert!(c > threshold.min_search_count);
        }
    }
    assert!(above > 0, "no head keyphrases at all");
}

/// The evaluation harness can score any [`graphex_core::KeyphraseService`]
/// — the raw engine and the whole store-backed serving stack — through
/// `ServiceRecommender`, and all GraphEx frontends agree on the metrics
/// (they serve the same texts for the same requests).
#[test]
fn serving_stack_is_evaluable_as_a_service() {
    use graphex_baselines::ServiceRecommender;
    use graphex_core::Engine;
    use graphex_serving::{KvStore, ServingApi};
    use std::sync::Arc;

    let ds = tiny_dataset(0xEF7);
    let model = tiny_model(&ds);
    let engine = Engine::from_model(model.clone());
    let direct = GraphExRecommender::new(model);
    let via_engine = ServiceRecommender::new("GraphEx(engine)", engine.clone());
    let via_serving = ServiceRecommender::new(
        "GraphEx(serving)",
        ServingApi::with_engine(engine, Arc::new(KvStore::new()), 20),
    );

    let judge = RelevanceJudge::new(&ds);
    let items = ds.test_items(30, 5);
    let refs: Vec<&dyn Recommender> =
        vec![&direct, &via_engine, &via_serving];
    let eval = Evaluation::run(&ds, &refs, &items, 20, &judge);

    let a = eval.model("GraphEx").unwrap();
    let b = eval.model("GraphEx(engine)").unwrap();
    let c = eval.model("GraphEx(serving)").unwrap();
    assert!(a.total_predictions() > 0, "nothing predicted");
    // Same model behind all three frontends → identical judged metrics.
    assert_eq!(a.relevant(), b.relevant());
    assert_eq!(b.relevant(), c.relevant());
    assert_eq!(a.total_predictions(), c.total_predictions());
    assert_eq!(a.relevant_head(), c.relevant_head());

    // The serving facade actually exercised the read-through path once per
    // item and tallied every outcome.
    let stats = via_serving.service().stats();
    assert_eq!(stats.read_throughs + stats.unservable, items.len() as u64);
    assert_eq!(stats.outcomes.total(), items.len() as u64);
}

//! Prometheus exposition conformance (the PR-9 satellite gate): every
//! `/metrics` surface — single server (overlay attached), tenant fleet,
//! and the scatter-gather router — renders
//!
//! * exactly one `# TYPE` line per metric family,
//! * no duplicate series (name + label set appears once per scrape),
//! * every series under a declared family (histogram `_bucket`/`_sum`/
//!   `_count` suffixes resolve to their base family),
//! * parseable sample values on every line,
//!
//! and counters (plus histogram cumulative series) are monotone across
//! consecutive scrapes with traffic in between.

use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};
use graphex_serving::{FleetConfig, KvStore, OverlayStore, ServingApi, TenantFleet};
use graphex_server::{start_router, HttpClient, RouterConfig, ServerConfig, ShardMap};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One parsed scrape: family kinds plus every series' value.
struct Scrape {
    families: BTreeMap<String, String>,
    series: BTreeMap<String, f64>,
}

/// Parses an exposition and asserts the per-scrape conformance rules.
fn check_exposition(text: &str, context: &str) -> Scrape {
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut series: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_else(|| panic!("{context}:{lineno}: bare # TYPE"));
            let kind = parts.next().unwrap_or_else(|| panic!("{context}:{lineno}: TYPE {name} has no kind"));
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "{context}:{lineno}: unknown kind {kind:?}"
            );
            assert!(
                families.insert(name.to_string(), kind.to_string()).is_none(),
                "{context}:{lineno}: duplicate # TYPE for {name}"
            );
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "{context}:{lineno}: unexpected comment {line:?} (only # TYPE is emitted)"
        );
        let (key, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("{context}:{lineno}: no sample value in {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "{context}:{lineno}: unparseable sample value {value:?}"
        );
        assert!(
            series.insert(key.to_string(), value.parse().unwrap()).is_none(),
            "{context}:{lineno}: duplicate series {key}"
        );
        // The series must belong to a declared family; histogram
        // sub-series resolve through their suffix.
        let name = key.split('{').next().unwrap();
        let declared = families.contains_key(name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| families.get(base).map(String::as_str) == Some("histogram"))
            });
        assert!(declared, "{context}:{lineno}: series {name} has no # TYPE family");
    }
    assert!(!families.is_empty(), "{context}: no families rendered");
    Scrape { families, series }
}

/// Counters — and histogram cumulative sub-series — never move backwards
/// between scrapes.
fn check_monotone(before: &Scrape, after: &Scrape, context: &str) {
    for (key, &was) in &before.series {
        let name = key.split('{').next().unwrap();
        let cumulative = before.families.get(name).map(String::as_str) == Some("counter")
            || ["_bucket", "_count"].iter().any(|suffix| {
                name.strip_suffix(suffix).is_some_and(|base| {
                    before.families.get(base).map(String::as_str) == Some("histogram")
                })
            });
        if !cumulative {
            continue;
        }
        let now = *after
            .series
            .get(key)
            .unwrap_or_else(|| panic!("{context}: series {key} vanished between scrapes"));
        assert!(now >= was, "{context}: counter {key} moved backwards ({was} -> {now})");
    }
}

fn scrape(client: &mut HttpClient, context: &str) -> Scrape {
    let response = client.get("/metrics").unwrap();
    assert_eq!(response.status, 200, "{context}: {}", response.text());
    check_exposition(&response.text(), context)
}

fn drive_infer(client: &mut HttpClient, path: &str, title: &str, leaf: u32, n: usize) {
    for _ in 0..n {
        let body = format!(r#"{{"title":"{title}","leaf":{leaf},"k":5}}"#);
        let response = client.post_json(path, &body).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }
}

#[test]
fn single_server_with_overlay_exposition_is_conformant() {
    let ds = graphex_suite::tiny_dataset(0x9201);
    let model = graphex_suite::tiny_model(&ds);
    let api = Arc::new(
        ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10)
            .with_overlay(Arc::new(OverlayStore::new())),
    );
    let server = graphex_server::start(
        ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        api,
    )
    .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let (title, leaf) = {
        let item = &ds.marketplace.items[0];
        (item.title.clone(), item.leaf.0)
    };
    drive_infer(&mut client, "/v1/infer", &title, leaf, 8);
    let ack = client
        .post_json("/v1/upsert", r#"{"text":"prom conformance phrase","leaf":77,"search":40,"recall":4}"#)
        .unwrap();
    assert_eq!(ack.status, 200, "{}", ack.text());

    let before = scrape(&mut client, "single");
    // The mode-specific families are all present in one scrape: HTTP,
    // serving, overlay, and trace.
    for family in [
        "graphex_http_requests_total",
        "graphex_serve_outcome_total",
        "graphex_overlay_depth",
        "graphex_stage_latency_seconds",
        "graphex_traces_recorded_total",
    ] {
        assert!(before.families.contains_key(family), "single scrape lacks {family}");
    }

    drive_infer(&mut client, "/v1/infer", &title, leaf, 8);
    let after = scrape(&mut client, "single");
    check_monotone(&before, &after, "single");
    server.shutdown();
}

#[test]
fn fleet_exposition_is_conformant() {
    let root =
        std::env::temp_dir().join(format!("graphex-prom-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let fleet = Arc::new(TenantFleet::open(&root, FleetConfig::default()).unwrap());
    for tenant in ["alpha", "beta"] {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let model = GraphExBuilder::new(config)
            .add_records((0..6u32).map(|i| {
                KeyphraseRecord::new(
                    format!("{tenant} widget edition{i}"),
                    LeafId(i % 2),
                    100 + i,
                    10,
                )
            }))
            .build()
            .unwrap();
        fleet.publish_model(tenant, &model, "v1").unwrap();
    }
    let server = graphex_server::start_fleet(
        ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        fleet,
    )
    .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    for tenant in ["alpha", "beta"] {
        drive_infer(
            &mut client,
            &format!("/v1/t/{tenant}/infer"),
            &format!("{tenant} widget edition0"),
            0,
            6,
        );
    }
    let before = scrape(&mut client, "fleet");
    for family in
        ["graphex_tenant_resident", "graphex_tenant_serve_outcome_total", "graphex_stage_latency_seconds"]
    {
        assert!(before.families.contains_key(family), "fleet scrape lacks {family}");
    }

    drive_infer(&mut client, "/v1/t/alpha/infer", "alpha widget edition0", 0, 6);
    let after = scrape(&mut client, "fleet");
    check_monotone(&before, &after, "fleet");
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn router_exposition_is_conformant() {
    let ds = graphex_suite::tiny_dataset(0x9203);
    let model = graphex_suite::tiny_model(&ds);
    let api = Arc::new(ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10));
    let backend = graphex_server::start(
        ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        api,
    )
    .unwrap();
    let map = ShardMap::from_backends(vec![backend.addr().to_string()]).unwrap();
    let router =
        start_router(RouterConfig { addr: "127.0.0.1:0".into(), ..Default::default() }, map)
            .unwrap();
    let mut client = HttpClient::connect(router.addr()).unwrap();

    let (title, leaf) = {
        let item = &ds.marketplace.items[0];
        (item.title.clone(), item.leaf.0)
    };
    drive_infer(&mut client, "/v1/infer", &title, leaf, 8);
    let before = scrape(&mut client, "router");
    for family in [
        "graphex_router_requests_total",
        "graphex_router_backend_healthy",
        "graphex_stage_latency_seconds",
    ] {
        assert!(before.families.contains_key(family), "router scrape lacks {family}");
    }

    drive_infer(&mut client, "/v1/infer", &title, leaf, 8);
    let after = scrape(&mut client, "router");
    check_monotone(&before, &after, "router");

    // Backend scrapes stay conformant when serving forwarded traffic.
    let mut backend_client = HttpClient::connect(backend.addr()).unwrap();
    scrape(&mut backend_client, "router-backend");

    router.shutdown();
    backend.shutdown();
}

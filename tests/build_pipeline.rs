//! End-to-end loopback for the build pipeline: churn a marketsim corpus,
//! run incremental pipeline builds, publish each generation straight
//! into the registry a live HTTP frontend serves from, and pin **zero
//! 5xx** across every live swap — the full
//! ingest → build → publish → hot-swap → serve loop of the ROADMAP
//! north star.
//!
//! Also pinned here: the delta build each generation publishes is
//! byte-identical to a from-scratch rebuild (the CI delta-equivalence
//! gate at the HTTP edge, not just at the byte level), and the frontend
//! observes every published snapshot version in order.

use graphex_core::GraphExConfig;
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildOutput, BuildPlan, DeltaBase, MarketsimSource};
use graphex_serving::{KvStore, ModelRegistry, ServingApi, SwapPolicy};
use graphex_server::{HttpClient, Json, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("graphex-buildpipe-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> GraphExConfig {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    config
}

/// Churn must dirty some leaves and spare others, so delta reuse is
/// observable under serving traffic.
fn spec(seed: u64) -> CategorySpec {
    CategorySpec {
        name: "LOOP".into(),
        seed,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 400,
        num_sessions: 2_000,
        leaf_id_base: 4_000,
    }
}

fn pipeline_build(corpus: &ChurnCorpus, delta: Option<DeltaBase>) -> BuildOutput {
    let mut plan = BuildPlan::new(config()).jobs(3);
    if let Some(base) = delta {
        plan = plan.delta(base);
    }
    build(&plan, vec![Box::new(MarketsimSource::new(corpus))]).unwrap()
}

fn infer_body(title: &str, leaf: u32, id: u64) -> String {
    Json::obj(vec![
        ("title", Json::str(title)),
        ("leaf", Json::uint(u64::from(leaf))),
        ("k", Json::uint(5)),
        ("id", Json::uint(id)),
    ])
    .render()
}

#[test]
fn churn_build_publish_serve_loopback_zero_5xx() {
    let root = tempdir("loop");
    // ~1% churn over 24 leaves: a couple of dozen record changes leave
    // most leaves untouched, so delta reuse is reliably observable.
    let mut corpus = ChurnCorpus::new(spec(0xB007), 0.01);

    // Generation 0: full pipeline build, published through admission.
    let registry = Arc::new(ModelRegistry::open(&root).unwrap());
    let mut gen0 = pipeline_build(&corpus, None);
    let meta = gen0.publish(&registry, "gen0 full build").unwrap();
    assert_eq!(meta.version, 1);
    assert!(root.join("1").join("BUILDINFO").is_file());

    // Live HTTP frontend over the registry watch.
    let clients = 4usize;
    let api = Arc::new(ServingApi::with_watch(
        registry.watch().unwrap(),
        Arc::new(KvStore::new()),
        10,
    )
    .swap_policy(SwapPolicy::Invalidate));
    let server = graphex_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: clients,
            queue_depth: 64,
            max_body_bytes: 1 << 16,
            deadline: None, // the zero-5xx gate must not race a timer
            keep_alive_timeout: Duration::from_secs(5),
            trace: Default::default(),
            history: Default::default(),
        },
        Arc::clone(&api),
    )
    .unwrap();
    let addr = server.addr();

    let titles: Vec<(String, u32)> = corpus
        .marketplace()
        .items
        .iter()
        .take(48)
        .map(|i| (i.title.clone(), i.leaf.0))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..clients)
        .map(|t| {
            let titles = titles.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut versions = Vec::new();
                let mut requests = 0u64;
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    let (title, leaf) = &titles[(t as u64 + round) as usize % titles.len()];
                    let body = infer_body(title, *leaf, (t as u64 + round) % 64);
                    let response = client.post_json("/v1/infer", &body).unwrap();
                    // Keep-alive pinning is bounded (MAX_KEEPALIVE_REQUESTS):
                    // the server announces `Connection: close`; honour it.
                    if response.header("Connection") == Some("close") {
                        client = HttpClient::connect(addr).unwrap();
                    }
                    assert_eq!(
                        response.status,
                        200,
                        "thread {t} round {round}: HTTP {} — {}",
                        response.status,
                        response.text()
                    );
                    let parsed = graphex_server::json::parse(&response.text()).unwrap();
                    versions.push(parsed.get("snapshot_version").unwrap().as_u64().unwrap());
                    requests += 1;
                }
                (requests, versions)
            })
        })
        .collect();

    // Generations 1..=2: churn → delta build from the registry's pinned
    // snapshot → publish → in-process watch hot-swaps the live server.
    let mut reused_total = 0usize;
    for generation in 1..=2u32 {
        std::thread::sleep(Duration::from_millis(60));
        corpus.advance();

        let delta_base = DeltaBase::load(&root).unwrap();
        let mut delta = pipeline_build(&corpus, Some(delta_base));
        // Delta ≡ full, at the published-bytes level.
        let full = pipeline_build(&corpus, None);
        assert_eq!(
            delta.bytes.as_ref(),
            full.bytes.as_ref(),
            "gen {generation}: published delta diverges from full rebuild"
        );
        reused_total += delta.report.leaves_reused;

        let meta = delta.publish(&registry, &format!("gen{generation} delta")).unwrap();
        assert_eq!(meta.version, u64::from(generation) + 1);
    }
    std::thread::sleep(Duration::from_millis(80));
    stop.store(true, Ordering::Relaxed);

    let mut total = 0u64;
    for worker in workers {
        let (requests, versions) = worker.join().unwrap();
        assert!(requests > 0, "every client made progress");
        total += requests;
        assert!(
            versions.iter().all(|v| (1..=3).contains(v)),
            "unknown snapshot_version in {versions:?}"
        );
    }
    assert!(reused_total > 0, "no leaf was ever reused — delta path never engaged live");
    assert_eq!(server.metrics().server_errors(), 0, "zero 5xx across {total} requests + 2 swaps");
    let stats = api.stats();
    assert_eq!(stats.snapshot_version, 3, "frontend finished on the last published snapshot");
    assert_eq!(stats.model_swaps, 2);

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// The registry admission path must reject a pipeline output whose
/// snapshot bytes were tampered with after the build — the publish loop
/// is only safe end-to-end because admission re-validates.
#[test]
fn tampered_pipeline_snapshot_fails_admission() {
    let root = tempdir("tamper");
    let corpus = ChurnCorpus::new(spec(0xBAD), 0.0);
    let output = pipeline_build(&corpus, None);
    let registry = ModelRegistry::open(&root).unwrap();

    let mut bytes = output.bytes.to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    let err = registry.publish_with_files(&bytes, "tampered", &[("BUILDINFO", b"x" as &[u8])]);
    assert!(err.is_err(), "corrupt snapshot must fail admission");
    assert!(registry.versions().unwrap().is_empty(), "rejected publish must not linger");
    std::fs::remove_dir_all(&root).ok();
}

//! Multi-tenant serving integration: eight tenants behind one fleet
//! server with a residency cap of three, concurrent per-tenant clients,
//! and explicit evictions plus hot-swap publishes mid-run — the
//! acceptance gate for the tenant fleet.
//!
//! Invariants pinned here:
//! * zero 5xx while tenants are admitted, LRU-evicted, explicitly
//!   evicted, re-admitted, and hot-swapped under live traffic;
//! * tenant isolation under churn — a request to tenant T only ever
//!   answers with T's keyphrases, whatever the residency state;
//! * the residency cap holds at all times (checked after the storm);
//! * evict → re-admit serves answers identical to the tenant's first
//!   admission.

use graphex_core::{GraphExBuilder, GraphExConfig, GraphExModel, KeyphraseRecord, LeafId};
use graphex_serving::{FleetConfig, TenantFleet};
use graphex_server::{HttpClient, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TENANTS: usize = 8;
const RESIDENT_CAP: usize = 3;

fn tenant_name(tag: usize) -> String {
    format!("tenant-{tag}")
}

fn tenant_model(tag: usize) -> GraphExModel {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    GraphExBuilder::new(config)
        .add_records((0..6u32).map(|i| {
            KeyphraseRecord::new(
                format!("tenant{tag} widget edition{i}"),
                LeafId(i % 2),
                100 + i,
                10,
            )
        }))
        .build()
        .unwrap()
}

fn infer_body(tag: usize) -> String {
    format!(r#"{{"title":"tenant{tag} widget edition0","leaf":0,"k":3}}"#)
}

/// Sends one request to `tag`'s tenant path and returns its keyphrases,
/// asserting 2xx and isolation (only `tenantN …` phrases come back).
fn ask(client: &mut HttpClient, tag: usize, context: &str) -> Vec<String> {
    let path = format!("/v1/t/{}/infer", tenant_name(tag));
    let response = client.post_json(&path, &infer_body(tag)).unwrap();
    assert!(
        response.status < 500,
        "{context}: tenant {tag} got 5xx {}: {}",
        response.status,
        response.text()
    );
    assert_eq!(response.status, 200, "{context}: {}", response.text());
    let body = graphex_server::json::parse(&response.text()).unwrap();
    let keyphrases: Vec<String> = body
        .get("keyphrases")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|k| k.as_str().unwrap().to_string())
        .collect();
    assert!(!keyphrases.is_empty(), "{context}: tenant {tag} answered empty");
    let marker = format!("tenant{tag} ");
    assert!(
        keyphrases.iter().all(|k| k.starts_with(&marker)),
        "{context}: tenant {tag} leaked another tenant's phrases: {keyphrases:?}"
    );
    keyphrases
}

#[test]
fn eight_tenants_cap_three_zero_5xx_through_evictions_and_hot_swaps() {
    let root = std::env::temp_dir().join(format!("graphex-tenancy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let fleet = Arc::new(
        TenantFleet::open(
            &root,
            FleetConfig { resident_cap: RESIDENT_CAP, ..FleetConfig::default() },
        )
        .unwrap(),
    );
    for tag in 0..TENANTS {
        fleet.publish_model(&tenant_name(tag), &tenant_model(tag), "v1").unwrap();
    }
    let server = graphex_server::start_fleet(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 6,
            queue_depth: 64,
            max_body_bytes: 1 << 16,
            deadline: None, // the zero-5xx gate must not race a timer
            keep_alive_timeout: Duration::from_secs(5),
            trace: Default::default(),
            history: Default::default(),
        },
        Arc::clone(&fleet),
    )
    .unwrap();
    let addr = server.addr();

    // Baseline answers from each tenant's first admission.
    let mut client = HttpClient::connect(addr).unwrap();
    let baseline: Vec<Vec<String>> =
        (0..TENANTS).map(|tag| ask(&mut client, tag, "baseline")).collect();
    drop(client);

    // Storm: one keep-alive client per tenant while the driver below
    // evicts and republishes underneath.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..TENANTS)
        .map(|tag| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut requests = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    ask(&mut client, tag, "storm");
                    requests += 1;
                }
                requests
            })
        })
        .collect();

    // Mid-run churn: explicit evictions walk the fleet while same-content
    // v2 publishes hot-swap whoever is resident (a cold tenant just
    // gains the version for its next admission).
    for round in 0..3 {
        std::thread::sleep(Duration::from_millis(60));
        for tag in 0..TENANTS {
            if (tag + round) % 3 == 0 {
                fleet.evict(&tenant_name(tag)).unwrap();
            }
        }
        let tag = round % TENANTS;
        fleet.publish_model(&tenant_name(tag), &tenant_model(tag), "v2").unwrap();
    }
    std::thread::sleep(Duration::from_millis(60));
    stop.store(true, Ordering::Relaxed);

    let mut total_requests = 0u64;
    for worker in workers {
        let requests = worker.join().unwrap();
        assert!(requests > 0, "every tenant's client made progress");
        total_requests += requests;
    }
    assert!(total_requests > 100, "storm too small to mean anything: {total_requests}");
    assert_eq!(
        server.metrics().server_errors(),
        0,
        "evictions/hot-swaps under load caused 5xx"
    );
    assert!(fleet.resident_count() <= RESIDENT_CAP, "residency cap violated");
    let table = fleet.list();
    assert_eq!(table.len(), TENANTS);
    let evictions: u64 = table.iter().map(|t| t.evictions).sum();
    let admissions: u64 = table.iter().map(|t| t.admissions).sum();
    assert!(evictions >= TENANTS as u64, "storm must churn residency: {evictions} evictions");
    assert!(admissions > evictions, "every eviction was preceded by an admission");

    // Evict everything, then re-admit: answers are identical to each
    // tenant's first admission (publishes were same-content).
    for tag in 0..TENANTS {
        fleet.evict(&tenant_name(tag)).unwrap();
    }
    assert_eq!(fleet.resident_count(), 0);
    let mut client = HttpClient::connect(addr).unwrap();
    for (tag, expected) in baseline.iter().enumerate() {
        let again = ask(&mut client, tag, "re-admission");
        assert_eq!(&again, expected, "tenant {tag} changed answers across evict → re-admit");
    }

    // The republished tenants serve their v2 snapshot after re-admission
    // (asserted on the response, since the cold-status row reports 0).
    for tag in 0..3 {
        let path = format!("/v1/t/{}/infer", tenant_name(tag));
        let response = client.post_json(&path, &infer_body(tag)).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        let body = graphex_server::json::parse(&response.text()).unwrap();
        assert_eq!(
            body.get("snapshot_version").unwrap().as_u64(),
            Some(2),
            "publish did not take for tenant {tag}"
        );
    }
    assert_eq!(server.metrics().server_errors(), 0);

    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

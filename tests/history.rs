//! Telemetry-history gates (the PR-10 CI gate): the ring must tell the
//! truth across the events that restructure the serving backend.
//!
//! 1. **History under hot-swap** — a registry-backed server samples
//!    under traffic, hot-swaps to a republished snapshot, and samples
//!    again: ticks stay contiguous, cumulative series stay monotone
//!    (counters never reset on swap), the final `serve/requests` equals
//!    the exact request count (no loss, no double-count), and
//!    `model/snapshot_version` / `model/swaps` step at the swap.
//! 2. **History under eviction** — a resident-cap-1 fleet evicts and
//!    re-admits tenants under per-tenant traffic: the per-tenant series
//!    survive eviction (the fleet folds evicted tenants' lifetime
//!    counters), stay monotone, and land on the exact totals.
//! 3. **Off switch** — a server booted with history disabled exposes no
//!    ring: `/debug/history` is 404 and the statusz block is `null`.

use graphex_core::{GraphExBuilder, GraphExConfig, GraphExModel, KeyphraseRecord, LeafId};
use graphex_serving::{FleetConfig, KvStore, ModelRegistry, ServingApi, TenantFleet};
use graphex_server::{HistoryConfig, HttpClient, Json, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-history-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn widget_model(tag: &str) -> GraphExModel {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    GraphExBuilder::new(config)
        .add_records((0..6u32).map(|i| {
            KeyphraseRecord::new(format!("{tag} widget {i}"), LeafId(1), 40 + i, 5)
        }))
        .build()
        .unwrap()
}

/// Server config with an effectively-manual sampler: the interval is an
/// hour, so every ring sample in these tests comes from an explicit
/// `sample_history_now()` — deterministic sample counts. No request
/// deadline: these gates check counter truth, not latency, and a loaded
/// CI machine must not turn a slow accept into a 503.
fn manual_history_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        history: HistoryConfig { interval: Duration::from_secs(3600), ..Default::default() },
        deadline: None,
        keep_alive_timeout: Duration::from_secs(60),
        ..Default::default()
    }
}

fn infer(client: &mut HttpClient, path: &str, title: &str) {
    let body = format!(r#"{{"title":{title:?},"leaf":1,"k":3}}"#);
    let response = client.post_json(path, &body).expect("infer request");
    assert_eq!(response.status, 200, "{}", response.text());
}

/// Ticks must be contiguous and increasing: a gap means a sample was
/// lost, a repeat means one was double-recorded.
fn assert_contiguous_ticks(history: &graphex_server::MetricsHistory) {
    let samples = history.samples(usize::MAX);
    assert!(!samples.is_empty());
    for pair in samples.windows(2) {
        assert_eq!(pair[1].tick, pair[0].tick + 1, "ticks must be contiguous");
    }
}

fn assert_monotone(series: &[f64], key: &str) {
    for pair in series.windows(2) {
        assert!(pair[1] >= pair[0], "{key} regressed: {series:?}");
    }
}

#[test]
fn history_survives_registry_hot_swap_without_losing_or_double_counting() {
    let root = tempdir("swap");
    let registry = Arc::new(ModelRegistry::open(&root).unwrap());
    registry.publish(&widget_model("alpha"), "v1").unwrap();
    let api = Arc::new(ServingApi::with_watch(
        registry.watch().unwrap(),
        Arc::new(KvStore::new()),
        10,
    ));
    let server = graphex_server::start(manual_history_config(), Arc::clone(&api)).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Phase 1: traffic on snapshot v1, then a forced sample.
    for i in 0..4 {
        infer(&mut client, "/v1/infer", &format!("alpha widget {i}"));
    }
    server.sample_history_now();

    // Hot-swap: publishing v2 activates it under the live server (the
    // watch observes the new snapshot on its next resolution).
    let meta = registry.publish(&widget_model("alpha"), "v2").unwrap();
    assert_eq!(meta.version, 2);

    // Phase 2: more traffic on v2, then two more samples.
    for i in 0..3 {
        infer(&mut client, "/v1/infer", &format!("alpha widget {i}"));
    }
    server.sample_history_now();
    server.sample_history_now();

    let history = server.history().expect("history enabled").clone();
    assert_contiguous_ticks(&history);
    assert_eq!(history.recorded(), 3);

    // Cumulative serve counter: monotone across the swap, exact total —
    // a swap that reset the counter would show 4 → 3, a double-count
    // 4 → 11.
    let requests = history.series("serve/requests", usize::MAX);
    assert_eq!(requests.len(), 3);
    assert_monotone(&requests, "serve/requests");
    assert_eq!(requests[0], 4.0);
    assert_eq!(*requests.last().unwrap(), 7.0);

    // The swap itself is visible in the ring.
    let versions = history.series("model/snapshot_version", usize::MAX);
    assert_eq!(versions[0], 1.0, "phase 1 served snapshot v1");
    assert_eq!(*versions.last().unwrap(), 2.0, "phase 2 served snapshot v2");
    let swaps = history.series("model/swaps", usize::MAX);
    assert_eq!(swaps[0], 0.0);
    assert_eq!(*swaps.last().unwrap(), 1.0);

    // The HTTP layer saw all 7 requests too.
    let http = history.series("http/requests", usize::MAX);
    assert_eq!(*http.last().unwrap(), 7.0);

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn per_tenant_history_survives_eviction_and_readmission() {
    let root = tempdir("evict");
    let fleet = Arc::new(
        TenantFleet::open(&root, FleetConfig { resident_cap: 1, ..FleetConfig::default() })
            .unwrap(),
    );
    fleet.publish_model("a", &widget_model("a"), "v1").unwrap();
    fleet.publish_model("b", &widget_model("b"), "v1").unwrap();
    let server = graphex_server::start_fleet(manual_history_config(), Arc::clone(&fleet)).unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Phase 1: tenant a serves 3 requests (admitting a).
    for i in 0..3 {
        infer(&mut client, "/v1/t/a/infer", &format!("a widget {i}"));
    }
    server.sample_history_now();

    // Phase 2: tenant b serves 2 (cap 1 → a is evicted).
    for i in 0..2 {
        infer(&mut client, "/v1/t/b/infer", &format!("b widget {i}"));
    }
    server.sample_history_now();

    // Phase 3: tenant a again (re-admitted, b evicted).
    for i in 0..2 {
        infer(&mut client, "/v1/t/a/infer", &format!("a widget {i}"));
    }
    server.sample_history_now();

    let history = server.history().expect("history enabled").clone();
    assert_contiguous_ticks(&history);
    assert_eq!(history.recorded(), 3);

    // Tenant a's cumulative counter must survive the eviction between
    // samples 1 and 3: monotone, exact final total (an eviction that
    // dropped the folded counters would show 3 → 2; a double-fold
    // 3 → 8).
    let a = history.series("tenant/a/serve/requests", usize::MAX);
    assert_eq!(a, vec![3.0, 3.0, 5.0]);
    let b = history.series("tenant/b/serve/requests", usize::MAX);
    assert_eq!(*b.last().unwrap(), 2.0);
    assert_monotone(&a, "tenant/a/serve/requests");
    assert_monotone(&b, "tenant/b/serve/requests");

    // Residency actually churned: a was resident, evicted, re-admitted.
    let resident = history.series("tenant/a/resident", usize::MAX);
    assert_eq!(resident, vec![1.0, 0.0, 1.0], "cap-1 fleet must evict a for b");

    // Fleet-level residency never exceeds the cap in any sample.
    for sample in history.samples(usize::MAX) {
        let resident = sample.value("fleet/resident").unwrap();
        assert!(resident <= 1.0, "resident {resident} exceeds cap 1");
    }

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn disabled_history_exposes_no_surface() {
    let api = Arc::new(ServingApi::new(
        Arc::new(widget_model("solo")),
        Arc::new(KvStore::new()),
        10,
    ));
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        history: HistoryConfig { enabled: false, ..Default::default() },
        deadline: None,
        keep_alive_timeout: Duration::from_secs(60),
        ..Default::default()
    };
    let server = graphex_server::start(config, api).unwrap();
    assert!(server.history().is_none());
    server.sample_history_now(); // must be a no-op, not a panic

    let mut client = HttpClient::connect(server.addr()).unwrap();
    infer(&mut client, "/v1/infer", "solo widget 1");
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let response = client.get("/debug/history").unwrap();
    assert_eq!(response.status, 404, "disabled history must 404");

    let mut client = HttpClient::connect(server.addr()).unwrap();
    let status = client.get("/statusz").unwrap();
    let parsed = graphex_server::json::parse(&status.text()).unwrap();
    assert!(
        matches!(parsed.get("history"), Some(Json::Null)),
        "statusz history block must be null when disabled: {}",
        status.text()
    );
    server.shutdown();
}

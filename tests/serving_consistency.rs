//! Serving-architecture integration: the batch path and the NRT path must
//! produce identical recommendations for identical items (the invariant
//! that makes the Fig. 7 split safe to operate).

use graphex_serving::batch::BatchItem;
use graphex_serving::{BatchPipeline, ItemEvent, KvStore, NrtConfig, NrtService};
use graphex_suite::{tiny_dataset, tiny_model};
use std::sync::Arc;

#[test]
fn batch_and_nrt_agree_item_by_item() {
    let ds = tiny_dataset(0x5C1);
    let model = Arc::new(tiny_model(&ds));

    let items: Vec<BatchItem> = ds
        .marketplace
        .items
        .iter()
        .take(200)
        .map(|i| BatchItem { id: i.id, title: i.title.clone(), leaf: i.leaf })
        .collect();

    // Batch path.
    let batch_store = KvStore::new();
    BatchPipeline::new(&model, &batch_store, 15, 4).run_full(&items);

    // NRT path over the same items (same k as the batch path).
    let nrt_store = Arc::new(KvStore::new());
    let service = NrtService::start(
        model.clone(),
        nrt_store.clone(),
        NrtConfig { k: 15, ..NrtConfig::default() },
    );
    for item in &items {
        service.submit(ItemEvent::Created { id: item.id, title: item.title.clone(), leaf: item.leaf });
    }
    service.shutdown();

    let mut compared = 0usize;
    for item in &items {
        match (batch_store.get(u64::from(item.id)), nrt_store.get(u64::from(item.id))) {
            (Some(a), Some(b)) => {
                assert_eq!(a.keyphrases, b.keyphrases, "divergence on item {}", item.id);
                compared += 1;
            }
            (None, None) => {} // both paths skipped it (no candidates)
            (a, b) => panic!("paths disagree on item {} presence: {:?} vs {:?}", item.id, a.is_some(), b.is_some()),
        }
    }
    assert!(compared > 100, "too few comparable items: {compared}");
}

#[test]
fn differential_refresh_after_revision() {
    let ds = tiny_dataset(0x5C2);
    let model = Arc::new(tiny_model(&ds));
    let store = KvStore::new();
    let pipeline = BatchPipeline::new(&model, &store, 15, 2);

    let mut items: Vec<BatchItem> = ds
        .marketplace
        .items
        .iter()
        .take(50)
        .map(|i| BatchItem { id: i.id, title: i.title.clone(), leaf: i.leaf })
        .collect();
    pipeline.run_full(&items);
    let before = store.get(u64::from(items[0].id));

    // Seller revises item 0's title to a different product in the same leaf.
    let donor = ds
        .marketplace
        .items
        .iter()
        .find(|i| i.leaf == items[0].leaf && i.product != ds.marketplace.items[items[0].id as usize].product)
        .expect("another product in the leaf");
    items[0].title = donor.title.clone();
    pipeline.run_differential(&items[..1]);
    let after = store.get(u64::from(items[0].id));

    match (before, after) {
        (Some(b), Some(a)) => {
            assert!(a.version > b.version, "version must bump on refresh");
            assert_ne!(a.keyphrases, b.keyphrases, "revision should change recommendations");
        }
        _ => panic!("item lost from store"),
    }
}

#[test]
fn nrt_survives_event_burst_with_rapid_revisions() {
    let ds = tiny_dataset(0x5C3);
    let model = Arc::new(tiny_model(&ds));
    let store = Arc::new(KvStore::new());
    let service = NrtService::start(
        model,
        store.clone(),
        NrtConfig { window_size: 32, window_timeout: std::time::Duration::from_millis(5), k: 10 },
    );
    // 1000 events over 100 items: heavy revision churn.
    for round in 0..10u32 {
        for item in ds.marketplace.items.iter().take(100) {
            service.submit(ItemEvent::Revised {
                id: item.id,
                title: format!("{} rev{round}", item.title),
                leaf: item.leaf,
            });
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.events_received, 1000);
    assert_eq!(stats.items_scored + stats.deduplicated, 1000);
    // All 100 items end up served, each at the latest revision processed.
    let served = (0..100u64).filter(|&i| store.get(i).is_some()).count();
    assert!(served >= 95, "served only {served}/100 after burst");
}

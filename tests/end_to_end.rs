//! End-to-end integration: simulator → curation → construction → inference
//! → oracle, across crate boundaries.

use graphex_core::parallel::batch_infer;
use graphex_core::{serialize, Engine, InferRequest, Outcome, Scratch};
use graphex_suite::{tiny_dataset, tiny_model};

#[test]
fn dataset_to_predictions_to_relevance() {
    let ds = tiny_dataset(0xE2E);
    let model = tiny_model(&ds);
    let oracle = ds.oracle();

    // Over a sample of items, GraphEx's top predictions must be mostly
    // oracle-relevant: the whole point of constrained extraction.
    let mut relevant = 0usize;
    let mut total = 0usize;
    let mut scratch = Scratch::new();
    for item in ds.test_items(60, 1) {
        let request = InferRequest::new(&item.title, item.leaf).k(5).resolve_texts(true);
        let response = model.infer_request(&request, &mut scratch);
        assert_ne!(response.outcome, Outcome::UnknownLeaf, "test items come from known leaves");
        for text in &response.texts {
            total += 1;
            if oracle.is_relevant(item, text) {
                relevant += 1;
            }
        }
    }
    assert!(total > 50, "too few predictions to judge: {total}");
    let rp = relevant as f64 / total as f64;
    assert!(rp > 0.35, "top-5 relevance too low end-to-end: {rp:.3}");
}

#[test]
fn predictions_are_real_buyer_queries() {
    // Every GraphEx output must be a phrase buyers actually searched —
    // the in-vocabulary guarantee (paper Sec. I-A4).
    let ds = tiny_dataset(0xE2F);
    let engine = Engine::from_model(tiny_model(&ds));
    let oracle = ds.oracle();
    for item in ds.test_items(40, 2) {
        let request = InferRequest::new(&item.title, item.leaf).k(10).resolve_texts(true);
        for text in &engine.infer(&request).texts {
            assert!(
                oracle.query_by_text(text).is_some(),
                "prediction {text:?} is not in the query universe"
            );
        }
    }
}

#[test]
fn serialization_roundtrip_mid_pipeline() {
    let ds = tiny_dataset(0xE30);
    let model = tiny_model(&ds);
    let bytes = serialize::to_bytes(&model);
    let restored = serialize::from_bytes(&bytes).expect("roundtrip");
    let mut scratch = Scratch::new();
    for item in ds.test_items(25, 3) {
        let request = InferRequest::new(&item.title, item.leaf).k(10).resolve_texts(true);
        let a = model.infer_request(&request, &mut scratch);
        let b = restored.infer_request(&request, &mut scratch);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.texts, b.texts);
    }
}

#[test]
fn parallel_batch_equals_sequential() {
    let ds = tiny_dataset(0xE31);
    let model = tiny_model(&ds);
    let items = ds.test_items(80, 4);
    // Mixed per-request budgets: the batch path must honour each envelope.
    let requests: Vec<InferRequest<'_>> = items
        .iter()
        .enumerate()
        .map(|(i, item)| InferRequest::new(&item.title, item.leaf).k(5 + (i % 3) * 5).id(i as u64))
        .collect();
    let seq = batch_infer(&model, &requests, 1);
    let par = batch_infer(&model, &requests, 8);
    assert_eq!(seq, par);
    // Engine::infer_batch rides the same machinery and must agree too.
    let engine = Engine::from_model(model);
    assert_eq!(engine.infer_batch(&requests, 8), seq);
}

#[test]
fn curation_threshold_monotonicity_end_to_end() {
    // Stricter curation ⇒ never more keyphrases, and the surviving ones are
    // higher-volume.
    use graphex_core::{GraphExBuilder, GraphExConfig};
    let ds = tiny_dataset(0xE32);
    let build = |threshold: u32| {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = threshold;
        GraphExBuilder::new(config).add_records(ds.keyphrase_records()).build()
    };
    let loose = build(1).expect("loose model");
    let strict = build(8).expect("strict model");
    assert!(strict.num_keyphrases() <= loose.num_keyphrases());
}

#[test]
fn corrupt_model_fails_loudly_never_silently() {
    let ds = tiny_dataset(0xE33);
    let model = tiny_model(&ds);
    let bytes = serialize::to_bytes(&model).to_vec();
    for (i, _) in bytes.iter().enumerate().step_by(bytes.len() / 37 + 1) {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0x5A;
        match serialize::from_bytes(&corrupted) {
            Err(_) => {}
            Ok(_) => panic!("bitflip at byte {i} silently accepted"),
        }
    }
}

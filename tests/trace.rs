//! End-to-end request tracing gates (the PR-9 CI gate):
//!
//! 1. **Cross-layer propagation** — concurrent traffic through the
//!    scatter-gather router into overlay-enabled sharded backends, with
//!    live upserts mid-run: every response carries a trace id (header +
//!    body), every id is retrievable from the router's `/debug/traces`,
//!    router records embed per-backend stage breakdowns under the same
//!    id, and the same id appears in the owning backend's own ring.
//! 2. **Stage-sum consistency** — spans on the serving path never
//!    overlap, so per-record `sum(spans)` stays within slack of the
//!    end-to-end latency (upper bound always; a coverage lower bound
//!    once the request is long enough for the clock to resolve it).
//! 3. **Overlay attribution** — a request served from an overlaid leaf
//!    records an `overlay_consult` span whose detail is the leaf id.
//! 4. **Tenant attribution** — fleet-mode traces carry the tenant name.
//! 5. **Off switch** — a server booted with tracing disabled exposes no
//!    trace surface at all: no ids, no `/debug/traces`, no stage
//!    metrics, and a `null` statusz block.

use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId, Stage};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildOutput, BuildPlan, MarketsimSource};
use graphex_serving::{FleetConfig, KvStore, ModelRegistry, OverlayStore, ServingApi, TenantFleet};
use graphex_server::{
    start_router, HttpClient, Json, RouterConfig, ServerConfig, ServerHandle, ShardMap,
    TraceConfig, TRACE_HEADER,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: u32 = 3;

/// Slack for the stage-sum gates: per record, the sum of spans may
/// overshoot the end-to-end total by at most [`SUM_SLACK_US`] (clock
/// reads bracket the total from inside); across all audited records the
/// spans must cover at least [`MIN_COVERAGE`] of the summed totals. The
/// coverage bound is aggregate, not per record, because a preemption
/// between two spans inflates one record's total without touching its
/// spans — scheduler noise, not a tracing gap.
const SUM_SLACK_US: f64 = 1_000.0;
const MIN_COVERAGE: f64 = 0.25;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphex-trace-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(seed: u64) -> CategorySpec {
    CategorySpec {
        name: "TRACE".into(),
        seed,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 400,
        num_sessions: 2_500,
        leaf_id_base: 6_000,
    }
}

fn build_gen(corpus: &ChurnCorpus) -> BuildOutput {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config).jobs(2);
    build(&plan, vec![Box::new(MarketsimSource::new(corpus))]).unwrap()
}

/// Three overlay-enabled sharded backends behind a traced router. Unlike
/// `LocalCluster`, every backend gets an `OverlayStore`, so upserts land
/// mid-run and the overlay read path shows up in the traces.
struct Fixture {
    corpus: ChurnCorpus,
    backends: Vec<ServerHandle>,
    map: ShardMap,
    router: graphex_server::RouterHandle,
    root: PathBuf,
}

impl Fixture {
    fn boot(name: &str, seed: u64) -> Self {
        let corpus = ChurnCorpus::new(spec(seed), 0.05);
        let gen0 = build_gen(&corpus);
        let root = tempdir(name);
        let snapshots = gen0.emit_shards(SHARDS).unwrap();
        graphex_pipeline::publish_shards(&snapshots, &root, "gen0").unwrap();

        let mut backends = Vec::new();
        for shard in 0..SHARDS {
            let registry = ModelRegistry::open(graphex_pipeline::shard_root(&root, shard)).unwrap();
            let api = Arc::new(
                ServingApi::with_watch(registry.watch().unwrap(), Arc::new(KvStore::new()), 10)
                    .with_overlay(Arc::new(OverlayStore::new())),
            );
            backends.push(
                graphex_server::start(
                    ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
                    api,
                )
                .unwrap(),
            );
        }
        let map =
            ShardMap::from_backends(backends.iter().map(|b| b.addr().to_string()).collect())
                .unwrap();
        let router = start_router(
            RouterConfig {
                addr: "127.0.0.1:0".into(),
                // A zero-ish slow threshold so the slow ring is provably
                // fed under loopback latencies.
                trace: TraceConfig {
                    slow_threshold: Duration::from_micros(1),
                    ..TraceConfig::default()
                },
                ..Default::default()
            },
            map.clone(),
        )
        .unwrap();
        Self { corpus, backends, map, router, root }
    }

    fn probes(&self, n: usize) -> Vec<(String, u32)> {
        self.corpus
            .marketplace()
            .items
            .iter()
            .take(n)
            .map(|item| (item.title.clone(), item.leaf.0))
            .collect()
    }

    fn shutdown(self) {
        self.router.shutdown();
        for backend in self.backends {
            backend.shutdown();
        }
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn infer_body(title: &str, leaf: u32) -> String {
    Json::obj(vec![
        ("title", Json::str(title)),
        ("leaf", Json::uint(u64::from(leaf))),
        ("k", Json::uint(5)),
    ])
    .render()
}

/// Fetches and parses a ring. Returns the `traces` array.
fn debug_traces(client: &mut HttpClient, query: &str) -> Vec<Json> {
    let response = client.get(&format!("/debug/traces{query}")).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let doc = graphex_server::json::parse(&response.text()).unwrap();
    doc.get("traces").unwrap().as_arr().unwrap().to_vec()
}

fn span_sum_us(spans: &[Json]) -> f64 {
    spans.iter().map(|s| s.get("us").unwrap().as_f64().unwrap()).sum()
}

/// Every span names a stage the current vocabulary knows.
fn assert_spans_well_formed(spans: &[Json], context: &str) {
    assert!(!spans.is_empty(), "{context}: empty span list");
    for span in spans {
        let stage = span.get("stage").unwrap().as_str().unwrap();
        assert!(Stage::from_name(stage).is_some(), "{context}: unknown stage {stage:?}");
        assert!(span.get("us").unwrap().as_f64().is_some(), "{context}: span without us");
        assert!(span.get("start_us").unwrap().as_f64().is_some(), "{context}: span without start");
    }
}

/// The per-record stage-sum gate for one non-overlapping span list:
/// spans can never sum past the end-to-end total. Returns the
/// `(sum, total)` pair for the aggregate coverage gate.
fn assert_sum_bounded(spans: &[Json], total_us: f64, context: &str) -> (f64, f64) {
    let sum = span_sum_us(spans);
    assert!(
        sum <= total_us + SUM_SLACK_US,
        "{context}: span sum {sum:.1}µs exceeds total {total_us:.1}µs + slack"
    );
    (sum, total_us)
}

/// Gates 1-3: concurrent router traffic over overlay-enabled sharded
/// backends, upserts mid-run, then the flight-recorder audits.
#[test]
fn trace_ids_propagate_router_to_backends_with_overlay_upserts_midrun() {
    let fixture = Fixture::boot("gate", 0x7ACE);
    let router_addr = fixture.router.addr();
    let probes = fixture.probes(48);

    // --- Deterministic propagation: a caller-supplied id is honoured,
    // echoed in the header and body, and unlocks the embedded trace.
    let pinned = "00000000deadbeef";
    let mut client = HttpClient::connect(router_addr).unwrap();
    let (title, leaf) = &probes[0];
    let response = client
        .post_json_with_headers("/v1/infer", &infer_body(title, *leaf), &[(TRACE_HEADER, pinned)])
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.header(TRACE_HEADER), Some(pinned));
    let body = graphex_server::json::parse(&response.text()).unwrap();
    assert_eq!(body.get("trace_id").unwrap().as_str(), Some(pinned));
    let embedded = body.get("trace").expect("header-carrying request embeds its trace");
    assert_eq!(embedded.get("id").unwrap().as_str(), Some(pinned));
    assert_spans_well_formed(embedded.get("spans").unwrap().as_arr().unwrap(), "embedded");

    // --- Concurrent traffic: three clients mix singles and cross-shard
    // batches while the main thread onboards brand-new leaves via
    // overlay upserts and reads them back through the router.
    let collected: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let probes = &probes;
                scope.spawn(move || {
                    let mut client = HttpClient::connect(router_addr).unwrap();
                    let mut ids = Vec::new();
                    for r in 0..40usize {
                        let response = if r % 5 == 4 {
                            // A batch spanning several shards.
                            let entries: Vec<String> = (0..3)
                                .map(|j| {
                                    let (title, leaf) = &probes[(t * 13 + r + j * 7) % probes.len()];
                                    infer_body(title, *leaf)
                                })
                                .collect();
                            client
                                .post_json(
                                    "/v1/infer",
                                    &format!(r#"{{"requests":[{}]}}"#, entries.join(",")),
                                )
                                .unwrap()
                        } else {
                            let (title, leaf) = &probes[(t * 13 + r) % probes.len()];
                            client.post_json("/v1/infer", &infer_body(title, *leaf)).unwrap()
                        };
                        assert_eq!(response.status, 200, "{}", response.text());
                        let body = graphex_server::json::parse(&response.text()).unwrap();
                        let id = body.get("trace_id").unwrap().as_str().unwrap().to_string();
                        // Header and body always agree on the id.
                        assert_eq!(response.header(TRACE_HEADER), Some(id.as_str()));
                        ids.push(id);
                    }
                    ids
                })
            })
            .collect();

        // Overlay upserts to brand-new leaves, interleaved with the
        // reader threads; each must be servable through the router on
        // the very next request, with the overlay consult traced. Fresh
        // connections per step: the ring queries in between can outlast
        // a keep-alive window under load.
        for i in 0..6u32 {
            let leaf = 9_000 + i;
            let text = format!("trace onboard item {i} gadget");
            let shard = fixture.map.shard_for_leaf(leaf);
            let upsert = Json::obj(vec![
                ("text", Json::str(text.clone())),
                ("leaf", Json::uint(u64::from(leaf))),
                ("search", Json::uint(40)),
                ("recall", Json::uint(4)),
            ])
            .render();
            let ack = HttpClient::connect(fixture.backends[shard].addr())
                .unwrap()
                .post_json("/v1/upsert", &upsert)
                .unwrap();
            assert_eq!(ack.status, 200, "upsert {i}: {}", ack.text());

            let read = HttpClient::connect(router_addr)
                .unwrap()
                .post_json("/v1/infer", &infer_body(&text, leaf))
                .unwrap();
            assert_eq!(read.status, 200, "overlaid read {i}: {}", read.text());
            let body = graphex_server::json::parse(&read.text()).unwrap();
            assert!(
                !body.get("keyphrases").unwrap().as_arr().unwrap().is_empty(),
                "upserted leaf {leaf} not servable: {}",
                read.text()
            );
            let id = body.get("trace_id").unwrap().as_str().unwrap().to_string();

            // Overlay attribution: the owning backend's record for this
            // id carries an overlay_consult span with detail == leaf.
            let mut backend = HttpClient::connect(fixture.backends[shard].addr()).unwrap();
            let record = debug_traces(&mut backend, "")
                .into_iter()
                .find(|t| t.get("id").unwrap().as_str() == Some(id.as_str()))
                .unwrap_or_else(|| panic!("backend {shard} ring is missing trace {id}"));
            let consult = record
                .get("spans")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .find(|s| s.get("stage").unwrap().as_str() == Some("overlay_consult"))
                .unwrap_or_else(|| panic!("trace {id} has no overlay_consult span: {record:?}"));
            assert_eq!(consult.get("detail").unwrap().as_u64(), Some(u64::from(leaf)));
        }

        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // --- The router ring holds every id the clients were handed.
    let mut client = HttpClient::connect(router_addr).unwrap();
    let ring = debug_traces(&mut client, "");
    let ring_ids: std::collections::HashSet<String> = ring
        .iter()
        .map(|t| t.get("id").unwrap().as_str().unwrap().to_string())
        .collect();
    for ids in &collected {
        for id in ids {
            assert!(ring_ids.contains(id), "router ring lost trace {id}");
        }
    }
    assert!(ring_ids.contains(pinned), "router ring lost the pinned trace");

    // --- Structural + stage-sum audit of every router record.
    let mut saw_multi_backend = false;
    let mut coverage: Vec<(f64, f64)> = Vec::new();
    for record in &ring {
        let id = record.get("id").unwrap().as_str().unwrap();
        assert_eq!(id.len(), 16, "trace id {id:?} is not 16 hex digits");
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "trace id {id:?} is not hex");
        assert_eq!(record.get("status").unwrap().as_u64(), Some(200));
        let total_us = record.get("total_us").unwrap().as_f64().unwrap();
        let spans = record.get("spans").unwrap().as_arr().unwrap();
        assert_spans_well_formed(spans, id);
        assert!(
            spans.iter().any(|s| s.get("stage").unwrap().as_str() == Some("fanout")),
            "router trace {id} has no fanout span"
        );

        // Every infer went to at least one healthy backend, and each
        // involved backend answered with its own breakdown.
        let backends = record
            .get("backends")
            .unwrap_or_else(|| panic!("router trace {id} embeds no backends"))
            .as_arr()
            .unwrap();
        assert!(!backends.is_empty(), "router trace {id}: empty backends array");
        saw_multi_backend |= backends.len() > 1;
        for backend in backends {
            let backend_total = backend.get("total_us").unwrap().as_f64().unwrap();
            let backend_spans = backend.get("spans").unwrap().as_arr().unwrap();
            assert_spans_well_formed(backend_spans, &format!("{id} backend"));
            // The sub-request ran strictly inside the router request.
            assert!(
                backend_total <= total_us + SUM_SLACK_US,
                "{id}: backend total {backend_total:.1}µs exceeds router total {total_us:.1}µs"
            );
            coverage.push(assert_sum_bounded(backend_spans, backend_total, &format!("{id} backend")));
        }

        // Router spans never overlap when a single backend is involved
        // (parse → one fanout → serialize); with several, the fanout
        // spans run concurrently by design, so only the per-backend
        // sums above are audited.
        if backends.len() == 1 {
            coverage.push(assert_sum_bounded(spans, total_us, id));
        }
    }
    assert!(saw_multi_backend, "no batch ever spanned more than one shard");
    let (span_total, e2e_total) =
        coverage.iter().fold((0.0, 0.0), |(s, t), &(sum, total)| (s + sum, t + total));
    assert!(
        span_total >= MIN_COVERAGE * e2e_total,
        "across {} records, spans cover {span_total:.0}µs of {e2e_total:.0}µs end-to-end \
         (<{MIN_COVERAGE} coverage)",
        coverage.len()
    );

    // --- Cross-layer id propagation: the newest collected id is also on
    // its owning backend's ring (the router forwarded the header).
    let newest = collected.iter().flat_map(|ids| ids.last()).next_back().unwrap();
    let found = fixture.backends.iter().any(|b| {
        let mut backend = HttpClient::connect(b.addr()).unwrap();
        debug_traces(&mut backend, "")
            .iter()
            .any(|t| t.get("id").unwrap().as_str() == Some(newest.as_str()))
    });
    assert!(found, "trace {newest} never reached a backend ring");

    // --- Ring filters: the slow ring is fed (1µs threshold) and min_us
    // prunes everything at an absurd floor.
    assert!(!debug_traces(&mut client, "?slow").is_empty(), "slow ring never fed");
    assert!(debug_traces(&mut client, "?min_us=10000000").is_empty(), "min_us filter inert");
    let limited = debug_traces(&mut client, "?limit=3");
    assert_eq!(limited.len(), 3);

    // --- Observability surfaces: statusz latency + trace blocks, stage
    // metrics, and the satellite backend-health columns.
    let status = client.get("/statusz").unwrap();
    assert_eq!(status.status, 200);
    let status = graphex_server::json::parse(&status.text()).unwrap();
    let latency = status.get("latency").expect("router statusz lacks latency block");
    assert!(latency.get("count").unwrap().as_u64().unwrap() > 0);
    let trace_block = status.get("trace").expect("router statusz lacks trace block");
    assert_eq!(trace_block.get("enabled").unwrap().as_bool(), Some(true));
    assert!(trace_block.get("recorded").unwrap().as_u64().unwrap() > 0);
    let stages = trace_block.get("stages").unwrap();
    assert!(stages.get("fanout").is_some(), "no fanout stage aggregates: {stages:?}");
    for row in status.get("backends").unwrap().as_arr().unwrap() {
        assert!(row.get("last_error").unwrap().as_str().is_some());
        // Healthy backends were never probed: the tick stays at 0.
        assert_eq!(row.get("last_probe_tick").unwrap().as_u64(), Some(0));
    }

    let metrics = client.get("/metrics").unwrap().text();
    assert!(metrics.contains("graphex_stage_latency_seconds_count{stage=\"fanout\"}"), "{metrics}");
    assert!(metrics.contains("graphex_traces_recorded_total"), "{metrics}");

    // --- Zero 5xx across every layer, as always.
    assert_eq!(fixture.router.metrics().server_errors(), 0);
    for backend in &fixture.backends {
        assert_eq!(backend.metrics().server_errors(), 0);
    }
    fixture.shutdown();
}

/// Gate 4: fleet-mode traces attribute the tenant that served them.
#[test]
fn fleet_traces_carry_tenant_attribution() {
    let root = tempdir("fleet");
    let fleet = Arc::new(TenantFleet::open(&root, FleetConfig::default()).unwrap());
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    let model = GraphExBuilder::new(config)
        .add_records((0..6u32).map(|i| {
            KeyphraseRecord::new(format!("acme widget edition{i}"), LeafId(i % 2), 100 + i, 10)
        }))
        .build()
        .unwrap();
    fleet.publish_model("acme", &model, "v1").unwrap();
    let server = graphex_server::start_fleet(
        ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        fleet,
    )
    .unwrap();

    let mut client = HttpClient::connect(server.addr()).unwrap();
    let response = client
        .post_json("/v1/t/acme/infer", r#"{"title":"acme widget edition0","leaf":0,"k":3}"#)
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let body = graphex_server::json::parse(&response.text()).unwrap();
    let id = body.get("trace_id").unwrap().as_str().unwrap().to_string();

    let record = debug_traces(&mut client, "")
        .into_iter()
        .find(|t| t.get("id").unwrap().as_str() == Some(id.as_str()))
        .expect("fleet ring is missing the trace");
    assert_eq!(record.get("tenant").unwrap().as_str(), Some("acme"));
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Gate 5: the off switch removes the whole trace surface.
#[test]
fn debug_traces_content_type_and_stage_filter() {
    let ds = graphex_suite::tiny_dataset(0x51A);
    let model = graphex_suite::tiny_model(&ds);
    let api = Arc::new(ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10));
    let server = graphex_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            deadline: None,
            keep_alive_timeout: Duration::from_secs(60),
            ..Default::default()
        },
        api,
    )
    .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for item in ds.marketplace.items.iter().take(3) {
        let response =
            client.post_json("/v1/infer", &infer_body(&item.title, item.leaf.0)).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
    }

    // The debug surface is JSON and says so — report tooling and
    // browsers both key off the header.
    let response = client.get("/debug/traces").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("content-type"), Some("application/json"));
    let all = graphex_server::json::parse(&response.text())
        .unwrap()
        .get("traces")
        .unwrap()
        .as_arr()
        .unwrap()
        .len();
    assert_eq!(all, 3);

    // `?stage=` keeps only traces carrying a span of that stage. Every
    // served infer runs the traversal stage; none runs fanout (that is
    // a router-only stage); an unknown name filters everything rather
    // than erroring.
    assert_eq!(debug_traces(&mut client, "?stage=traversal").len(), 3);
    for trace in debug_traces(&mut client, "?stage=traversal") {
        let spans = trace.get("spans").unwrap().as_arr().unwrap();
        assert!(
            spans.iter().any(|s| s.get("stage").unwrap().as_str() == Some("traversal")),
            "filtered trace lacks the requested stage: {trace:?}"
        );
    }
    assert_eq!(debug_traces(&mut client, "?stage=fanout").len(), 0);
    assert_eq!(debug_traces(&mut client, "?stage=no_such_stage").len(), 0);
    // The filter composes with limit.
    assert_eq!(debug_traces(&mut client, "?stage=traversal&limit=1").len(), 1);
    server.shutdown();
}

#[test]
fn disabled_tracing_exposes_no_surface() {
    let ds = graphex_suite::tiny_dataset(0x0FF);
    let model = graphex_suite::tiny_model(&ds);
    let api = Arc::new(ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10));
    let server = graphex_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            trace: TraceConfig { enabled: false, ..TraceConfig::default() },
            ..Default::default()
        },
        api,
    )
    .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let (title, leaf) = {
        let item = &ds.marketplace.items[0];
        (item.title.clone(), item.leaf.0)
    };
    // Even a caller-supplied id is ignored: no echo, no body stamp.
    let response = client
        .post_json_with_headers(
            "/v1/infer",
            &infer_body(&title, leaf),
            &[(TRACE_HEADER, "00000000deadbeef")],
        )
        .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.header(TRACE_HEADER), None);
    let body = graphex_server::json::parse(&response.text()).unwrap();
    assert!(body.get("trace_id").is_none(), "{}", response.text());
    assert!(body.get("trace").is_none(), "{}", response.text());

    assert_eq!(client.get("/debug/traces").unwrap().status, 404);
    let status = graphex_server::json::parse(&client.get("/statusz").unwrap().text()).unwrap();
    assert!(matches!(status.get("trace"), Some(Json::Null)), "trace block should be null");
    let metrics = client.get("/metrics").unwrap().text();
    assert!(!metrics.contains("graphex_stage_latency_seconds"), "{metrics}");
    server.shutdown();
}

//! Hermetic shim of the `memmap2` crate: read-only file mappings.
//!
//! The container has no network access and no `libc` crate, so the
//! mapping is made with raw Linux syscalls (`mmap`/`munmap` via inline
//! assembly) on the architectures this repo builds for. On any other
//! target — or when the kernel refuses the mapping — [`Mmap::map`]
//! returns an error and callers fall back to a heap read; nothing in
//! this crate panics on an mmap failure.
//!
//! API subset: `Mmap::map(&File)`, `Deref<Target = [u8]>`,
//! `AsRef<[u8]>`, `Send + Sync`, unmap on `Drop`. Mappings are
//! `PROT_READ`/`MAP_PRIVATE`: writes through the file after mapping may
//! or may not be visible (same caveat as the real crate), which is why
//! the snapshot store only maps immutable, checksummed files.
//!
//! This is the one vendor shim that contains `unsafe` code: a memory
//! mapping cannot be expressed in safe std. The unsafety is confined to
//! the two syscalls and the `slice::from_raw_parts` over the mapped
//! region, whose length the kernel guaranteed at `mmap` time.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// An immutable memory-mapped region backed by a file.
///
/// The mapping stays valid for the lifetime of this value (the kernel
/// keeps the pages even if the `File` is closed or the path unlinked)
/// and is unmapped on drop. Page alignment means the base pointer is
/// always at least 4096-byte aligned — comfortably the 8-byte alignment
/// the GEXM v2 zero-copy loader requires.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// The region is immutable shared memory with no interior mutability.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// # Safety contract (matches `memmap2`)
    ///
    /// The underlying file must not be truncated while the mapping is
    /// alive, or reads through the map fault (`SIGBUS`). The snapshot
    /// store upholds this by only mapping immutable published files;
    /// `publish` writes to a staging name and renames.
    ///
    /// # Errors
    ///
    /// Fails with `io::ErrorKind::Unsupported` on targets without a
    /// raw-syscall backend, and with the kernel's errno when `mmap`
    /// itself refuses (e.g. `ENOMEM`). An empty file maps to an empty
    /// (dangling, never dereferenced) region rather than `EINVAL`.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
        }
        let fd = {
            use std::os::unix::io::AsRawFd;
            file.as_raw_fd()
        };
        let ptr = sys::mmap_readonly(fd, len)?;
        Ok(Mmap { ptr, len })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: `ptr` is either a live kernel mapping of exactly `len`
        // bytes, or dangling with `len == 0` (a valid empty slice).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // Nothing useful to do with a munmap failure in drop.
            let _ = sys::munmap(self.ptr, self.len);
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("ptr", &self.ptr).field("len", &self.len).finish()
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use std::io;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    /// Raw 6-argument syscall. Returns the kernel's raw result:
    /// `-4095..=-1` encodes `-errno`.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize, a6: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if (-4095..0).contains(&ret) {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub fn mmap_readonly(fd: i32, len: usize) -> io::Result<*const u8> {
        // Safety: all-zero addr lets the kernel pick placement; fd and
        // len come from an open file's metadata.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        check(ret).map(|addr| addr as *const u8)
    }

    pub fn munmap(ptr: *const u8, len: usize) -> io::Result<()> {
        // Safety: (ptr, len) is exactly what mmap_readonly returned.
        let ret = unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
        check(ret).map(|_| ())
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    use std::io;

    pub fn mmap_readonly(_fd: i32, _len: usize) -> io::Result<*const u8> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "mmap shim: unsupported target"))
    }

    pub fn munmap(_ptr: *const u8, _len: usize) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap-shim-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let map = Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, &payload[..]);
        assert_eq!(map.as_ptr() as usize % 4096, 0, "page-aligned base");
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn survives_file_close_and_unlink() {
        let path = temp_path("unlink");
        std::fs::write(&path, b"persistent bytes").unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        drop(file);
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&*map, b"persistent bytes");
    }

    #[test]
    fn shared_across_threads() {
        let path = temp_path("threads");
        std::fs::write(&path, vec![7u8; 4096 * 3 + 17]).unwrap();
        let map = std::sync::Arc::new(Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let map = std::sync::Arc::clone(&map);
                std::thread::spawn(move || map.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * (4096 * 3 + 17) as u64);
        }
        std::fs::remove_file(&path).ok();
    }
}

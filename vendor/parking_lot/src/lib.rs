//! Offline API-subset shim of `parking_lot`: non-poisoning `Mutex` and
//! `RwLock` wrapping `std::sync`. Lock methods return guards directly
//! (no `Result`), matching the parking_lot API this workspace uses.

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// Mutual exclusion lock; `lock()` never fails (poison is ignored).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock; `read()`/`write()` never fail (poison is ignored).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

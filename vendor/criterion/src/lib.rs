//! Offline API-subset shim of `criterion`.
//!
//! Provides `criterion_group!` / `criterion_main!`, benchmark groups,
//! [`BenchmarkId`], [`Throughput`], and a wall-clock [`Bencher`]. Results
//! are simple mean-per-iteration lines on stdout — no statistics, plots,
//! or baselines. Passing `--test` (or setting `CRITERION_TEST_MODE=1`)
//! runs every benchmark body exactly once, which is what the repo's
//! `bench-smoke` target uses.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level driver handed to every `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_TEST_MODE").is_some_and(|v| v == "1");
        Self { test_mode, default_sample_size: 50 }
    }
}

impl Criterion {
    /// Accepted for drop-in compatibility; CLI args are read in `default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.0, self.test_mode, self.default_sample_size, None, f);
        self
    }
}

/// A named benchmark identifier (plain string under the hood).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Work-per-iteration hint; reported as a rate alongside the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        run_one(&full, self.criterion.test_mode, samples, self.throughput, f);
        self
    }

    /// Ends the group (all reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    /// `0` = run the body once, untimed (test mode).
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.iters == 0 {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F>(name: &str, test_mode: bool, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        println!("{name}: ok (test mode)");
        return;
    }

    // Warmup + calibration: time one iteration to pick a sample count
    // that keeps each benchmark around ~1s wall clock.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(1000);
    let fit = (budget.as_nanos() / per_iter.as_nanos().max(1)) as u64;
    let iters = fit.clamp(1, samples as u64 * 100);

    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("{name}: {} ns/iter ({rate:.0} elem/s, {iters} iters)", fmt_ns(mean_ns));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            println!("{name}: {} ns/iter ({rate:.1} MiB/s, {iters} iters)", fmt_ns(mean_ns));
        }
        None => println!("{name}: {} ns/iter ({iters} iters)", fmt_ns(mean_ns)),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Collects benchmark functions into one group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        // Force test mode so this stays O(1).
        let mut criterion = Criterion { test_mode: true, default_sample_size: 10 };
        let mut calls = 0u32;
        {
            let mut group = criterion.benchmark_group("shim");
            group.sample_size(10).throughput(Throughput::Elements(4));
            group.bench_function("a", |b| b.iter(|| calls += 1));
            group.bench_function(BenchmarkId::from_parameter(2), |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 2, "test mode must run each body exactly once");
    }

    #[test]
    fn measured_mode_times_iterations() {
        let mut criterion = Criterion { test_mode: false, default_sample_size: 3 };
        let mut calls = 0u64;
        criterion.bench_function("count", |b| b.iter(|| calls += 1));
        // warmup once + measured batch at least once more
        assert!(calls >= 2, "expected warmup + measurement, got {calls}");
    }
}

//! Offline API-subset shim of the `bytes` crate: [`Bytes`], [`BytesMut`],
//! and the little-endian [`Buf`]/[`BufMut`] accessors the model
//! serializer uses. Backed by plain `Vec<u8>` — no refcounted slices.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (here: an owned `Vec<u8>` behind `Deref<[u8]>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn from_vec(v: Vec<u8>) -> Self {
        Self(v)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (subset; all integers little-endian helpers).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors over an advancing cursor. Implemented for `&[u8]`,
/// which advances the slice itself — `bytes` crate semantics.
///
/// Like the real crate, the getters panic when the buffer is too short;
/// callers are expected to check [`Buf::remaining`] first (the model
/// deserializer does).
pub trait Buf {
    fn remaining(&self) -> usize;

    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"GEXM");
        buf.put_u8(3);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 4 + 1 + 2 + 4 + 8);

        let mut cursor: &[u8] = &bytes;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"GEXM");
        assert_eq!(cursor.get_u8(), 3);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}

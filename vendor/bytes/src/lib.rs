//! Offline API-subset shim of the `bytes` crate: [`Bytes`], [`BytesMut`],
//! and the little-endian [`Buf`]/[`BufMut`] accessors the model
//! serializer uses.
//!
//! Unlike the first revision of this shim (a plain `Vec<u8>` wrapper),
//! [`Bytes`] is now a **refcounted view** — an `Arc` over an arbitrary
//! byte owner plus a sub-range — so cloning and [`Bytes::slice`] are O(1)
//! and share one allocation. That is the property the zero-copy `GEXM v2`
//! model loader rests on: every CSR/label/score section of a loaded
//! snapshot is a `Bytes` slice into the single load buffer.
//!
//! [`Bytes::from_owner`] mirrors the real crate's `Bytes::from_owner`
//! (bytes ≥ 1.9): any `AsRef<[u8]> + Send + Sync` owner can back a
//! `Bytes`, which is how `graphex-core` keeps its 8-byte-aligned load
//! buffer alive underneath the borrowed sections (and how an mmap'd
//! region would plug in without touching this crate).

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Immutable, refcounted byte buffer view: `Arc<owner>` + a sub-range.
#[derive(Clone)]
pub struct Bytes {
    owner: Arc<dyn AsRef<[u8]> + Send + Sync>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared, zero length).
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// Takes ownership of a `Vec<u8>`.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Self::from_owner(v)
    }

    /// Wraps any byte owner; the `Bytes` (and every slice of it) keeps the
    /// owner alive. This is the real crate's `Bytes::from_owner`.
    pub fn from_owner<T: AsRef<[u8]> + Send + Sync + 'static>(owner: T) -> Self {
        let len = owner.as_ref().len();
        Self { owner: Arc::new(owner), start: 0, end: len }
    }

    /// Copies the viewed range into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view sharing this buffer's owner. O(1); panics if the range
    /// is out of bounds or inverted (same contract as the real crate).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.end - self.start;
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice start {begin} > end {end}");
        assert!(end <= len, "slice end {end} out of bounds (len {len})");
        Self { owner: Arc::clone(&self.owner), start: self.start + begin, end: self.start + end }
    }

    fn as_slice(&self) -> &[u8] {
        &(*self.owner).as_ref()[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (subset; all integers little-endian helpers).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors over an advancing cursor. Implemented for `&[u8]`,
/// which advances the slice itself — `bytes` crate semantics.
///
/// Like the real crate, the getters panic when the buffer is too short;
/// callers are expected to check [`Buf::remaining`] first (the model
/// deserializer does).
pub trait Buf {
    fn remaining(&self) -> usize;

    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"GEXM");
        buf.put_u8(3);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 4 + 1 + 2 + 4 + 8);

        let mut cursor: &[u8] = &bytes;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"GEXM");
        assert_eq!(cursor.get_u8(), 3);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }

    #[test]
    fn slices_share_the_owner() {
        let bytes = Bytes::from_vec((0u8..32).collect());
        let head = bytes.slice(0..8);
        let mid = bytes.slice(8..24);
        let nested = mid.slice(4..8);
        assert_eq!(&head[..], &(0u8..8).collect::<Vec<_>>()[..]);
        assert_eq!(&nested[..], &[12, 13, 14, 15]);
        // Same backing allocation: pointer arithmetic lines up.
        let base = bytes.as_ptr() as usize;
        assert_eq!(head.as_ptr() as usize, base);
        assert_eq!(mid.as_ptr() as usize, base + 8);
        assert_eq!(nested.as_ptr() as usize, base + 12);
        // Dropping the root keeps slices alive (refcount, not borrow).
        drop(bytes);
        assert_eq!(nested.len(), 4);
    }

    #[test]
    fn from_owner_keeps_custom_owner_alive() {
        struct Owner(Vec<u8>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        let b = Bytes::from_owner(Owner(vec![9, 8, 7]));
        let tail = b.slice(1..);
        drop(b);
        assert_eq!(&tail[..], &[8, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from_vec(vec![1, 2, 3]);
        let _ = b.slice(0..4);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::from_vec(vec![1, 2]), Bytes::from_vec(vec![1, 2]));
        assert_ne!(Bytes::from_vec(vec![1]), Bytes::from_vec(vec![2]));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().to_vec(), Vec::<u8>::new());
    }
}

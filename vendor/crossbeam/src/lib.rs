//! Offline API-subset shim of `crossbeam`.
//!
//! * [`channel`] — unbounded MPSC channel over `std::sync::mpsc` (the
//!   workspace uses a single consumer, so MPMC semantics are not needed).
//! * [`thread`] — scoped threads over `std::thread::scope`, returning
//!   `Err` on worker panic like crossbeam does.

pub mod channel {
    //! Unbounded channel with crossbeam's names over `std::sync::mpsc`.

    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded channel (`std::sync::mpsc::channel`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's closure signature: the spawned
    //! closure receives a scope handle argument (callers here ignore it).

    use std::any::Any;

    /// Handle passed to [`Scope::spawn`] closures. Nested spawning is not
    /// supported by the shim; no caller in this workspace uses it.
    pub struct NestedScope(());

    /// Scope handle for spawning workers that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure's argument mirrors
        /// crossbeam's nested-scope handle and can be ignored (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&NestedScope(())))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before returning. A panicking worker makes
    /// the result `Err` with the panic payload (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop(tx);
        assert!(rx.recv().is_err(), "closed channel must error");
    }

    #[test]
    fn recv_timeout_variants() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = super::channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scope_joins_borrowing_workers() {
        let data = [1u64, 2, 3, 4];
        let mut results = vec![0u64; 2];
        super::thread::scope(|scope| {
            for (chunk, out) in data.chunks(2).zip(results.iter_mut()) {
                scope.spawn(move |_| {
                    *out = chunk.iter().sum();
                });
            }
        })
        .unwrap();
        assert_eq!(results, [3, 7]);
    }

    #[test]
    fn scope_reports_worker_panic() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("worker down"));
        });
        assert!(r.is_err());
    }
}

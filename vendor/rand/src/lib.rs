//! Offline API-subset shim of the `rand` crate.
//!
//! Provides the pieces this workspace uses — [`rngs::SmallRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom`] — with deterministic, std-only implementations.
//! See `vendor/README.md` for scope and caveats.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from `low..high` / `low..=high`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`; `NaN` → `false`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p.is_nan() || p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types that can be sampled uniformly from a half-open `[low, high)` range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self;
    /// Inclusive upper bound; only meaningful for integers.
    fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + (high - low) * (rng.next_f64() as $t)
            }
            fn sample_inclusive(low: Self, high: Self, rng: &mut dyn RngCore) -> Self {
                Self::sample_half_open(low, high, rng)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast PRNG: xoshiro256++ seeded via splitmix64.
    ///
    /// Streams are deterministic per seed but not bit-identical to the
    /// crates.io `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from one seed, but keep the guard cheap.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers (subset: `shuffle`, `choose`, `choose_multiple`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// One uniformly chosen element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice
        /// is shorter), as an iterator of references.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up as a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter { slice: self, indices, next: 0 }
        }
    }

    /// Iterator returned by [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        indices: Vec<usize>,
        next: usize,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            let idx = *self.indices.get(self.next)?;
            self.next += 1;
            Some(&self.slice[idx])
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            let rem = self.indices.len() - self.next;
            (rem, Some(rem))
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice identical");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).cloned().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sample with replacement detected");
        // Saturates at slice length.
        assert_eq!(v.choose_multiple(&mut rng, 500).count(), 50);
    }
}

//! Offline API-subset shim of `proptest`.
//!
//! Supports the forms this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * [`Strategy`] with `prop_map`, integer/float range strategies, tuple
//!   strategies, [`collection::vec`], [`sample::select`], [`any`], and a
//!   regex-subset string strategy (`"[a-z]{1,20}"`-style patterns).
//!
//! No shrinking: a failing case panics with the generated inputs'
//! `Debug` left to the assertion message. Runs are deterministic — the
//! RNG is seeded from the property function's name, so a failure
//! reproduces on re-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub use strategy::Strategy;

/// Run-loop configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG driving generation; deterministic per property name.
pub type TestRng = SmallRng;

/// Seeds the per-property RNG from the property's name (FNV-1a), so
/// every `cargo test` run explores the same cases.
pub fn new_rng(property_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// `any::<T>()` — the canonical strategy for `T` (subset of types).
pub fn any<T: Arbitrary>() -> arbitrary::AnyStrategy<T> {
    arbitrary::AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

pub mod arbitrary {
    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy returned by [`super::any`].
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! `prop::collection::vec` and the size-range conversions it needs.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive maximum.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 1..8)` — a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample::select`.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding a uniformly chosen clone of one option.
    pub struct Select<T>(Vec<T>);

    /// `select(options)` — one of the given values, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

// ---- range strategies --------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- regex-subset string strategy --------------------------------------

/// Patterns supported: a sequence of atoms, each `.`, a `[...]` class
/// (ranges, literals, literal `-` last), or a literal character, with an
/// optional `{n}` / `{m,n}` repetition. Covers the patterns used by this
/// workspace's tests (e.g. `"[a-z]{1,20}"`, `".{0,200}"`).
impl Strategy for str {
    type Value = String;
    fn sample_value(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;
    use rand::Rng;

    #[derive(Debug, Clone)]
    enum Atom {
        /// `.` — any char (mostly printable ASCII, occasionally any scalar).
        Dot,
        /// `[...]` — explicit choice set, expanded.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    pub(super) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let reps = rng.gen_range(piece.min..=piece.max);
            for _ in 0..reps {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Dot => {
                if rng.gen_bool(0.9) {
                    // printable ASCII
                    char::from(rng.gen_range(0x20u8..0x7F))
                } else {
                    // any scalar value, skipping the surrogate gap
                    loop {
                        if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                            break c;
                        }
                    }
                }
            }
            Atom::Class(chars) => chars[rng.gen_range(0..chars.len())],
            Atom::Literal(c) => *c,
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().unwrap_or_else(|| {
                            panic!("unterminated character class in pattern {pattern:?}")
                        });
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("range needs a start");
                                let hi = chars.next().expect("range needs an end");
                                for v in lo as u32..=hi as u32 {
                                    if let Some(ch) = char::from_u32(v) {
                                        set.push(ch);
                                    }
                                }
                            }
                            other => {
                                if let Some(p) = prev.take() {
                                    set.push(p);
                                }
                                prev = Some(other);
                            }
                        }
                    }
                    if let Some(p) = prev.take() {
                        set.push(p);
                    }
                    assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
                    Atom::Class(set)
                }
                '\\' => Atom::Literal(
                    chars.next().unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                ),
                other => Atom::Literal(other),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition lower bound"),
                        hi.parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repetition in pattern {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }
}

/// The prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// ---- macros ------------------------------------------------------------

/// Defines property tests. Each body runs `config.cases` times with
/// fresh random inputs; assertion macros panic on failure (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng(stringify!($name));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample_value(&($strat), &mut rng); )+
                    // The closure gives `prop_assume!` an early exit
                    // (`None`) without aborting the whole property.
                    #[allow(clippy::redundant_closure_call)]
                    let _: ::core::option::Option<()> = (move || { $body ::core::option::Option::Some(()) })();
                }
            }
        )*
    };
}

/// Like `assert!`, inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Like `assert_eq!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Like `assert_ne!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_subset_generates_in_language() {
        let mut rng = crate::new_rng("pattern_subset");
        for _ in 0..200 {
            let s = Strategy::sample_value(&"[a-z]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = Strategy::sample_value(&"[ a-z0-9,.!-]{0,200}", &mut rng);
            assert!(t.chars().count() <= 200);
            assert!(
                t.chars().all(|c| matches!(c, ' ' | 'a'..='z' | '0'..='9' | ',' | '.' | '!' | '-')),
                "{t:?}"
            );

            let d = Strategy::sample_value(&".{0,10}", &mut rng);
            assert!(d.chars().count() <= 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires strategies, tuples, maps and vec together.
        #[test]
        fn macro_roundtrip(
            n in 3u32..7,
            (a, b) in (0usize..5, 10usize..=12),
            words in prop::collection::vec("[a-z]{2,4}", 1..4),
            picked in prop::sample::select(vec!["x", "y"]).prop_map(str::to_string),
            byte in any::<u8>(),
        ) {
            prop_assert!((3..7).contains(&n));
            prop_assert!(a < 5 && (10..=12).contains(&b));
            prop_assert!(!words.is_empty() && words.len() < 4);
            for w in &words {
                prop_assert!((2..=4).contains(&w.len()), "{w:?}");
            }
            prop_assert!(picked == "x" || picked == "y");
            let _ = byte;
        }

        /// `prop_assume!` skips cases without failing them.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}

//! The [`Strategy`] trait and its combinators (subset: `prop_map` and
//! tuple composition — no shrinking machinery).

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: strategies sample
/// directly from the RNG and failures are not shrunk.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// References to strategies are strategies (lets generators be shared).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample_value(rng)
    }
}

/// A constant strategy (real proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

//! Cross-model metrics: Fig. 4 rows, exclusive diversity (Fig. 5 /
//! Table IV), and relative precision/recall (Table V).

use crate::harness::Evaluation;
use graphex_textkit::FxHashSet;

/// One bar group of the paper's Fig. 4: average per-item counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    pub model: String,
    pub avg_irrelevant: f64,
    pub avg_relevant_tail: f64,
    pub avg_relevant_head: f64,
    pub avg_total: f64,
}

/// Computes Fig. 4's per-model averages.
pub fn fig4_rows(eval: &Evaluation) -> Vec<Fig4Row> {
    let n = eval.items.len().max(1) as f64;
    eval.models
        .iter()
        .map(|m| Fig4Row {
            model: m.name.clone(),
            avg_irrelevant: m.irrelevant() as f64 / n,
            avg_relevant_tail: m.relevant_tail() as f64 / n,
            avg_relevant_head: m.relevant_head() as f64 / n,
            avg_total: m.total_predictions() as f64 / n,
        })
        .collect()
}

/// Average per-item count of **exclusive relevant head** keyphrases per
/// model: judged relevant+head and predicted by *no other* model for that
/// item (the crossed-out regions of the paper's Fig. 5 Venn diagram).
///
/// Returns `(model name, avg exclusive relevant head per item)`.
pub fn exclusive_relevant_head(eval: &Evaluation) -> Vec<(String, f64)> {
    let num_items = eval.items.len();
    let mut out = Vec::with_capacity(eval.models.len());
    for (mi, model) in eval.models.iter().enumerate() {
        let mut exclusive_total = 0usize;
        for item_idx in 0..num_items {
            // Union of every other model's predictions for this item.
            let mut others: FxHashSet<&str> = FxHashSet::default();
            for (oi, other) in eval.models.iter().enumerate() {
                if oi == mi {
                    continue;
                }
                others.extend(other.per_item[item_idx].iter().map(|p| p.text.as_str()));
            }
            exclusive_total += model.per_item[item_idx]
                .iter()
                .filter(|p| p.relevant && p.head && !others.contains(p.text.as_str()))
                .count();
        }
        out.push((model.name.clone(), exclusive_total as f64 / num_items.max(1) as f64));
    }
    out
}

/// Pairwise overlap counts for the Fig. 5 Venn rendering:
/// `(model, unique_count, shared_count)` over all items.
pub fn venn_counts(eval: &Evaluation) -> Vec<(String, usize, usize)> {
    let num_items = eval.items.len();
    let mut out = Vec::with_capacity(eval.models.len());
    for (mi, model) in eval.models.iter().enumerate() {
        let mut unique = 0usize;
        let mut shared = 0usize;
        for item_idx in 0..num_items {
            let mut others: FxHashSet<&str> = FxHashSet::default();
            for (oi, other) in eval.models.iter().enumerate() {
                if oi != mi {
                    others.extend(other.per_item[item_idx].iter().map(|p| p.text.as_str()));
                }
            }
            for p in &model.per_item[item_idx] {
                if others.contains(p.text.as_str()) {
                    shared += 1;
                } else {
                    unique += 1;
                }
            }
        }
        out.push((model.name.clone(), unique, shared));
    }
    out
}

/// Macro-averaged precision/recall of a model against a ground-truth model's
/// predictions (the paper's Table V uses RE as ground truth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrScores {
    pub precision: f64,
    pub recall: f64,
}

/// Computes `model`'s precision/recall treating `ground_truth`'s per-item
/// prediction sets as labels. Items where the ground truth is empty are
/// skipped (no labels to score against).
pub fn precision_recall_vs(eval: &Evaluation, model: &str, ground_truth: &str) -> PrScores {
    let (Some(m), Some(gt)) = (eval.model(model), eval.model(ground_truth)) else {
        return PrScores { precision: 0.0, recall: 0.0 };
    };
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    let mut counted = 0usize;
    for (preds, labels) in m.per_item.iter().zip(&gt.per_item) {
        if labels.is_empty() {
            continue;
        }
        counted += 1;
        let label_set: FxHashSet<&str> = labels.iter().map(|p| p.text.as_str()).collect();
        let hits = preds.iter().filter(|p| label_set.contains(p.text.as_str())).count();
        if !preds.is_empty() {
            precision_sum += hits as f64 / preds.len() as f64;
        }
        recall_sum += hits as f64 / label_set.len() as f64;
    }
    if counted == 0 {
        return PrScores { precision: 0.0, recall: 0.0 };
    }
    PrScores { precision: precision_sum / counted as f64, recall: recall_sum / counted as f64 }
}

/// Perception-centred top-k set quality (the "From Precision to
/// Perception" axes, arXiv:2504.21667): precision metrics cannot tell a
/// varied top-k from ten paraphrases of the winner, so these score the
/// *set*, not its members.
#[derive(Debug, Clone, PartialEq)]
pub struct TopkDiversity {
    pub model: String,
    /// Intra-list diversity: mean pairwise `1 − Jaccard(token sets)`
    /// over each item's top-k, macro-averaged across items. 1.0 = every
    /// pair of predictions is lexically disjoint.
    pub diversity: f64,
    /// Marginal redundancy: for each prediction after the first, its max
    /// Jaccard similarity to any *earlier-ranked* prediction, averaged.
    /// High = later ranks mostly re-say earlier ones.
    pub redundancy: f64,
    /// Distinct-token ratio: unique tokens across the top-k over total
    /// tokens emitted, macro-averaged. A vocabulary-width complement to
    /// the pairwise measures.
    pub distinct_token_ratio: f64,
}

/// Lowercased whitespace token set of one keyphrase.
fn token_set(text: &str) -> FxHashSet<String> {
    text.split_whitespace().map(|t| t.to_lowercase()).collect()
}

fn jaccard(a: &FxHashSet<String>, b: &FxHashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0; // two empty phrases are identical, not disjoint
    }
    let inter = a.iter().filter(|t| b.contains(*t)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union.max(1) as f64
}

/// Scores every model's top-k diversity/redundancy (see
/// [`TopkDiversity`]). Items with fewer than two predictions contribute
/// nothing to the pairwise measures (there is no pair to compare) but
/// still count toward the distinct-token ratio.
pub fn topk_diversity(eval: &Evaluation) -> Vec<TopkDiversity> {
    eval.models
        .iter()
        .map(|m| {
            let mut diversity_sum = 0.0;
            let mut diversity_items = 0usize;
            let mut redundancy_sum = 0.0;
            let mut redundancy_items = 0usize;
            let mut distinct_sum = 0.0;
            let mut distinct_items = 0usize;
            for preds in &m.per_item {
                if preds.is_empty() {
                    continue;
                }
                let tokens: Vec<FxHashSet<String>> =
                    preds.iter().map(|p| token_set(&p.text)).collect();
                let total_tokens: usize = tokens.iter().map(FxHashSet::len).sum();
                if total_tokens > 0 {
                    let mut vocabulary: FxHashSet<&String> = FxHashSet::default();
                    for set in &tokens {
                        vocabulary.extend(set.iter());
                    }
                    distinct_sum += vocabulary.len() as f64 / total_tokens as f64;
                    distinct_items += 1;
                }
                if tokens.len() < 2 {
                    continue;
                }
                let mut pair_sum = 0.0;
                let mut pairs = 0usize;
                let mut marginal_sum = 0.0;
                for i in 1..tokens.len() {
                    let mut max_similarity = 0.0f64;
                    for j in 0..i {
                        let similarity = jaccard(&tokens[i], &tokens[j]);
                        pair_sum += 1.0 - similarity;
                        pairs += 1;
                        max_similarity = max_similarity.max(similarity);
                    }
                    marginal_sum += max_similarity;
                }
                diversity_sum += pair_sum / pairs as f64;
                diversity_items += 1;
                redundancy_sum += marginal_sum / (tokens.len() - 1) as f64;
                redundancy_items += 1;
            }
            let avg = |sum: f64, n: usize| if n == 0 { 0.0 } else { sum / n as f64 };
            TopkDiversity {
                model: m.name.clone(),
                diversity: avg(diversity_sum, diversity_items),
                redundancy: avg(redundancy_sum, redundancy_items),
                distinct_token_ratio: avg(distinct_sum, distinct_items),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{JudgedPrediction, ModelOutcome};
    use crate::judge::HeadThreshold;

    fn pred(text: &str, relevant: bool, head: bool) -> JudgedPrediction {
        JudgedPrediction { text: text.into(), relevant, head }
    }

    fn eval_fixture() -> Evaluation {
        // Two items, three models.
        let a = ModelOutcome {
            name: "A".into(),
            per_item: vec![
                vec![pred("x", true, true), pred("y", true, false), pred("z", false, false)],
                vec![pred("w", true, true)],
            ],
        };
        let b = ModelOutcome {
            name: "B".into(),
            per_item: vec![vec![pred("x", true, true), pred("q", true, true)], vec![]],
        };
        let c = ModelOutcome {
            name: "C".into(),
            per_item: vec![vec![pred("z", false, false)], vec![pred("w", true, true)]],
        };
        Evaluation {
            items: vec![0, 1],
            models: vec![a, b, c],
            head_threshold: HeadThreshold { min_search_count: 0 },
        }
    }

    #[test]
    fn fig4_averages() {
        let eval = eval_fixture();
        let rows = fig4_rows(&eval);
        let a = &rows[0];
        assert_eq!(a.model, "A");
        assert!((a.avg_total - 2.0).abs() < 1e-12); // 4 preds / 2 items
        assert!((a.avg_irrelevant - 0.5).abs() < 1e-12);
        assert!((a.avg_relevant_head - 1.0).abs() < 1e-12); // x, w
        assert!((a.avg_relevant_tail - 0.5).abs() < 1e-12); // y
    }

    #[test]
    fn exclusive_head_excludes_shared_texts() {
        let eval = eval_fixture();
        let ex = exclusive_relevant_head(&eval);
        // A: item0 — "x" shared with B → not exclusive; item1 — "w" shared
        // with C → not exclusive. A total 0.
        assert_eq!(ex[0], ("A".to_string(), 0.0));
        // B: "x" shared; "q" exclusive relevant head → 1 over 2 items = 0.5.
        assert_eq!(ex[1], ("B".to_string(), 0.5));
        // C: "z" irrelevant, "w" shared → 0.
        assert_eq!(ex[2], ("C".to_string(), 0.0));
    }

    #[test]
    fn venn_counts_unique_plus_shared_is_total() {
        let eval = eval_fixture();
        for (name, unique, shared) in venn_counts(&eval) {
            let m = eval.model(&name).unwrap();
            assert_eq!(unique + shared, m.total_predictions());
        }
    }

    #[test]
    fn precision_recall_vs_ground_truth() {
        let eval = eval_fixture();
        // Use B as ground truth: item0 labels {x,q}; item1 labels {} (skipped).
        // A's item0 preds {x,y,z}: hits 1 → P=1/3, R=1/2.
        let pr = precision_recall_vs(&eval, "A", "B");
        assert!((pr.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 0.5).abs() < 1e-12);
        // Perfect self-comparison.
        let self_pr = precision_recall_vs(&eval, "B", "B");
        assert!((self_pr.precision - 1.0).abs() < 1e-12);
        assert!((self_pr.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_models_yield_zero() {
        let eval = eval_fixture();
        let pr = precision_recall_vs(&eval, "nope", "B");
        assert_eq!(pr, PrScores { precision: 0.0, recall: 0.0 });
    }

    fn judged(text: &str) -> crate::harness::JudgedPrediction {
        crate::harness::JudgedPrediction { text: text.into(), relevant: true, head: false }
    }

    fn diversity_eval(per_item: Vec<Vec<&str>>) -> Evaluation {
        Evaluation {
            items: (0..per_item.len() as u32).collect(),
            models: vec![crate::harness::ModelOutcome {
                name: "M".into(),
                per_item: per_item
                    .into_iter()
                    .map(|preds| preds.into_iter().map(judged).collect())
                    .collect(),
            }],
            head_threshold: HeadThreshold { min_search_count: 0 },
        }
    }

    #[test]
    fn disjoint_topk_scores_full_diversity_zero_redundancy() {
        let eval = diversity_eval(vec![vec!["alpha one", "beta two", "gamma three"]]);
        let scores = topk_diversity(&eval);
        let m = &scores[0];
        assert!((m.diversity - 1.0).abs() < 1e-12, "{m:?}");
        assert!(m.redundancy.abs() < 1e-12, "{m:?}");
        assert!((m.distinct_token_ratio - 1.0).abs() < 1e-12, "{m:?}");
    }

    #[test]
    fn duplicate_topk_scores_zero_diversity_full_redundancy() {
        let eval = diversity_eval(vec![vec!["solar panel", "solar panel", "solar panel"]]);
        let scores = topk_diversity(&eval);
        let m = &scores[0];
        assert!(m.diversity.abs() < 1e-12, "{m:?}");
        assert!((m.redundancy - 1.0).abs() < 1e-12, "{m:?}");
        assert!((m.distinct_token_ratio - 2.0 / 6.0).abs() < 1e-12, "{m:?}");
    }

    #[test]
    fn partial_overlap_is_between_the_extremes() {
        // "solar panel" vs "solar panel kit": Jaccard 2/3.
        let eval = diversity_eval(vec![vec!["solar panel", "solar panel kit"]]);
        let m = &topk_diversity(&eval)[0];
        assert!((m.diversity - 1.0 / 3.0).abs() < 1e-12, "{m:?}");
        assert!((m.redundancy - 2.0 / 3.0).abs() < 1e-12, "{m:?}");
        // 3 unique tokens over 5 emitted (2 + 3).
        assert!((m.distinct_token_ratio - 3.0 / 5.0).abs() < 1e-12, "{m:?}");
        // Tokenization is case-insensitive.
        let upper = diversity_eval(vec![vec!["Solar Panel", "solar panel"]]);
        assert!(topk_diversity(&upper)[0].diversity.abs() < 1e-12);
    }

    #[test]
    fn single_prediction_items_skip_pairwise_but_count_tokens() {
        let eval = diversity_eval(vec![vec!["only one"], vec![]]);
        let m = &topk_diversity(&eval)[0];
        assert_eq!((m.diversity, m.redundancy), (0.0, 0.0));
        assert!((m.distinct_token_ratio - 1.0).abs() < 1e-12);
    }
}

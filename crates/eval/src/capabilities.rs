//! Table I: comparative capability matrix of the framework families.
//!
//! These are qualitative claims from the paper (Sec. I/II), encoded as data
//! so `--bin table1` can print the same matrix and tests can assert the
//! shape (GraphEx is the only row with every ✓).

/// Tri-state capability: yes (✓), no (blank), or depends (?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cap {
    Yes,
    No,
    Depends,
}

impl Cap {
    pub fn symbol(self) -> &'static str {
        match self {
            Cap::Yes => "yes",
            Cap::No => "-",
            Cap::Depends => "?",
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct FrameworkRow {
    pub framework: &'static str,
    /// Feasible daily batch or real-time prediction latency?
    pub feasible_latency: Cap,
    /// Click data debiasing?
    pub click_debiasing: Cap,
    /// *Not* susceptible to RE de-duplication? (the paper phrases the row
    /// negatively; we store "survives de-dup" so Yes is good everywhere)
    pub survives_re_dedup: Cap,
    /// 100 % targeting of in-vocabulary keyphrases?
    pub full_targeting: Cap,
    /// Focus on popular (head) keyphrases?
    pub head_focus: Cap,
}

/// The paper's Table I.
pub fn framework_capabilities() -> Vec<FrameworkRow> {
    vec![
        FrameworkRow {
            framework: "XMC-tagging",
            feasible_latency: Cap::Yes,
            click_debiasing: Cap::Depends,
            survives_re_dedup: Cap::Depends,
            full_targeting: Cap::Yes,
            head_focus: Cap::No,
        },
        FrameworkRow {
            framework: "OOV",
            feasible_latency: Cap::Yes,
            click_debiasing: Cap::Yes,
            survives_re_dedup: Cap::Yes,
            full_targeting: Cap::No,
            head_focus: Cap::No,
        },
        FrameworkRow {
            framework: "GraphEx",
            feasible_latency: Cap::Yes,
            click_debiasing: Cap::Yes,
            survives_re_dedup: Cap::Yes,
            full_targeting: Cap::Yes,
            head_focus: Cap::Yes,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphex_is_the_only_all_yes_row() {
        let rows = framework_capabilities();
        let all_yes = |r: &FrameworkRow| {
            [r.feasible_latency, r.click_debiasing, r.survives_re_dedup, r.full_targeting, r.head_focus]
                .iter()
                .all(|&c| c == Cap::Yes)
        };
        let winners: Vec<&str> = rows.iter().filter(|r| all_yes(r)).map(|r| r.framework).collect();
        assert_eq!(winners, ["GraphEx"]);
    }

    #[test]
    fn three_framework_families() {
        assert_eq!(framework_capabilities().len(), 3);
    }

    #[test]
    fn symbols() {
        assert_eq!(Cap::Yes.symbol(), "yes");
        assert_eq!(Cap::No.symbol(), "-");
        assert_eq!(Cap::Depends.symbol(), "?");
    }
}

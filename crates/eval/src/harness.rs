//! Evaluation runner: feed test items through every model, judge every
//! prediction, aggregate.

use crate::judge::{HeadThreshold, RelevanceJudge};
use graphex_baselines::{ItemRef, Recommender};
use graphex_marketsim::catalog::Item;
use graphex_marketsim::CategoryDataset;

/// One judged prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct JudgedPrediction {
    pub text: String,
    /// AI-judge verdict.
    pub relevant: bool,
    /// Evaluation-window head classification (only meaningful when
    /// `relevant`; the paper's "Relevant Head Keyphrases").
    pub head: bool,
}

/// Everything one model produced over the test set.
#[derive(Debug, Clone)]
pub struct ModelOutcome {
    pub name: String,
    /// Judged predictions, per test item (parallel to `Evaluation::items`).
    pub per_item: Vec<Vec<JudgedPrediction>>,
}

impl ModelOutcome {
    pub fn total_predictions(&self) -> usize {
        self.per_item.iter().map(Vec::len).sum()
    }

    pub fn relevant(&self) -> usize {
        self.per_item.iter().flatten().filter(|p| p.relevant).count()
    }

    pub fn relevant_head(&self) -> usize {
        self.per_item.iter().flatten().filter(|p| p.relevant && p.head).count()
    }

    pub fn relevant_tail(&self) -> usize {
        self.per_item.iter().flatten().filter(|p| p.relevant && !p.head).count()
    }

    pub fn irrelevant(&self) -> usize {
        self.per_item.iter().flatten().filter(|p| !p.relevant).count()
    }

    /// Relevant Proportion (RP).
    pub fn rp(&self) -> f64 {
        ratio(self.relevant(), self.total_predictions())
    }

    /// Head Proportion (HP).
    pub fn hp(&self) -> f64 {
        ratio(self.relevant_head(), self.total_predictions())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A full evaluation over one category.
#[derive(Debug)]
pub struct Evaluation {
    /// Item ids of the test set.
    pub items: Vec<u32>,
    pub models: Vec<ModelOutcome>,
    pub head_threshold: HeadThreshold,
}

impl Evaluation {
    /// Runs every model over `test_items`, capping each model at `k`
    /// predictions per item (the paper caps at 40), judging each prediction
    /// with `judge`.
    pub fn run(
        ds: &CategoryDataset,
        models: &[&dyn Recommender],
        test_items: &[&Item],
        k: usize,
        judge: &RelevanceJudge<'_>,
    ) -> Self {
        let head_threshold = HeadThreshold::from_dataset(ds);
        let mut outcomes = Vec::with_capacity(models.len());
        for model in models {
            let mut per_item = Vec::with_capacity(test_items.len());
            for item in test_items {
                let recs =
                    model.recommend(&ItemRef::known(item.id, &item.title, item.leaf), k);
                let judged: Vec<JudgedPrediction> = recs
                    .into_iter()
                    .map(|rec| {
                        let relevant = judge.judge(item, &rec.text);
                        let head = relevant
                            && head_threshold.is_head(ds.eval_search_count(&rec.text));
                        JudgedPrediction { text: rec.text, relevant, head }
                    })
                    .collect();
                per_item.push(judged);
            }
            outcomes.push(ModelOutcome { name: model.name().to_string(), per_item });
        }
        Self { items: test_items.iter().map(|i| i.id).collect(), models: outcomes, head_threshold }
    }

    /// Outcome of a model by name.
    pub fn model(&self, name: &str) -> Option<&ModelOutcome> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Relative Relevant Ratio of `model` vs `reference`
    /// (`# relevant_model / # relevant_reference`, paper Sec. IV-C).
    pub fn rrr(&self, model: &str, reference: &str) -> f64 {
        let m = self.model(model).map_or(0, ModelOutcome::relevant);
        let r = self.model(reference).map_or(0, ModelOutcome::relevant);
        ratio(m, r)
    }

    /// Relative Head Ratio of `model` vs `reference`.
    pub fn rhr(&self, model: &str, reference: &str) -> f64 {
        let m = self.model(model).map_or(0, ModelOutcome::relevant_head);
        let r = self.model(reference).map_or(0, ModelOutcome::relevant_head);
        ratio(m, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_baselines::Rec;
    use graphex_marketsim::CategorySpec;

    /// A scripted fake recommender for harness-level tests.
    struct Fixed {
        name: &'static str,
        recs: Vec<Rec>,
    }

    impl Recommender for Fixed {
        fn name(&self) -> &'static str {
            self.name
        }

        fn recommend(&self, _item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
            self.recs.iter().take(k).cloned().collect()
        }

        fn size_bytes(&self) -> usize {
            0
        }

        fn cold_start_capable(&self) -> bool {
            true
        }
    }

    #[test]
    fn outcome_aggregates() {
        let outcome = ModelOutcome {
            name: "X".into(),
            per_item: vec![
                vec![
                    JudgedPrediction { text: "a".into(), relevant: true, head: true },
                    JudgedPrediction { text: "b".into(), relevant: true, head: false },
                    JudgedPrediction { text: "c".into(), relevant: false, head: false },
                ],
                vec![JudgedPrediction { text: "d".into(), relevant: false, head: false }],
            ],
        };
        assert_eq!(outcome.total_predictions(), 4);
        assert_eq!(outcome.relevant(), 2);
        assert_eq!(outcome.relevant_head(), 1);
        assert_eq!(outcome.relevant_tail(), 1);
        assert_eq!(outcome.irrelevant(), 2);
        assert!((outcome.rp() - 0.5).abs() < 1e-12);
        assert!((outcome.hp() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn run_with_real_dataset_and_fixed_models() {
        let ds = CategoryDataset::generate(CategorySpec::tiny(111));
        let judge = RelevanceJudge::with_noise(&ds, 0.0, 1);
        let items = ds.test_items(10, 1);
        // Model A recommends each item's own generic type query (always
        // relevant); model B recommends gibberish (always irrelevant).
        let own_type_query = {
            let item = items[0];
            let q = ds
                .oracle()
                .relevant_queries(item)
                .into_iter()
                .find(|q| q.constraint.product.is_none())
                .unwrap();
            q.text.clone()
        };
        let a = Fixed { name: "A", recs: vec![Rec { text: own_type_query, score: 1.0 }] };
        let b = Fixed { name: "B", recs: vec![Rec { text: "made up phrase".into(), score: 1.0 }] };
        let test_items: Vec<&graphex_marketsim::catalog::Item> = vec![items[0]];
        let eval = Evaluation::run(&ds, &[&a, &b], &test_items, 40, &judge);
        assert_eq!(eval.model("A").unwrap().relevant(), 1);
        assert_eq!(eval.model("B").unwrap().relevant(), 0);
        assert_eq!(eval.model("B").unwrap().irrelevant(), 1);
        assert_eq!(eval.rrr("B", "A"), 0.0);
        assert!(eval.model("missing").is_none());
    }

    #[test]
    fn rrr_rhr_reference_semantics() {
        let mk = |name: &'static str, rel: usize, head: usize| ModelOutcome {
            name: name.into(),
            per_item: vec![(0..rel)
                .map(|i| JudgedPrediction { text: format!("p{i}"), relevant: true, head: i < head })
                .collect()],
        };
        let eval = Evaluation {
            items: vec![0],
            models: vec![mk("GraphEx", 10, 4), mk("fastText", 5, 2)],
            head_threshold: HeadThreshold { min_search_count: 0 },
        };
        assert!((eval.rrr("fastText", "GraphEx") - 0.5).abs() < 1e-12);
        assert!((eval.rhr("fastText", "GraphEx") - 0.5).abs() < 1e-12);
        assert!((eval.rrr("GraphEx", "GraphEx") - 1.0).abs() < 1e-12);
    }
}

//! # eval — the GraphEx paper's evaluation framework (Sec. IV-C)
//!
//! Click-based precision/recall is unreliable here (sparse MNAR ground
//! truths, model convergence — Sec. I-A3), so the paper evaluates with an
//! **AI judge** (Mixtral-8x7B, >90 % aligned with human judgement) plus a
//! metric set designed for variable-length prediction lists:
//!
//! * **RP** — relevant proportion: relevant / total predictions.
//! * **HP** — head proportion: relevant *head* / total predictions.
//! * **RRR / RHR** — relative relevant/head ratio between two models
//!   (GraphEx in the denominator throughout the paper).
//! * **Exclusive diversity** — relevant head keyphrases *unique to one
//!   retrieval source* (Fig. 5 / Table IV), which is what drives
//!   incremental revenue in a multi-source production stack.
//! * **Relative precision/recall vs the Rules Engine** (Table V), where low
//!   recall is *good* — it means fewer predictions are de-duplicated away
//!   against the 100 %-recall RE source.
//!
//! The judge here is the simulator's exact relevance oracle flipped with
//! deterministic noise (default 8 %, mirroring the paper's ≤10 % judge
//! disagreement); see [`judge::RelevanceJudge`].

pub mod capabilities;
pub mod harness;
pub mod judge;
pub mod metrics;

pub use capabilities::{framework_capabilities, FrameworkRow};
pub use harness::{Evaluation, JudgedPrediction, ModelOutcome};
pub use judge::{HeadThreshold, RelevanceJudge};
pub use metrics::{
    exclusive_relevant_head, precision_recall_vs, topk_diversity, Fig4Row, PrScores, TopkDiversity,
};

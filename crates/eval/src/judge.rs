//! The AI-judge substitute and head/tail classification.
//!
//! Paper Sec. IV-C: each (item, keyphrase) pair is judged relevant or not by
//! Mixtral-8x7B; judged-relevant keyphrases are then split head/tail by a
//! search-count threshold at the 90th percentile of the category's unique
//! keyphrases, computed on the *evaluation window* (15 days, disjoint from
//! training).
//!
//! Our judge wraps the simulator's exact [`RelevanceOracle`] and flips each
//! verdict with a deterministic pseudo-random noise of `noise_rate` — the
//! paper's own benchmark puts the LLM at >90 % agreement with humans, so
//! 8 % noise keeps the measurement error in the same regime. Noise is
//! hash-derived from (item, keyphrase), so verdicts are stable across call
//! order and repeated runs.

use graphex_marketsim::{CategoryDataset, RelevanceOracle};
use graphex_marketsim::catalog::Item;

/// Head/tail split threshold (Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadThreshold {
    /// Minimum evaluation-window search count to call a keyphrase "head"
    /// (strictly greater-than, per "those surpassing this threshold").
    pub min_search_count: u32,
}

impl HeadThreshold {
    /// 90th percentile of the evaluation-window search counts over the
    /// category's unique searched keyphrases, "ensuring 10 % exceed this
    /// limit".
    pub fn from_dataset(ds: &CategoryDataset) -> Self {
        let mut counts: Vec<u32> =
            ds.eval_log.search_counts.iter().copied().filter(|&c| c > 0).collect();
        if counts.is_empty() {
            return Self { min_search_count: u32::MAX };
        }
        counts.sort_unstable();
        let idx = (counts.len() * 9) / 10;
        let idx = idx.min(counts.len() - 1);
        Self { min_search_count: counts[idx] }
    }

    /// Is an evaluation-window search count head-class?
    pub fn is_head(&self, eval_search_count: u32) -> bool {
        eval_search_count > self.min_search_count
    }
}

/// Noisy relevance judge.
///
/// The noise model is **asymmetric**, mirroring how an LLM judge actually
/// errs: it misses true relevance (false "no") and falls for *plausible*
/// near-misses — phrases sharing tokens with the title — at the headline
/// error rate, but almost never calls blatantly off-topic text relevant.
/// A uniform flip would systematically subsidize models that emit large
/// volumes of off-topic predictions, which no LLM judge does.
pub struct RelevanceJudge<'a> {
    oracle: RelevanceOracle<'a>,
    /// P(say "no" | truly relevant).
    false_negative_rate: f64,
    /// P(say "yes" | irrelevant but sharing ≥ 1 token with the title).
    plausible_false_positive_rate: f64,
    /// P(say "yes" | irrelevant with zero token overlap).
    blatant_false_positive_rate: f64,
    salt: u64,
    tokenizer: graphex_textkit::Tokenizer,
}

impl<'a> RelevanceJudge<'a> {
    /// Default judge: 8 % error on the hard cases (paper: >90 % judge-human
    /// agreement), 0.5 % on blatant junk.
    pub fn new(ds: &'a CategoryDataset) -> Self {
        Self::with_noise(ds, 0.08, 0x1D6E)
    }

    /// Judge with an explicit headline noise rate (0.0 = the exact oracle).
    /// The blatant-junk false-positive rate scales as `noise / 16`.
    pub fn with_noise(ds: &'a CategoryDataset, noise_rate: f64, salt: u64) -> Self {
        Self {
            oracle: ds.oracle(),
            false_negative_rate: noise_rate,
            plausible_false_positive_rate: noise_rate,
            blatant_false_positive_rate: noise_rate / 16.0,
            salt,
            tokenizer: graphex_textkit::Tokenizer::default(),
        }
    }

    /// The yes/no verdict of the paper's prompt: is `keyphrase` relevant for
    /// CPC targeting of `item`?
    pub fn judge(&self, item: &Item, keyphrase: &str) -> bool {
        let truth = self.oracle.is_relevant(item, keyphrase);
        let rate = if truth {
            self.false_negative_rate
        } else if self.shares_token(&item.title, keyphrase) {
            self.plausible_false_positive_rate
        } else {
            self.blatant_false_positive_rate
        };
        if rate <= 0.0 {
            return truth;
        }
        let h = verdict_hash(self.salt, item.id, keyphrase);
        // Map the hash to [0,1); flip when below the applicable error rate.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < rate {
            !truth
        } else {
            truth
        }
    }

    fn shares_token(&self, title: &str, keyphrase: &str) -> bool {
        let title_tokens: std::collections::HashSet<String> =
            self.tokenizer.tokenize(title).collect();
        self.tokenizer.tokenize(keyphrase).any(|t| title_tokens.contains(&t))
    }

    /// Access to the exact oracle (for tests and diagnostics).
    pub fn oracle(&self) -> &RelevanceOracle<'a> {
        &self.oracle
    }
}

fn verdict_hash(salt: u64, item: u32, keyphrase: &str) -> u64 {
    // FNV-1a over salt, item id and the phrase.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for b in item.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    for b in keyphrase.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::CategorySpec;

    fn dataset() -> CategoryDataset {
        CategoryDataset::generate(CategorySpec::tiny(101))
    }

    #[test]
    fn zero_noise_judge_equals_oracle() {
        let ds = dataset();
        let judge = RelevanceJudge::with_noise(&ds, 0.0, 1);
        let item = &ds.marketplace.items[0];
        for q in ds.queries.iter().take(100) {
            assert_eq!(judge.judge(item, &q.text), judge.oracle().is_relevant(item, &q.text));
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let ds = dataset();
        let judge = RelevanceJudge::new(&ds);
        let item = &ds.marketplace.items[3];
        for q in ds.queries.iter().take(50) {
            assert_eq!(judge.judge(item, &q.text), judge.judge(item, &q.text));
        }
    }

    #[test]
    fn noise_is_asymmetric_by_plausibility() {
        let ds = dataset();
        let exact = RelevanceJudge::with_noise(&ds, 0.0, 7);
        let noisy = RelevanceJudge::with_noise(&ds, 0.2, 7);
        let (mut rel_flips, mut rel_total) = (0usize, 0usize);
        let (mut junk_flips, mut junk_total) = (0usize, 0usize);
        for item in ds.marketplace.items.iter().take(30) {
            for q in ds.queries.iter().take(300) {
                let truth = exact.judge(item, &q.text);
                let flipped = truth != noisy.judge(item, &q.text);
                if truth {
                    rel_total += 1;
                    rel_flips += usize::from(flipped);
                } else if !noisy.shares_token(&item.title, &q.text) {
                    junk_total += 1;
                    junk_flips += usize::from(flipped);
                }
            }
        }
        let rel_rate = rel_flips as f64 / rel_total.max(1) as f64;
        let junk_rate = junk_flips as f64 / junk_total.max(1) as f64;
        assert!((rel_rate - 0.2).abs() < 0.05, "false-negative rate {rel_rate}");
        assert!(junk_rate < 0.03, "blatant junk false-positive rate {junk_rate}");
    }

    #[test]
    fn head_threshold_puts_about_ten_percent_above() {
        let ds = dataset();
        let threshold = HeadThreshold::from_dataset(&ds);
        let searched: Vec<u32> =
            ds.eval_log.search_counts.iter().copied().filter(|&c| c > 0).collect();
        let above = searched.iter().filter(|&&c| threshold.is_head(c)).count();
        let share = above as f64 / searched.len() as f64;
        assert!(share <= 0.101, "share above threshold: {share}");
        assert!(share > 0.01, "threshold degenerate: {share}");
    }

    #[test]
    fn empty_eval_window_gives_unreachable_threshold() {
        let ds = dataset();
        // Simulate "no searches": threshold from an empty list.
        let t = HeadThreshold { min_search_count: u32::MAX };
        assert!(!t.is_head(1_000_000));
        let real = HeadThreshold::from_dataset(&ds);
        assert!(real.min_search_count < u32::MAX);
    }
}

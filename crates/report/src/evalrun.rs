//! A small judged evaluation for the report's quality section.
//!
//! The full six-model study lives in `graphex-bench`; the report only
//! needs a fast, deterministic quality snapshot, so it trains the two
//! poles of the paper's comparison — GraphEx and the 100%-recall Rules
//! Engine — on a tiny simulated category and runs the judged harness
//! once. RP/HP plus the top-k diversity/redundancy perception metrics
//! land in the page; same seed ⇒ same numbers.

use graphex_baselines::{GraphExRecommender, Recommender, RulesEngine};
use graphex_core::{GraphExBuilder, GraphExConfig};
use graphex_eval::{topk_diversity, Evaluation, RelevanceJudge, TopkDiversity};
use graphex_marketsim::{CategoryDataset, CategorySpec};

/// One model's quality row.
#[derive(Debug, Clone)]
pub struct EvalRow {
    pub model: String,
    pub predictions: usize,
    pub rp: f64,
    pub hp: f64,
}

/// The report's eval section: RP/HP per model plus the top-k
/// perception metrics.
#[derive(Debug, Clone)]
pub struct EvalSection {
    pub dataset: String,
    pub test_items: usize,
    pub rows: Vec<EvalRow>,
    pub diversity: Vec<TopkDiversity>,
}

/// Trains GraphEx + the Rules Engine on `CategorySpec::tiny(seed)` and
/// evaluates both over `test_n` judged items (k = 40, as in the paper).
pub fn run_eval(seed: u64, test_n: usize) -> EvalSection {
    let ds = CategoryDataset::generate(CategorySpec::tiny(seed));
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let model = GraphExBuilder::new(config)
        .add_records(ds.keyphrase_records())
        .build()
        .expect("tiny dataset produced zero curated keyphrases");
    let models: Vec<Box<dyn Recommender>> =
        vec![Box::new(GraphExRecommender::new(model)), Box::new(RulesEngine::train(&ds, 1))];
    let refs: Vec<&dyn Recommender> = models.iter().map(|m| m.as_ref()).collect();
    let judge = RelevanceJudge::new(&ds);
    let test_items = ds.test_items(test_n, 0xE57);
    let evaluation = Evaluation::run(&ds, &refs, &test_items, 40, &judge);
    let rows = evaluation
        .models
        .iter()
        .map(|outcome| EvalRow {
            model: outcome.name.clone(),
            predictions: outcome.total_predictions(),
            rp: outcome.rp(),
            hp: outcome.hp(),
        })
        .collect();
    EvalSection {
        dataset: format!("tiny(seed {seed})"),
        test_items: test_items.len(),
        rows,
        diversity: topk_diversity(&evaluation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_section_is_deterministic_and_populated() {
        let a = run_eval(0x9E, 8);
        let b = run_eval(0x9E, 8);
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.diversity.len(), 2);
        assert_eq!(a.test_items, 8);
        let graphex = a.rows.iter().find(|r| r.model == "GraphEx").unwrap();
        assert!(graphex.predictions > 0, "GraphEx predicted nothing");
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.model, y.model);
            assert!((x.rp - y.rp).abs() < 1e-12 && (x.hp - y.hp).abs() < 1e-12);
        }
    }
}

//! `BENCH_*.json` schema: parse, validate, and extract chartable numbers.
//!
//! Every recorded datapoint in the repo root follows one shape — five
//! required top-level keys — so the report can render any of them and the
//! suite can reject a malformed one before it lands:
//!
//! ```json
//! {
//!   "bench":   "trace_overhead",          // required, string
//!   "date":    "2026-08-07",              // required, string
//!   "machine": { ... },                   // required, object
//!   "config":  { ... },                   // required, object
//!   "results": { "elapsed": "111.6ms" }   // required, non-empty object
//! }
//! ```
//!
//! `results` comes in two shapes: a flat object of named values, or an
//! array of row objects (one per scale/config arm — `buildbench` and
//! friends). Array rows are flattened into `<row label>/<key>` result
//! keys, the label being the row's first string-valued member.
//!
//! Result values are either bare numbers or unit-suffixed strings
//! (`"111.615ms"`, `"86.011µs"`); [`leading_number`] extracts the numeric
//! prefix best-effort so charts can scale bars without a unit registry.

use graphex_server::json::{self, Json};
use std::path::{Path, PathBuf};

/// The five top-level keys every `BENCH_*.json` must carry.
pub const REQUIRED_KEYS: [&str; 5] = ["bench", "date", "machine", "config", "results"];

/// One result row: the key, the raw rendered value, and the numeric
/// prefix when one exists.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub key: String,
    pub raw: String,
    pub value: Option<f64>,
}

/// One parsed + validated `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// File name the doc came from (for error messages and headings).
    pub file: String,
    pub bench: String,
    pub description: String,
    pub date: String,
    /// Flattened `config` object, insertion order preserved.
    pub config: Vec<(String, String)>,
    /// Flattened `machine` object.
    pub machine: Vec<(String, String)>,
    pub results: Vec<BenchResult>,
}

impl BenchDoc {
    /// Parses and validates one document. `file` is only used in error
    /// messages and report headings.
    pub fn parse(file: &str, text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("{file}: not JSON: {e}"))?;
        validate(file, &doc)?;
        let results = result_rows(doc.get("results").expect("validated"));
        Ok(Self {
            file: file.to_string(),
            bench: doc.get("bench").and_then(Json::as_str).expect("validated").to_string(),
            description: doc
                .get("description")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            date: doc.get("date").and_then(Json::as_str).expect("validated").to_string(),
            config: flatten_obj(doc.get("config")),
            machine: flatten_obj(doc.get("machine")),
            results,
        })
    }
}

/// Checks the five required keys (and their types) without building a
/// [`BenchDoc`]; the suite's schema test calls this over every file.
pub fn validate(file: &str, doc: &Json) -> Result<(), String> {
    for key in REQUIRED_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("{file}: missing required top-level key {key:?}"));
        }
    }
    for key in ["bench", "date"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("{file}: {key:?} must be a string"));
        }
    }
    for key in ["machine", "config"] {
        if doc.get(key).and_then(Json::as_obj).is_none() {
            return Err(format!("{file}: {key:?} must be an object"));
        }
    }
    match doc.get("results").expect("checked above") {
        Json::Obj(members) if !members.is_empty() => Ok(()),
        Json::Arr(rows) if !rows.is_empty() => {
            if rows.iter().all(|row| matches!(row, Json::Obj(m) if !m.is_empty())) {
                Ok(())
            } else {
                Err(format!("{file}: \"results\" rows must be non-empty objects"))
            }
        }
        Json::Obj(_) | Json::Arr(_) => Err(format!("{file}: \"results\" must not be empty")),
        _ => Err(format!("{file}: \"results\" must be an object or an array of row objects")),
    }
}

/// Flattens either `results` shape into chartable rows. Array rows get a
/// `<label>/` key prefix from the row's first string-valued member
/// (falling back to the row index), which is dropped from the rows
/// themselves — `{"scale": "cat1", "ms": 54}` → `cat1/ms = 54`.
fn result_rows(results: &Json) -> Vec<BenchResult> {
    let mut out = Vec::new();
    flatten_results("", results, &mut out);
    out
}

/// Recursive flattener for the `results` value. Objects contribute their
/// key as a path segment; arrays of row objects are labeled by each
/// row's first string-valued member (excluded from the row, falling back
/// to the index); arrays of scalars fan out into indexed keys. Leaves
/// become one [`BenchResult`] each.
fn flatten_results(prefix: &str, value: &Json, out: &mut Vec<BenchResult>) {
    match value {
        Json::Obj(members) => {
            for (key, value) in members {
                flatten_results(&format!("{prefix}{key}/"), value, out);
            }
        }
        Json::Arr(items) if items.iter().all(|item| item.as_obj().is_some()) => {
            for (i, item) in items.iter().enumerate() {
                let members = item.as_obj().expect("checked by guard");
                // A label is a string member that is not itself a
                // measurement — "cat1" labels, "839µs" does not.
                let label = members.iter().find_map(|(k, v)| {
                    v.as_str()
                        .filter(|s| leading_number(s).is_none())
                        .map(|label| (k.clone(), label.to_string()))
                });
                let (label_key, row_prefix) = match label {
                    Some((key, label)) => (Some(key), format!("{prefix}{label}/")),
                    None => (None, format!("{prefix}{i}/")),
                };
                for (key, value) in
                    members.iter().filter(|(k, _)| Some(k) != label_key.as_ref())
                {
                    flatten_results(&format!("{row_prefix}{key}/"), value, out);
                }
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_results(&format!("{prefix}{i}/"), item, out);
            }
        }
        scalar => {
            let raw = scalar_text(scalar);
            let value = scalar.as_f64().or_else(|| leading_number(&raw));
            out.push(BenchResult {
                key: prefix.trim_end_matches('/').to_string(),
                raw,
                value,
            });
        }
    }
}

/// Numeric prefix of a unit-suffixed value: `"111.615ms"` → `111.615`.
/// Returns `None` when the value does not start with a number.
pub fn leading_number(raw: &str) -> Option<f64> {
    let raw = raw.trim();
    let end = raw
        .char_indices()
        .take_while(|(i, c)| c.is_ascii_digit() || *c == '.' || *c == '-' && *i == 0)
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    raw[..end].parse().ok()
}

/// `BENCH_*.json` files directly under `dir`, sorted by name.
pub fn discover_bench_files(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    found.sort();
    found
}

fn scalar_text(value: &Json) -> String {
    match value {
        Json::Str(s) => s.clone(),
        other => other.render(),
    }
}

fn flatten_obj(obj: Option<&Json>) -> Vec<(String, String)> {
    obj.and_then(Json::as_obj)
        .map(|fields| fields.iter().map(|(k, v)| (k.clone(), scalar_text(v))).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "bench": "demo", "description": "d", "date": "2026-08-07",
        "machine": {"os": "linux"},
        "config": {"requests": 100},
        "results": {"elapsed": "12.5ms", "throughput_per_s": 4000, "p99": "86.011µs"}
    }"#;

    #[test]
    fn parses_good_doc() {
        let doc = BenchDoc::parse("BENCH_demo.json", GOOD).unwrap();
        assert_eq!(doc.bench, "demo");
        assert_eq!(doc.date, "2026-08-07");
        assert_eq!(doc.results.len(), 3);
        let elapsed = doc.results.iter().find(|r| r.key == "elapsed").unwrap();
        assert_eq!(elapsed.raw, "12.5ms");
        assert_eq!(elapsed.value, Some(12.5));
        let tput = doc.results.iter().find(|r| r.key == "throughput_per_s").unwrap();
        assert_eq!(tput.value, Some(4000.0));
        let p99 = doc.results.iter().find(|r| r.key == "p99").unwrap();
        assert_eq!(p99.value, Some(86.011));
    }

    #[test]
    fn rejects_missing_and_mistyped_keys() {
        for key in REQUIRED_KEYS {
            let doc = json::parse(GOOD).unwrap();
            let Json::Obj(fields) = doc else { panic!("obj") };
            let stripped = Json::Obj(fields.into_iter().filter(|(k, _)| k != key).collect());
            let err = validate("f", &stripped).unwrap_err();
            assert!(err.contains(key), "{err}");
        }
        let err = BenchDoc::parse("f", r#"{"bench": 7, "date": "d",
            "machine": {}, "config": {}, "results": {"x": 1}}"#)
            .unwrap_err();
        assert!(err.contains("bench"), "{err}");
        let err = BenchDoc::parse("f", r#"{"bench": "b", "date": "d",
            "machine": {}, "config": {}, "results": {}}"#)
            .unwrap_err();
        assert!(err.contains("empty"), "{err}");
        assert!(BenchDoc::parse("f", "not json").is_err());
    }

    #[test]
    fn parses_array_results_with_row_labels() {
        let doc = BenchDoc::parse(
            "BENCH_rows.json",
            r#"{"bench": "rows", "date": "2026-08-07", "machine": {}, "config": {},
                "results": [
                  {"scale": "cat1", "sequential_ms": 54.3, "snapshot_bytes": 100},
                  {"scale": "cat2", "sequential_ms": 15.1, "snapshot_bytes": 50},
                  {"n": 1, "ms": 2.0}
                ]}"#,
        )
        .unwrap();
        let keys: Vec<&str> = doc.results.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(
            keys,
            ["cat1/sequential_ms", "cat1/snapshot_bytes", "cat2/sequential_ms",
             "cat2/snapshot_bytes", "2/n", "2/ms"]
        );
        assert_eq!(doc.results[0].value, Some(54.3));
        let err = BenchDoc::parse(
            "f",
            r#"{"bench": "b", "date": "d", "machine": {}, "config": {},
                "results": [{}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("non-empty objects"), "{err}");
        let err = BenchDoc::parse(
            "f",
            r#"{"bench": "b", "date": "d", "machine": {}, "config": {}, "results": 3}"#,
        )
        .unwrap_err();
        assert!(err.contains("object or an array"), "{err}");
    }

    #[test]
    fn flattens_nested_arrays_of_row_objects() {
        // tenancybench shape: an object whose members are arrays of row
        // objects with no string-valued label member (index labels), one
        // of which carries an array of repeated measurements.
        let doc = BenchDoc::parse(
            "BENCH_nested.json",
            r#"{"bench": "nested", "date": "2026-08-07", "machine": {}, "config": {},
                "results": {
                  "mmap": [{"tenants": 1, "cold_start": "839µs"},
                           {"tenants": 4, "cold_start": "1.2ms"}],
                  "read_path": [{"depth_pct": 0, "per_load": ["27µs", "28µs"]}]
                }}"#,
        )
        .unwrap();
        let keys: Vec<&str> = doc.results.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(
            keys,
            ["mmap/0/tenants", "mmap/0/cold_start", "mmap/1/tenants", "mmap/1/cold_start",
             "read_path/0/depth_pct", "read_path/0/per_load/0", "read_path/0/per_load/1"]
        );
        assert!(doc.results.iter().all(|r| r.value.is_some()), "{:?}", doc.results);
    }

    #[test]
    fn leading_number_edge_cases() {
        assert_eq!(leading_number("111.615ms"), Some(111.615));
        assert_eq!(leading_number("-3.5x"), Some(-3.5));
        assert_eq!(leading_number("42"), Some(42.0));
        assert_eq!(leading_number("µs42"), None);
        assert_eq!(leading_number(""), None);
    }

    #[test]
    fn discovers_only_bench_json() {
        let dir = std::env::temp_dir().join(format!("graphex-report-disc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_b.json"), GOOD).unwrap();
        std::fs::write(dir.join("BENCH_a.json"), GOOD).unwrap();
        std::fs::write(dir.join("README.md"), "x").unwrap();
        std::fs::write(dir.join("BENCH_c.txt"), "x").unwrap();
        let found = discover_bench_files(&dir);
        let names: Vec<_> =
            found.iter().map(|p| p.file_name().unwrap().to_str().unwrap()).collect();
        assert_eq!(names, ["BENCH_a.json", "BENCH_b.json"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

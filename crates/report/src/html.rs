//! Single-page HTML assembly. One `<style>` block, inline SVG charts,
//! no scripts, no external references of any kind — the self-containment
//! test below greps the rendered page for anything that would reach off
//! the file.

use crate::bench::BenchDoc;
use crate::evalrun::EvalSection;
use crate::svg;
use graphex_server::json::Json;
use std::fmt::Write as _;

/// Maximum trace records rendered as waterfalls (the flight recorder
/// ring can hold hundreds; the page shows the most recent few).
const MAX_WATERFALLS: usize = 8;

/// Everything the page is compiled from. `history` and `traces` are the
/// raw `/debug/history` and `/debug/traces` payloads when a live (or
/// in-process) server was available.
#[derive(Debug, Default)]
pub struct ReportInputs {
    /// Human-readable generation stamp (the CLI passes a date).
    pub generated: String,
    /// Where the live sections came from (server address or "in-process").
    pub source: String,
    pub benches: Vec<BenchDoc>,
    pub history: Option<Json>,
    pub traces: Option<Json>,
    pub eval: Option<EvalSection>,
}

/// HTML-escapes text content and attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the full self-contained page.
pub fn render(inputs: &ReportInputs) -> String {
    let mut page = String::with_capacity(64 * 1024);
    page.push_str("<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    page.push_str("<title>graphex observability report</title>\n");
    page.push_str(STYLE);
    page.push_str("</head><body>\n<h1>graphex observability report</h1>\n");
    let _ = writeln!(
        page,
        "<p class=\"meta\">generated {} &middot; live telemetry: {}</p>",
        escape(&inputs.generated),
        escape(if inputs.source.is_empty() { "none" } else { &inputs.source }),
    );
    history_section(&mut page, inputs.history.as_ref());
    traces_section(&mut page, inputs.traces.as_ref());
    eval_section(&mut page, inputs.eval.as_ref());
    bench_section(&mut page, &inputs.benches);
    page.push_str("<p class=\"meta\">self-contained page: inline CSS + SVG, no scripts, \
                   no external assets.</p>\n</body></html>\n");
    page
}

const STYLE: &str = "<style>\n\
    body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:60em;\
         padding:0 1em;color:#222}\n\
    h1{font-size:1.5em} h2{font-size:1.2em;border-bottom:1px solid #ddd;\
         padding-bottom:.2em;margin-top:1.6em} h3{font-size:1em;margin-bottom:.3em}\n\
    table{border-collapse:collapse;margin:.5em 0}\n\
    th,td{border:1px solid #ddd;padding:.25em .6em;text-align:left;\
         font-variant-numeric:tabular-nums}\n\
    th{background:#f6f8fa}\n\
    .meta{color:#666;font-size:.9em}\n\
    .desc{color:#444;max-width:52em}\n\
    code{background:#f6f8fa;padding:.1em .3em;border-radius:3px}\n\
    svg.spark,svg.bar{vertical-align:middle}\n\
    </style>\n";

/// "Live telemetry history": one sparkline row per ring series.
fn history_section(page: &mut String, history: Option<&Json>) {
    page.push_str("<h2>Telemetry history</h2>\n");
    let Some(history) = history else {
        page.push_str("<p class=\"meta\">no live server was sampled for this report.</p>\n");
        return;
    };
    let samples = history.get("samples").and_then(Json::as_u64).unwrap_or(0);
    let interval = history.get("interval_ms").and_then(Json::as_u64).unwrap_or(0);
    let recorded = history.get("recorded").and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        page,
        "<p class=\"meta\">{samples} samples in window ({recorded} recorded since boot, \
         one every {interval}&thinsp;ms)</p>"
    );
    let Some(series) = history.get("series").and_then(Json::as_obj) else {
        page.push_str("<p class=\"meta\">history payload carries no series.</p>\n");
        return;
    };
    page.push_str(
        "<table><tr><th>series</th><th>trend</th><th>last</th><th>rate/s</th></tr>\n",
    );
    for (key, entry) in series {
        let points: Vec<Option<f64>> = entry
            .get("points")
            .and_then(Json::as_arr)
            .map(|arr| arr.iter().map(Json::as_f64).collect())
            .unwrap_or_default();
        let last = entry.get("last").and_then(Json::as_f64);
        let rate = entry.get("rate_per_s").and_then(Json::as_f64);
        let _ = writeln!(
            page,
            "<tr><td><code>{}</code></td><td>{}</td><td>{}</td><td>{}</td></tr>",
            escape(key),
            svg::sparkline(&points, 160, 22),
            fmt_opt(last),
            fmt_opt(rate),
        );
    }
    page.push_str("</table>\n");
}

/// "Trace waterfalls": the most recent flight-recorder records.
fn traces_section(page: &mut String, traces: Option<&Json>) {
    page.push_str("<h2>Trace waterfalls</h2>\n");
    let records = traces.and_then(|t| t.get("traces")).and_then(Json::as_arr).unwrap_or(&[]);
    if records.is_empty() {
        page.push_str("<p class=\"meta\">no trace records were captured.</p>\n");
        return;
    }
    // The recorder returns oldest-first; show the most recent few.
    for record in records.iter().rev().take(MAX_WATERFALLS) {
        let id = record.get("id").and_then(Json::as_str).unwrap_or("?");
        let status = record.get("status").and_then(Json::as_u64).unwrap_or(0);
        let total_us = record.get("total_us").and_then(Json::as_f64).unwrap_or(0.0);
        let mut spans = span_rows("", record);
        if let Some(backends) = record.get("backends").and_then(Json::as_arr) {
            for backend in backends {
                let shard = backend.get("shard").and_then(Json::as_u64).unwrap_or(0);
                spans.extend(span_rows(&format!("shard{shard}/"), backend));
            }
        }
        let _ = writeln!(
            page,
            "<h3><code>{}</code> &middot; HTTP {status} &middot; {total_us:.0}&thinsp;&micro;s</h3>\n{}",
            escape(id),
            svg::waterfall(&spans, total_us, 640),
        );
    }
}

/// Extracts `(label, start_us, us)` rows from a record's `spans` array.
fn span_rows(prefix: &str, record: &Json) -> Vec<(String, f64, f64)> {
    record
        .get("spans")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|span| {
            let stage = span.get("stage").and_then(Json::as_str)?;
            let start = span.get("start_us").and_then(Json::as_f64).unwrap_or(0.0);
            let us = span.get("us").and_then(Json::as_f64).unwrap_or(0.0);
            Some((format!("{prefix}{stage}"), start, us))
        })
        .collect()
}

/// "Prediction quality": RP/HP plus the top-k perception metrics.
fn eval_section(page: &mut String, eval: Option<&EvalSection>) {
    page.push_str("<h2>Prediction quality</h2>\n");
    let Some(eval) = eval else {
        page.push_str("<p class=\"meta\">evaluation was skipped for this report.</p>\n");
        return;
    };
    let _ = writeln!(
        page,
        "<p class=\"meta\">judged evaluation over {} test items of {} (k = 40)</p>",
        eval.test_items,
        escape(&eval.dataset),
    );
    page.push_str(
        "<table><tr><th>model</th><th>predictions</th><th>RP</th><th>HP</th></tr>\n",
    );
    for row in &eval.rows {
        let _ = writeln!(
            page,
            "<tr><td>{}</td><td>{}</td><td>{:.3} {}</td><td>{:.3} {}</td></tr>",
            escape(&row.model),
            row.predictions,
            row.rp,
            svg::hbar(row.rp, 80, 9),
            row.hp,
            svg::hbar(row.hp, 80, 9),
        );
    }
    page.push_str("</table>\n");
    page.push_str(
        "<p class=\"desc\">Top-k perception metrics: <em>diversity</em> is the mean pairwise \
         token-Jaccard distance inside one item's list (higher = less repetitive), \
         <em>redundancy</em> the mean maximum similarity of a prediction to anything ranked \
         above it (lower is better).</p>\n\
         <table><tr><th>model</th><th>diversity</th><th>redundancy</th>\
         <th>distinct-token ratio</th></tr>\n",
    );
    for row in &eval.diversity {
        let _ = writeln!(
            page,
            "<tr><td>{}</td><td>{:.3} {}</td><td>{:.3} {}</td><td>{:.3}</td></tr>",
            escape(&row.model),
            row.diversity,
            svg::hbar(row.diversity, 80, 9),
            row.redundancy,
            svg::hbar(row.redundancy, 80, 9),
            row.distinct_token_ratio,
        );
    }
    page.push_str("</table>\n");
}

/// "Recorded benchmarks": one subsection per `BENCH_*.json`, bars scaled
/// log₁₀ against the doc's largest numeric result (the results mix units
/// and magnitudes; the bars rank, the raw column measures).
fn bench_section(page: &mut String, benches: &[BenchDoc]) {
    page.push_str("<h2>Recorded benchmarks</h2>\n");
    if benches.is_empty() {
        page.push_str("<p class=\"meta\">no BENCH_*.json files were found.</p>\n");
        return;
    }
    for doc in benches {
        let _ = writeln!(
            page,
            "<h3>{} <span class=\"meta\">({}, {})</span></h3>",
            escape(&doc.bench),
            escape(&doc.file),
            escape(&doc.date),
        );
        if !doc.description.is_empty() {
            let _ = writeln!(page, "<p class=\"desc\">{}</p>", escape(&doc.description));
        }
        let config: Vec<String> =
            doc.config.iter().map(|(k, v)| format!("{}={}", escape(k), escape(v))).collect();
        if !config.is_empty() {
            let _ = writeln!(page, "<p class=\"meta\"><code>{}</code></p>", config.join(" "));
        }
        let max = doc
            .results
            .iter()
            .filter_map(|r| r.value)
            .fold(0.0f64, |hi, v| hi.max(v.abs()));
        page.push_str("<table><tr><th>result</th><th>value</th><th></th></tr>\n");
        for result in &doc.results {
            let bar = match result.value {
                Some(v) if max > 0.0 => {
                    svg::hbar((1.0 + v.abs()).log10() / (1.0 + max).log10(), 140, 9)
                }
                _ => String::new(),
            };
            let _ = writeln!(
                page,
                "<tr><td><code>{}</code></td><td>{}</td><td>{bar}</td></tr>",
                escape(&result.key),
                escape(&result.raw),
            );
        }
        page.push_str("</table>\n");
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{v:.0}"),
        Some(v) => format!("{v:.2}"),
        None => "&ndash;".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_server::json;

    fn sample_inputs() -> ReportInputs {
        let bench = BenchDoc::parse(
            "BENCH_demo.json",
            r#"{"bench": "demo", "description": "a <demo> bench", "date": "2026-08-07",
                "machine": {"os": "linux"}, "config": {"requests": 100},
                "results": {"elapsed": "12.5ms", "throughput_per_s": 4000}}"#,
        )
        .unwrap();
        let history = json::parse(
            r#"{"interval_ms": 1000, "ring": 512, "recorded": 3, "samples": 3,
                "span_ms": 2000, "ticks": [1,2,3],
                "series": {"http/requests": {"points": [1, 2, 4], "last": 4,
                           "rate_per_s": 1.5},
                           "queue/depth": {"points": [null, 0, 1], "last": 1,
                           "rate_per_s": 0.5}}}"#,
        )
        .unwrap();
        let traces = json::parse(
            r#"{"traces": [{"id": "00000000deadbeef", "status": 200, "entries": 1,
                "total_us": 120.0,
                "spans": [{"stage": "parse", "start_us": 0.0, "us": 20.0, "detail": 0},
                          {"stage": "retrieve", "start_us": 20.0, "us": 90.0, "detail": 3}],
                "backends": [{"shard": 1, "addr": "127.0.0.1:1", "total_us": 80.0,
                "spans": [{"stage": "retrieve", "start_us": 5.0, "us": 70.0, "detail": 2}]}]}]}"#,
        )
        .unwrap();
        ReportInputs {
            generated: "2026-08-07".into(),
            source: "in-process".into(),
            benches: vec![bench],
            history: Some(history),
            traces: Some(traces),
            eval: Some(crate::evalrun::run_eval(0x9E, 4)),
        }
    }

    #[test]
    fn page_embeds_every_section() {
        let page = render(&sample_inputs());
        for needle in [
            "Telemetry history",
            "http/requests",
            "queue/depth",
            "Trace waterfalls",
            "00000000deadbeef",
            "shard1/retrieve",
            "Prediction quality",
            "GraphEx",
            "redundancy",
            "Recorded benchmarks",
            "BENCH_demo.json",
            "12.5ms",
            "a &lt;demo&gt; bench",
        ] {
            assert!(page.contains(needle), "page missing {needle:?}");
        }
    }

    #[test]
    fn page_is_self_contained() {
        let page = render(&sample_inputs());
        // Nothing that reaches off the file: no scripts, no external
        // URLs, no asset references of any kind.
        for forbidden in
            ["http://", "https://", "<script", "src=", "href=", "@import", "url(", "<link", "<img"]
        {
            assert!(!page.contains(forbidden), "page contains forbidden {forbidden:?}");
        }
    }

    #[test]
    fn empty_inputs_still_render() {
        let page = render(&ReportInputs::default());
        assert!(page.contains("no live server was sampled"));
        assert!(page.contains("no trace records"));
        assert!(page.contains("evaluation was skipped"));
        assert!(page.contains("no BENCH_*.json files"));
    }

    #[test]
    fn escape_covers_html_metachars() {
        assert_eq!(escape(r#"<a href="x">&'"#), "&lt;a href=&quot;x&quot;&gt;&amp;&#39;");
    }
}

//! Hand-rolled SVG chart primitives. No chart library, no scripts —
//! every chart is a small inline `<svg>` element, so the page stays
//! self-contained and renders from `file://`.
//!
//! Coordinates are emitted with one decimal; the charts are glanceable
//! trend indicators, not measurement instruments (the tables next to
//! them carry the exact numbers).

use std::fmt::Write as _;

/// Inline sparkline polyline over `values` (gaps allowed via `None`).
/// Y is auto-scaled to the min..max of the present values; a flat or
/// single-point series renders as a midline.
pub fn sparkline(values: &[Option<f64>], width: u32, height: u32) -> String {
    let present: Vec<f64> = values.iter().flatten().copied().filter(|v| v.is_finite()).collect();
    if present.is_empty() {
        return format!(
            "<svg class=\"spark\" width=\"{width}\" height=\"{height}\" \
             viewBox=\"0 0 {width} {height}\"></svg>"
        );
    }
    let (min, max) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(f64::EPSILON);
    let n = values.len().max(2) as f64;
    let pad = 2.0;
    let mut points = String::new();
    for (i, value) in values.iter().enumerate() {
        let Some(v) = value.filter(|v| v.is_finite()) else { continue };
        let x = i as f64 / (n - 1.0) * (f64::from(width) - 2.0 * pad) + pad;
        let y = if max == min {
            f64::from(height) / 2.0
        } else {
            f64::from(height) - pad - (v - min) / span * (f64::from(height) - 2.0 * pad)
        };
        let _ = write!(points, "{x:.1},{y:.1} ");
    }
    format!(
        "<svg class=\"spark\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\
         <polyline fill=\"none\" stroke=\"#2a6f97\" stroke-width=\"1.5\" \
         points=\"{}\"/></svg>",
        points.trim_end()
    )
}

/// One horizontal bar filled to `frac` (clamped 0..1) of the width.
pub fn hbar(frac: f64, width: u32, height: u32) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let fill = frac * f64::from(width);
    format!(
        "<svg class=\"bar\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">\
         <rect width=\"{width}\" height=\"{height}\" fill=\"#eef2f5\"/>\
         <rect width=\"{fill:.1}\" height=\"{height}\" fill=\"#2a6f97\"/></svg>"
    )
}

/// Trace waterfall: one row per span, offset by its start within the
/// request and sized by its duration. `spans` is `(label, start_us, us)`;
/// `total_us` sets the time axis.
pub fn waterfall(spans: &[(String, f64, f64)], total_us: f64, width: u32) -> String {
    const ROW: u32 = 14;
    const LABEL_W: u32 = 150;
    let total = total_us.max(f64::EPSILON);
    let lane = f64::from(width.saturating_sub(LABEL_W).max(1));
    let height = ROW * spans.len().max(1) as u32;
    let mut out = format!(
        "<svg class=\"waterfall\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">"
    );
    for (i, (label, start_us, us)) in spans.iter().enumerate() {
        let y = ROW * i as u32;
        let x = f64::from(LABEL_W) + (start_us / total).clamp(0.0, 1.0) * lane;
        let w = ((us / total) * lane).clamp(1.0, lane);
        let _ = write!(
            out,
            "<text x=\"0\" y=\"{ty}\" font-size=\"10\" fill=\"#333\">{label}</text>\
             <rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{h}\" \
             fill=\"#52b69a\"/>",
            ty = y + ROW - 4,
            label = crate::html::escape(label),
            h = ROW - 3,
        );
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_and_skips_gaps() {
        let svg = sparkline(&[Some(1.0), None, Some(3.0), Some(2.0)], 100, 20);
        assert!(svg.contains("<polyline"), "{svg}");
        // Three present points → three coordinate pairs.
        let pairs = svg.split("points=\"").nth(1).unwrap().split('"').next().unwrap();
        assert_eq!(pairs.split_whitespace().count(), 3, "{pairs}");
    }

    #[test]
    fn sparkline_handles_empty_and_flat() {
        assert!(!sparkline(&[], 100, 20).contains("polyline"));
        let flat = sparkline(&[Some(5.0), Some(5.0)], 100, 20);
        assert!(flat.contains("10.0"), "flat series sits on the midline: {flat}");
    }

    #[test]
    fn hbar_clamps() {
        assert!(hbar(2.0, 100, 8).contains("width=\"100.0\""));
        assert!(hbar(-1.0, 100, 8).contains("width=\"0.0\""));
        assert!(hbar(0.5, 100, 8).contains("width=\"50.0\""));
    }

    #[test]
    fn waterfall_offsets_rows() {
        let spans = vec![
            ("parse".to_string(), 0.0, 10.0),
            ("retrieve".to_string(), 10.0, 30.0),
        ];
        let svg = waterfall(&spans, 40.0, 550);
        assert!(svg.contains("parse") && svg.contains("retrieve"));
        assert_eq!(svg.matches("<rect").count(), 2);
    }
}

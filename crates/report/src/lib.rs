//! # report — the `graphex report` observability page
//!
//! Compiles every telemetry artifact the repo produces — the recorded
//! `BENCH_*.json` datapoints, a live server's `/debug/history` ring and
//! `/debug/traces` flight recorder, and a judged evaluation run — into
//! **one self-contained HTML page**: inline CSS, hand-rolled SVG charts,
//! zero external assets, zero scripts. The page renders from `file://`
//! on an air-gapped machine, which is the whole point: a bench regression
//! or a latency cliff should be reviewable from a CI artifact without
//! any serving infrastructure running.
//!
//! The crate deliberately does **not** depend on `graphex-bench` or
//! `graphex-suite`: the suite's integration tests validate `BENCH_*.json`
//! files *through this crate* ([`bench::BenchDoc`]), so a dependency in
//! the other direction would be circular.

pub mod bench;
pub mod evalrun;
pub mod html;
pub mod svg;

pub use bench::{discover_bench_files, BenchDoc, BenchResult};
pub use evalrun::{run_eval, EvalRow, EvalSection};
pub use html::{escape, render, ReportInputs};

//! Ablation micro-benches for the design choices DESIGN.md calls out:
//!
//! 1. **Count-array enumeration vs hash-map `DC(·)`** — the Sec. III-F
//!    optimization replacing the naive de-duplicate-and-count.
//! 2. **Group pruning vs full sort** — pruning by count group before
//!    ranking vs ranking every candidate.
//! 3. **Alignment functions** — LTA vs WMR vs JAC comparison cost.
//! 4. **Per-leaf graphs vs one meta-category graph** — inference against a
//!    small leaf graph vs the union fallback graph.
//! 5. **Scratch reuse vs fresh allocation** per call.

use criterion::{criterion_group, criterion_main, Criterion};
use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_core::{Alignment, GraphExModel, InferRequest, Scratch};
use graphex_marketsim::{CategoryDataset, CategorySpec};
use std::collections::HashMap;

struct Setup {
    model: GraphExModel,
    titles: Vec<(String, graphex_core::LeafId)>,
}

fn setup() -> Setup {
    let ds = CategoryDataset::generate(CategorySpec::cat3());
    let model = build_graphex(&ds, default_threshold(&ds));
    let titles: Vec<(String, graphex_core::LeafId)> =
        ds.test_items(64, 3).iter().map(|i| (i.title.clone(), i.leaf)).collect();
    Setup { model, titles }
}

/// Hash-map variant of the enumeration step (the naive `DC(·)`), driven
/// through the public adjacency API — the baseline the count-array design
/// is measured against.
fn enumerate_with_hashmap(model: &GraphExModel, title: &str, leaf: graphex_core::LeafId) -> usize {
    let Some(graph) = model.leaf_graph(leaf) else { return 0 };
    let mut tokens: Vec<u32> =
        model.tokenize_title(title).iter().filter_map(|t| model.token_id(t)).collect();
    tokens.sort_unstable();
    tokens.dedup();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for tok in tokens {
        for &label in graph.labels_of_token(tok) {
            *counts.entry(label).or_insert(0) += 1;
        }
    }
    counts.len()
}

fn bench_enumeration_strategy(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("enumeration_strategy");
    group.bench_function("count_array_scratch_reuse", |b| {
        let mut scratch = Scratch::new();
        let mut idx = 0usize;
        b.iter(|| {
            let (title, leaf) = &s.titles[idx % s.titles.len()];
            idx += 1;
            let req = InferRequest::new(title, *leaf).k(20);
            std::hint::black_box(s.model.infer_request(&req, &mut scratch))
        });
    });
    group.bench_function("fresh_scratch_every_call", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            let mut scratch = Scratch::new();
            let (title, leaf) = &s.titles[idx % s.titles.len()];
            idx += 1;
            let req = InferRequest::new(title, *leaf).k(20);
            std::hint::black_box(s.model.infer_request(&req, &mut scratch))
        });
    });
    group.bench_function("hashmap_dc_baseline", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            let (title, leaf) = &s.titles[idx % s.titles.len()];
            idx += 1;
            std::hint::black_box(enumerate_with_hashmap(&s.model, title, *leaf))
        });
    });
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("pruning");
    // k=20 with pruning vs rank-everything.
    group.bench_function("group_pruned_k20", |b| {
        let mut scratch = Scratch::new();
        let mut idx = 0usize;
        b.iter(|| {
            let (title, leaf) = &s.titles[idx % s.titles.len()];
            idx += 1;
            let req = InferRequest::new(title, *leaf).k(20);
            std::hint::black_box(s.model.infer_request(&req, &mut scratch))
        });
    });
    group.bench_function("rank_all_candidates", |b| {
        let mut scratch = Scratch::new();
        let mut idx = 0usize;
        b.iter(|| {
            let (title, leaf) = &s.titles[idx % s.titles.len()];
            idx += 1;
            let req = InferRequest::new(title, *leaf).k(usize::MAX).keep_threshold_group(true);
            std::hint::black_box(s.model.infer_request(&req, &mut scratch))
        });
    });
    group.finish();
}

fn bench_alignment(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("alignment");
    for alignment in Alignment::ALL {
        group.bench_function(alignment.name(), |b| {
            let mut scratch = Scratch::new();
            let mut idx = 0usize;
            b.iter(|| {
                let (title, leaf) = &s.titles[idx % s.titles.len()];
                idx += 1;
                let req = InferRequest::new(title, *leaf).k(20).alignment(alignment);
                std::hint::black_box(s.model.infer_request(&req, &mut scratch))
            });
        });
    }
    group.finish();
}

fn bench_leaf_granularity(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("leaf_granularity");
    group.bench_function("per_leaf_graph", |b| {
        let mut scratch = Scratch::new();
        let mut idx = 0usize;
        b.iter(|| {
            let (title, leaf) = &s.titles[idx % s.titles.len()];
            idx += 1;
            let req = InferRequest::new(title, *leaf).k(20);
            std::hint::black_box(s.model.infer_request(&req, &mut scratch))
        });
    });
    group.bench_function("meta_fallback_graph", |b| {
        let mut scratch = Scratch::new();
        let unknown = graphex_core::LeafId(u32::MAX); // forces the fallback
        let mut idx = 0usize;
        b.iter(|| {
            let (title, _) = &s.titles[idx % s.titles.len()];
            idx += 1;
            let req = InferRequest::new(title, unknown).k(20);
            std::hint::black_box(s.model.infer_request(&req, &mut scratch))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_enumeration_strategy,
    bench_pruning,
    bench_alignment,
    bench_leaf_granularity
);
criterion_main!(benches);

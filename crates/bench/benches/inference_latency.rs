//! Criterion bench behind Fig. 6a: amortized per-record inference latency
//! of the three latency-comparable models (fastText, Graphite, GraphEx).
//!
//! Runs on the CAT_3-sized preset so `cargo bench` stays in CI budget; the
//! full-scale numbers come from `--bin fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphex_baselines::fasttext::FastTextConfig;
use graphex_baselines::{FastTextLike, GraphExRecommender, Graphite, ItemRef, Recommender};
use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_marketsim::{CategoryDataset, CategorySpec};

fn bench_inference(c: &mut Criterion) {
    let ds = CategoryDataset::generate(CategorySpec::cat3());
    let graphex: Box<dyn Recommender> =
        Box::new(GraphExRecommender::new(build_graphex(&ds, default_threshold(&ds))));
    let graphite: Box<dyn Recommender> = Box::new(Graphite::train(&ds, 512));
    let fasttext: Box<dyn Recommender> = Box::new(FastTextLike::train(
        &ds,
        FastTextConfig { epochs: 3, ..Default::default() }, // latency, not quality
    ));

    let items = ds.test_items(64, 7);
    let mut group = c.benchmark_group("inference_latency_cat3");
    for model in [&graphex, &graphite, &fasttext] {
        group.bench_function(BenchmarkId::from_parameter(model.name()), |b| {
            let mut idx = 0usize;
            b.iter(|| {
                let item = items[idx % items.len()];
                idx += 1;
                std::hint::black_box(
                    model.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 20),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);

//! Criterion bench behind the build pipeline (ISSUE 5 / paper Sec. IV-G):
//! sequential `GraphExBuilder` vs the sharded pipeline (1 and 4 workers)
//! vs an incremental delta rebuild after one day of churn, at the cat1
//! and cat2 scales.
//!
//! On a 1-CPU container the parallel numbers ≈ the 1-worker numbers
//! (there is nothing to fan out to) — thread scaling must be re-measured
//! on real hardware; the delta-vs-full gap is the portable signal, since
//! it comes from *skipping* leaf construction, not from parallelism.
//! Recorded datapoints live in `BENCH_build_pipeline.json` (written by
//! the `buildbench` bin, `make bench-build`).

use criterion::{criterion_group, criterion_main, Criterion};
use graphex_core::{GraphExBuilder, GraphExConfig};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildPlan, DeltaBase, VecSource};

fn config() -> GraphExConfig {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    config
}

fn bench_scale(c: &mut Criterion, name: &str, spec: CategorySpec) {
    // Day 0 snapshot (the delta base), then one churn step to "today".
    let dir = std::env::temp_dir().join(format!("graphex-bench-buildpipe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join(format!("{name}.gexm"));
    let mut corpus = ChurnCorpus::new(spec, 0.02);
    let gen0 = build(
        &BuildPlan::new(config()).jobs(1),
        vec![Box::new(VecSource::new("gen0", corpus.records()))],
    )
    .unwrap();
    gen0.write_to(&snapshot).unwrap();
    corpus.advance();
    let records = corpus.records();
    let delta_plan = BuildPlan::new(config()).jobs(1).delta(DeltaBase::load(&snapshot).unwrap());

    let mut group = c.benchmark_group(format!("build_pipeline_{name}"));
    group.sample_size(10);
    group.bench_function("sequential_builder", |b| {
        b.iter(|| {
            std::hint::black_box(
                GraphExBuilder::new(config()).add_records(records.clone()).build().unwrap(),
            )
        })
    });
    for jobs in [1usize, 4] {
        let plan = BuildPlan::new(config()).jobs(jobs);
        group.bench_function(format!("pipeline_{jobs}_workers"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    build(&plan, vec![Box::new(VecSource::new("bench", records.clone()))]).unwrap(),
                )
            })
        });
    }
    group.bench_function("delta_rebuild", |b| {
        b.iter(|| {
            std::hint::black_box(
                build(&delta_plan, vec![Box::new(VecSource::new("bench", records.clone()))])
                    .unwrap(),
            )
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_build_pipeline(c: &mut Criterion) {
    bench_scale(c, "cat2", CategorySpec::cat2());
    bench_scale(c, "cat1", CategorySpec::cat1());
}

criterion_group!(benches, bench_build_pipeline);
criterion_main!(benches);

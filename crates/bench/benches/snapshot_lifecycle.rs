//! Snapshot lifecycle bench: v1 copying load vs. v2 zero-copy load across
//! model sizes, plus hot-swap (publish-to-live) latency under serving load.
//!
//! This is the measurement behind the `GEXM v2` format: v1 materializes
//! every CSR/label/score array (one copy per edge) and re-interns both
//! string tables; v2 borrows all integer arrays straight out of the load
//! buffer, so load cost is dominated by the checksum scan plus the
//! O(strings + words) tables. The gap widens with model size — exactly
//! the Fig. 6b model-size pressure the registry's daily republish cadence
//! multiplies.
//!
//! Results are recorded in `BENCH_model_store.json` at the repo root
//! (`make bench-snapshot` runs each body once as a smoke test).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_core::{serialize, GraphExModel, InferRequest, LeafId};
use graphex_marketsim::{CategoryDataset, CategorySpec};
use graphex_serving::{KvStore, ModelRegistry, ServingApi};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn sized_models() -> Vec<(&'static str, GraphExModel)> {
    let tiny = CategoryDataset::generate(CategorySpec::tiny(0xBEEF));
    let cat3 = CategoryDataset::generate(CategorySpec::cat3());
    let cat1 = CategoryDataset::generate(CategorySpec::cat1());
    vec![
        ("tiny", build_graphex(&tiny, default_threshold(&tiny))),
        ("cat3", build_graphex(&cat3, default_threshold(&cat3))),
        ("cat1", build_graphex(&cat1, default_threshold(&cat1))),
    ]
}

/// v1 (copying) vs v2 (zero-copy) deserialization, per model size.
/// Throughput is bytes of the *v2* snapshot so the two cases report
/// comparable GiB/s over the same logical model.
fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_load");
    for (size, model) in sized_models() {
        let v1 = serialize::to_bytes_v1(&model);
        let v2 = serialize::to_bytes(&model);
        group.throughput(Throughput::Bytes(v2.len() as u64));
        group.bench_function(BenchmarkId::new("v1_copy", size), |b| {
            b.iter(|| serialize::from_bytes(std::hint::black_box(&v1)).expect("v1 load"))
        });
        group.bench_function(BenchmarkId::new("v2_zero_copy", size), |b| {
            b.iter(|| serialize::from_shared(std::hint::black_box(v2.clone())).expect("v2 load"))
        });
    }
    group.finish();
}

/// Publish-to-live latency: one `ModelRegistry::activate` (disk read →
/// checksum → zero-copy parse → warm-up → pointer swap) while 2 threads
/// continuously serve from a watch-backed `ServingApi`. This is the
/// full admission pipeline a daily republish pays, not just the `Arc`
/// flip (which is nanoseconds).
fn bench_swap_under_load(c: &mut Criterion) {
    let ds = CategoryDataset::generate(CategorySpec::tiny(0xD00D));
    let model = build_graphex(&ds, default_threshold(&ds));
    let root = std::env::temp_dir().join(format!("graphex-bench-swap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = Arc::new(ModelRegistry::open(&root).expect("open"));
    registry.publish(&model, "bench v1").expect("publish 1");
    registry.publish(&model, "bench v2").expect("publish 2");
    let api = Arc::new(ServingApi::with_watch(
        registry.watch().expect("watch"),
        Arc::new(KvStore::new()),
        10,
    ));
    let titles: Vec<(String, LeafId)> =
        ds.test_items(64, 7).iter().map(|i| (i.title.clone(), i.leaf)).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let load: Vec<_> = (0..2)
        .map(|_| {
            let api = Arc::clone(&api);
            let stop = Arc::clone(&stop);
            let titles = titles.clone();
            std::thread::spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (title, leaf) = &titles[i % titles.len()];
                    // Id-less: always computed, so the load keeps touching
                    // the active model rather than the KV store.
                    std::hint::black_box(
                        api.serve_request(&InferRequest::new(title, *leaf).k(10)),
                    );
                    i += 1;
                }
            })
        })
        .collect();

    let mut group = c.benchmark_group("snapshot_swap");
    group.sample_size(20);
    let mut target = 1u64;
    group.bench_function("activate_under_load", |b| {
        b.iter(|| {
            registry.activate(std::hint::black_box(target)).expect("swap");
            target = if target == 1 { 2 } else { 1 };
        })
    });
    group.finish();

    stop.store(true, Ordering::Relaxed);
    for handle in load {
        handle.join().expect("load thread");
    }
    std::fs::remove_dir_all(&root).ok();
}

criterion_group!(benches, bench_load, bench_swap_under_load);
criterion_main!(benches);

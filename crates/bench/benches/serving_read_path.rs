//! Serving read-path bench: store-hit vs. read-through, 1 vs. 8 threads.
//!
//! This is the measurement behind the `ServingApi` redesign: the old
//! implementation funnelled every read-through inference through a single
//! global `Mutex<Scratch>`, so concurrent misses serialized; the new one
//! draws scratches from the shared engine pool. `read_through/8_threads`
//! vs. `read_through/1_thread` is the scaling that lock destroyed.
//!
//! Each iteration serves one batch of `BATCH` requests, split evenly
//! across the worker threads (Throughput::Elements(BATCH) → requests/s in
//! the report). Store-hit batches reuse prepopulated ids; read-through
//! batches draw ids from an atomic counter so every request misses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_core::LeafId;
use graphex_marketsim::{CategoryDataset, CategorySpec};
use graphex_serving::{KvStore, ServingApi};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BATCH: usize = 512;

struct Setup {
    model: Arc<graphex_core::GraphExModel>,
    titles: Vec<(String, LeafId)>,
    fresh_id: AtomicU64,
}

fn setup() -> Setup {
    let ds = CategoryDataset::generate(CategorySpec::cat3());
    let model = Arc::new(build_graphex(&ds, default_threshold(&ds)));
    let titles: Vec<(String, LeafId)> =
        ds.test_items(BATCH, 7).iter().map(|i| (i.title.clone(), i.leaf)).collect();
    Setup { model, titles, fresh_id: AtomicU64::new(1 << 32) }
}

impl Setup {
    /// A fresh api + store per bench function, so read-through insertions
    /// from one configuration never pollute another's store. (Within one
    /// read-through run the store still grows — that's inherent to
    /// measuring cold misses — but every function starts from the same
    /// BATCH-entry state.)
    fn fresh_api(&self) -> Arc<ServingApi> {
        let api = Arc::new(ServingApi::new(self.model.clone(), Arc::new(KvStore::new()), 10));
        // Prepopulate ids 0..BATCH so the store-hit benches never miss.
        for (i, (title, leaf)) in self.titles.iter().enumerate() {
            api.serve(i as u64, title, *leaf);
        }
        api
    }
}

/// Serves one batch, chunked across `threads` workers.
fn serve_batch(
    api: &ServingApi,
    titles: &[(String, LeafId)],
    threads: usize,
    id_for: &(dyn Fn(usize) -> u64 + Sync),
) {
    if threads <= 1 {
        for (i, (title, leaf)) in titles.iter().enumerate() {
            std::hint::black_box(api.serve(id_for(i), title, *leaf));
        }
        return;
    }
    let chunk = titles.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, part) in titles.chunks(chunk).enumerate() {
            scope.spawn(move || {
                for (j, (title, leaf)) in part.iter().enumerate() {
                    std::hint::black_box(api.serve(id_for(c * chunk + j), title, *leaf));
                }
            });
        }
    });
}

fn bench_read_path(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("serving_read_path");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));

    for threads in [1usize, 8] {
        let api = s.fresh_api();
        group.bench_function(BenchmarkId::new("store_hit", format!("{threads}_threads")), |b| {
            b.iter(|| serve_batch(&api, &s.titles, threads, &|i| i as u64));
        });
    }
    for threads in [1usize, 8] {
        let api = s.fresh_api();
        group.bench_function(BenchmarkId::new("read_through", format!("{threads}_threads")), |b| {
            b.iter(|| {
                serve_batch(&api, &s.titles, threads, &|_| {
                    s.fresh_id.fetch_add(1, Ordering::Relaxed)
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_path);
criterion_main!(benches);

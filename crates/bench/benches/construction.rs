//! Criterion bench behind Sec. IV-G: model construction / training time.
//!
//! The paper: GraphEx builds in under a minute, Graphite in 1–6 minutes,
//! fastText in hours. At reproduction scale the absolute numbers shrink but
//! the ordering must hold (GraphEx < Graphite << fastText).

use criterion::{criterion_group, criterion_main, Criterion};
use graphex_baselines::fasttext::FastTextConfig;
use graphex_baselines::{FastTextLike, Graphite};
use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_marketsim::{CategoryDataset, CategorySpec};

fn bench_construction(c: &mut Criterion) {
    let ds = CategoryDataset::generate(CategorySpec::cat3());
    let threshold = default_threshold(&ds);

    let mut group = c.benchmark_group("construction_cat3");
    group.sample_size(10);
    group.bench_function("GraphEx_build", |b| {
        b.iter(|| std::hint::black_box(build_graphex(&ds, threshold)))
    });
    group.bench_function("Graphite_train", |b| {
        b.iter(|| std::hint::black_box(Graphite::train(&ds, 512)))
    });
    group.bench_function("fastText_train_1epoch", |b| {
        b.iter(|| {
            std::hint::black_box(FastTextLike::train(
                &ds,
                FastTextConfig { epochs: 1, ..Default::default() },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);

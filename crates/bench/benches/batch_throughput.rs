//! Batch-inference throughput scaling (Sec. IV-H: 200 M items in 1.5 h on a
//! 70-core node). Measures items/second of `batch_infer` at 1, 2, 4 and all
//! threads on the CAT_3 preset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_core::parallel::batch_infer;
use graphex_core::InferRequest;
use graphex_marketsim::{CategoryDataset, CategorySpec};

fn bench_batch(c: &mut Criterion) {
    let ds = CategoryDataset::generate(CategorySpec::cat3());
    let model = build_graphex(&ds, default_threshold(&ds));
    let items: Vec<(String, graphex_core::LeafId)> =
        ds.marketplace.items.iter().take(2_000).map(|i| (i.title.clone(), i.leaf)).collect();
    let requests: Vec<InferRequest<'_>> =
        items.iter().map(|(t, l)| InferRequest::new(t, *l).k(20)).collect();

    let mut group = c.benchmark_group("batch_throughput_cat3");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests.len() as u64));
    for threads in [1usize, 2, 4, 0] {
        let label = if threads == 0 { "all".to_string() } else { threads.to_string() };
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| std::hint::black_box(batch_infer(&model, &requests, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);

//! Plain-text table rendering for the repro binaries.

/// Renders rows as an aligned text table. `header` defines the column
/// count; rows shorter than the header are right-padded with blanks.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().take(cols).enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..*width {
                out.push(' ');
            }
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    write_row(&mut out, &header_cells);
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    write_row(&mut out, &sep);
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Formats a ratio as the paper does ("0.31", "1.88x" with `x`).
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a proportion as a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats byte counts human-readably.
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            &["Model", "RP"],
            &[vec!["GraphEx".into(), "56.4%".into()], vec!["RE".into(), "63.7%".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("GraphEx"));
        // Columns align: "RP" column starts at same offset in all rows.
        let col = lines[0].find("RP").unwrap();
        assert_eq!(&lines[2][col..col + 2], "56");
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_pct(0.564), "56.4%");
        assert_eq!(fmt_ratio(1.875), "1.88");
        assert_eq!(fmt_bytes(500), "500 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn short_rows_are_padded() {
        let s = render(&["A", "B", "C"], &[vec!["x".into()]]);
        assert!(s.lines().count() == 3);
    }
}

//! `clusterbench` — loadgen through the scatter-gather router: the same
//! keep-alive `POST /v1/infer` replay as `loadgen`, but against a
//! [`graphex_server::LocalCluster`] — once with **1 backend** and once
//! with **3 backends**, the 3-backend arm absorbing a rolling
//! cluster-wide hot swap at the halfway mark. Both arms gate on zero
//! 5xx and zero degraded entries; the run **fails** (exit 1) otherwise.
//! On success it prints (and with `--output`, writes) the
//! `BENCH_cluster.json` datapoint.
//!
//! ```text
//! cargo run --release -p graphex-bench --bin clusterbench -- \
//!     [--requests 3000] [--connections 4] [--seed 11] \
//!     [--output BENCH_cluster.json] [--date YYYY-MM-DD]
//! ```

use graphex_core::GraphExConfig;
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildOutput, BuildPlan, MarketsimSource, BUILDINFO_FILE};
use graphex_server::{ClusterConfig, HttpClient, Json, LocalCluster, RouterConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: u64,
    connections: usize,
    seed: u64,
    output: Option<String>,
    date: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 3000,
        connections: 4,
        seed: 11,
        output: None,
        date: "unrecorded".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--requests" => args.requests = value.parse().map_err(|_| "bad --requests")?,
            "--connections" => args.connections = value.parse().map_err(|_| "bad --connections")?,
            "--seed" => args.seed = value.parse().map_err(|_| "bad --seed")?,
            "--output" => args.output = Some(value.clone()),
            "--date" => args.date = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    args.connections = args.connections.clamp(1, 64);
    args.requests = args.requests.max(args.connections as u64 * 4);
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("clusterbench: {e}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                    eprintln!("clusterbench: write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("recorded {path}");
            }
        }
        Err(e) => {
            eprintln!("clusterbench FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn build_gen(corpus: &ChurnCorpus) -> Result<BuildOutput, String> {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config).jobs(2);
    build(&plan, vec![Box::new(MarketsimSource::new(corpus))]).map_err(|e| e.to_string())
}

struct ArmResult {
    elapsed: Duration,
    latencies: Vec<Duration>,
    fanout_subrequests: u64,
    rolled: bool,
}

/// Replays the pool through a fresh N-backend cluster; when `gen1` is
/// given, a rolling cluster-wide hot swap lands at the halfway mark.
fn run_arm(
    shards: u32,
    args: &Args,
    gen0: &BuildOutput,
    gen1: Option<&BuildOutput>,
    pool: &[(String, u32, u64)],
) -> Result<ArmResult, String> {
    let root = std::env::temp_dir()
        .join(format!("graphex-clusterbench-{}-{}", shards, std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let snapshots = gen0.emit_shards(shards).map_err(|e| e.to_string())?;
    graphex_pipeline::publish_shards(&snapshots, &root, "clusterbench gen0")
        .map_err(|e| e.to_string())?;
    let roots: Vec<PathBuf> =
        (0..shards).map(|i| graphex_pipeline::shard_root(&root, i)).collect();
    let config = ClusterConfig {
        router: RouterConfig {
            addr: "127.0.0.1:0".into(),
            workers: args.connections,
            ..Default::default()
        },
        ..Default::default()
    };
    let cluster = LocalCluster::boot(&roots, &config)
        .map_err(|e| format!("boot {shards}-backend cluster: {e}"))?;
    let addr = cluster.router_addr();
    eprintln!(
        "replaying {} requests over {} connections through http://{addr} ({shards} backend(s))",
        args.requests, args.connections
    );

    let completed = Arc::new(AtomicU64::new(0));
    let finished_threads = Arc::new(AtomicU64::new(0));
    let per_connection = args.requests / args.connections as u64;
    let started = Instant::now();
    let clients: Vec<_> = (0..args.connections)
        .map(|c| {
            let pool = pool.to_vec();
            let completed = Arc::clone(&completed);
            let finished_threads = Arc::clone(&finished_threads);
            std::thread::spawn(move || -> Result<Vec<Duration>, String> {
                let run = || -> Result<Vec<Duration>, String> {
                    let mut client =
                        HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let mut latencies = Vec::with_capacity(per_connection as usize);
                    for r in 0..per_connection {
                        let (title, leaf, id) =
                            &pool[((c as u64 + r * 7) % pool.len() as u64) as usize];
                        let body = Json::obj(vec![
                            ("title", Json::str(title.clone())),
                            ("leaf", Json::uint(u64::from(*leaf))),
                            ("k", Json::uint(10)),
                            ("id", Json::uint(*id)),
                        ])
                        .render();
                        let sent = Instant::now();
                        let response = client
                            .post_json("/v1/infer", &body)
                            .map_err(|e| format!("connection {c} request {r}: {e}"))?;
                        latencies.push(sent.elapsed());
                        if response.status != 200 {
                            return Err(format!(
                                "connection {c} request {r}: HTTP {} — {}",
                                response.status,
                                response.text()
                            ));
                        }
                        if response
                            .header("connection")
                            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                        {
                            client = HttpClient::connect(addr)
                                .map_err(|e| format!("reconnect: {e}"))?;
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(latencies)
                };
                let result = run();
                finished_threads.fetch_add(1, Ordering::Relaxed);
                result
            })
        })
        .collect();

    let mut rolled = false;
    if let Some(gen1) = gen1 {
        // Roll once half the traffic has landed — or bail out of the wait
        // if the clients already finished (e.g. failed early).
        let swap_at = args.requests / 2;
        while completed.load(Ordering::Relaxed) < swap_at
            && finished_threads.load(Ordering::Relaxed) < args.connections as u64
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        let next = gen1.emit_shards(shards).map_err(|e| e.to_string())?;
        let payloads: Vec<graphex_server::ShardPayload> = next
            .iter()
            .map(|s| {
                (
                    s.bytes.to_vec(),
                    vec![(BUILDINFO_FILE.to_string(), s.manifest.render().into_bytes())],
                )
            })
            .collect();
        let roll_started = Instant::now();
        cluster
            .rolling_publish(&payloads, "clusterbench gen1", Duration::from_secs(30))
            .map_err(|e| format!("rolling publish: {e}"))?;
        eprintln!(
            "rolled {} shard(s) to gen1 after {} requests ({:.1?})",
            shards,
            completed.load(Ordering::Relaxed),
            roll_started.elapsed()
        );
        rolled = true;
    }

    let mut latencies: Vec<Duration> = Vec::with_capacity(args.requests as usize);
    for client in clients {
        latencies.extend(client.join().map_err(|_| "client thread panicked".to_string())??);
    }
    let elapsed = started.elapsed();

    // Cluster-wide acceptance gates.
    let errors_5xx = cluster.server_errors();
    if errors_5xx > 0 {
        return Err(format!("{shards}-backend arm: {errors_5xx} responses were 5xx"));
    }
    let degraded = cluster.router().degraded();
    if degraded > 0 {
        return Err(format!("{shards}-backend arm: {degraded} degraded entries"));
    }
    if rolled {
        for backend in cluster.backends() {
            if backend.api.snapshot_version() < 2 {
                return Err(format!("shard {} never reached gen1", backend.shard));
            }
        }
    }
    let fanout_subrequests = {
        let mut probe = HttpClient::connect(addr).map_err(|e| e.to_string())?;
        let status = probe.get("/statusz").map_err(|e| e.to_string())?;
        graphex_server::json::parse(&status.text())
            .ok()
            .and_then(|j| j.get("fanout_subrequests").and_then(Json::as_u64))
            .unwrap_or(0)
    };
    cluster.shutdown();
    std::fs::remove_dir_all(&root).ok();
    latencies.sort_unstable();
    Ok(ArmResult { elapsed, latencies, fanout_subrequests, rolled })
}

fn arm_json(arm: &ArmResult, shards: u32, requests: u64) -> String {
    let pct = |p: f64| arm.latencies[((arm.latencies.len() - 1) as f64 * p) as usize];
    let throughput = arm.latencies.len() as f64 / arm.elapsed.as_secs_f64();
    format!(
        r#"{{
      "backends": {shards},
      "requests": {requests},
      "elapsed": "{elapsed:.3?}",
      "throughput_per_s": {throughput:.0},
      "latency_p50": "{p50:.3?}",
      "latency_p95": "{p95:.3?}",
      "latency_p99": "{p99:.3?}",
      "latency_max": "{max:.3?}",
      "fanout_subrequests": {fanout},
      "rolling_swap_under_load": {rolled},
      "responses_5xx": 0,
      "degraded_entries": 0
    }}"#,
        elapsed = arm.elapsed,
        p50 = pct(0.50),
        p95 = pct(0.95),
        p99 = pct(0.99),
        max = arm.latencies[arm.latencies.len() - 1],
        fanout = arm.fanout_subrequests,
        rolled = arm.rolled,
    )
}

fn run(args: &Args) -> Result<String, String> {
    eprintln!("generating corpus + gen0/gen1 models (seed {}) ...", args.seed);
    let spec = CategorySpec {
        name: "CLUSTERBENCH".into(),
        seed: args.seed,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 400,
        num_sessions: 2_500,
        leaf_id_base: 7_000,
    };
    let mut corpus = ChurnCorpus::new(spec, 0.05);
    let gen0 = build_gen(&corpus)?;
    corpus.advance_to(1);
    let gen1 = build_gen(&corpus)?;

    // Request pool: item titles + leaves spread across every shard
    // residue, ids overlapping across connections for the store-hit mix.
    let pool: Vec<(String, u32, u64)> = corpus
        .marketplace()
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| (item.title.clone(), item.leaf.0, i as u64))
        .collect();
    if pool.is_empty() {
        return Err("corpus produced no items".into());
    }

    let single = run_arm(1, args, &gen0, None, &pool)?;
    let three = run_arm(3, args, &gen0, Some(&gen1), &pool)?;

    let report = format!(
        r#"{{
  "bench": "cluster",
  "description": "loadgen replay through the scatter-gather router over loopback: 1 backend vs 3 sharded backends, the 3-backend arm absorbing a rolling cluster-wide hot swap at the halfway mark. Gates: zero 5xx cluster-wide, zero degraded entries, every shard on the new generation.",
  "date": "{date}",
  "machine": {{
    "os": "{os}",
    "cpus_available": {cpus},
    "note": "loopback-only; on a 1-CPU container the router, every backend, and all client threads share one core, so the 3-backend arm measures coordination overhead, not scale-out speedup — re-measure on real hardware for throughput claims."
  }},
  "config": {{
    "dataset": "marketsim CLUSTERBENCH (24 leaves, churn 0.05)",
    "requests_per_arm": {requests},
    "connections": {connections},
    "router_workers": {connections},
    "k": 10,
    "profile": "{profile}"
  }},
  "results": {{
    "single_backend": {single},
    "three_backends": {three}
  }}
}}"#,
        date = args.date,
        os = std::env::consts::OS,
        cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        requests = args.requests,
        connections = args.connections,
        profile = if cfg!(debug_assertions) { "debug" } else { "release" },
        single = arm_json(&single, 1, args.requests),
        three = arm_json(&three, 3, args.requests),
    );
    Ok(report)
}

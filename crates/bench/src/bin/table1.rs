//! Regenerates Table I (framework capability matrix). Static — no dataset.

fn main() {
    println!("{}", graphex_bench::experiments::render::table1());
}

//! Diagnostic: how often do WMR/JAC/LTA produce different top-k sets?

use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_core::{Alignment, InferRequest, Scratch};
use graphex_marketsim::{CategoryDataset, CategorySpec};

fn main() {
    let ds = CategoryDataset::generate(CategorySpec::cat2());
    let model = build_graphex(&ds, default_threshold(&ds));
    let mut scratch = Scratch::new();
    for k in [3usize, 5, 8, 10, 15] {
        probe(&ds, &model, &mut scratch, k);
    }
    // RP per alignment at small k (judged with the exact oracle).
    let oracle = ds.oracle();
    for k in [3usize, 5] {
        print!("k={k} RP:");
        for a in [Alignment::Wmr, Alignment::Jac, Alignment::Lta] {
            let (mut relevant, mut total) = (0usize, 0usize);
            for item in ds.test_items(400, 1) {
                let req = InferRequest::new(&item.title, item.leaf).k(k).alignment(a).resolve_texts(true);
                for text in &model.infer_request(&req, &mut scratch).texts {
                    total += 1;
                    if oracle.is_relevant(item, text) {
                        relevant += 1;
                    }
                }
            }
            print!("  {}={:.1}%", a.name(), 100.0 * relevant as f64 / total.max(1) as f64);
        }
        println!();
    }
}

fn probe(
    ds: &CategoryDataset,
    model: &graphex_core::GraphExModel,
    scratch: &mut Scratch,
    k: usize,
) {
    let mut diff_sets = [0usize; 3]; // LTA-vs-WMR, LTA-vs-JAC, WMR-vs-JAC
    let mut pool_over_k = 0usize;
    let items = ds.test_items(400, 1);
    for item in &items {
        let run = |a: Alignment, scratch: &mut Scratch| -> Vec<u32> {
            let req = InferRequest::new(&item.title, item.leaf).k(k).alignment(a);
            let mut v: Vec<u32> =
                model.infer_request(&req, scratch).predictions.iter().map(|p| p.keyphrase).collect();
            v.sort_unstable();
            v
        };
        let all = InferRequest::new(&item.title, item.leaf).k(usize::MAX).keep_threshold_group(true);
        let pool = model.infer_request(&all, scratch).predictions;
        if pool.len() > k {
            pool_over_k += 1;
        }
        let lta = run(Alignment::Lta, scratch);
        let wmr = run(Alignment::Wmr, scratch);
        let jac = run(Alignment::Jac, scratch);
        if lta != wmr {
            diff_sets[0] += 1;
        }
        if lta != jac {
            diff_sets[1] += 1;
        }
        if wmr != jac {
            diff_sets[2] += 1;
        }
    }
    println!(
        "k={k}: items: {}  pool>k: {}  set-diffs LTA/WMR: {}  LTA/JAC: {}  WMR/JAC: {}",
        items.len(),
        pool_over_k,
        diff_sets[0],
        diff_sets[1],
        diff_sets[2]
    );
}

//! `tracebench` — measure what request tracing costs on the serving hot
//! path. Three arms over the same model and request stream, each against
//! a freshly booted `graphex-server`:
//!
//! * `off`  — tracing disabled (the zero-overhead baseline: one branch
//!   per stage, no clock reads).
//! * `on`   — tracing enabled with the default 25ms slow threshold, which
//!   loopback traffic never crosses (spans + ring, slow ring idle).
//! * `slow` — tracing enabled with a zero slow threshold, so *every*
//!   request also lands on the slow ring (the worst-case write path).
//!
//! Arms are interleaved across passes so machine noise hits all arms
//! alike, and the overhead is the **best matched pair**: each pass
//! compares its own off/on runs (seconds apart, same machine state) and
//! the smallest per-pass delta is the verdict — a loaded CI neighbour
//! can slow a whole pass, but it cannot manufacture overhead in every
//! pass at once. The run **fails** (exit 1) if that overhead exceeds
//! `--max-overhead-pct` (default 5), or if any response is non-200. On
//! success it prints (and with `--output`, writes)
//! `BENCH_trace_overhead.json`.
//!
//! ```text
//! cargo run --release -p graphex-bench --bin tracebench -- \
//!     [--requests 3000] [--connections 4] [--scale cat1|cat2|cat3|tiny] \
//!     [--passes 3] [--max-overhead-pct 5] \
//!     [--output BENCH_trace_overhead.json] [--date YYYY-MM-DD]
//! ```

use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_core::GraphExModel;
use graphex_marketsim::{CategoryDataset, CategorySpec};
use graphex_serving::{KvStore, ServingApi};
use graphex_server::{HttpClient, Json, ServerConfig, TraceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: u64,
    connections: usize,
    scale: String,
    passes: usize,
    max_overhead_pct: f64,
    output: Option<String>,
    date: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 3000,
        connections: 4,
        scale: "tiny".into(),
        passes: 3,
        max_overhead_pct: 5.0,
        output: None,
        date: "unrecorded".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--requests" => args.requests = value.parse().map_err(|_| "bad --requests")?,
            "--connections" => args.connections = value.parse().map_err(|_| "bad --connections")?,
            "--scale" => args.scale = value.clone(),
            "--passes" => args.passes = value.parse().map_err(|_| "bad --passes")?,
            "--max-overhead-pct" => {
                args.max_overhead_pct = value.parse().map_err(|_| "bad --max-overhead-pct")?;
            }
            "--output" => args.output = Some(value.clone()),
            "--date" => args.date = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    args.connections = args.connections.clamp(1, 64);
    args.requests = args.requests.max(args.connections as u64);
    args.passes = args.passes.clamp(1, 16);
    Ok(args)
}

fn spec_for(scale: &str) -> Result<CategorySpec, String> {
    match scale {
        "cat1" => Ok(CategorySpec::cat1()),
        "cat2" => Ok(CategorySpec::cat2()),
        "cat3" => Ok(CategorySpec::cat3()),
        "tiny" => Ok(CategorySpec::tiny(7)),
        other => Err(format!("unknown scale {other:?} (cat1|cat2|cat3|tiny)")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("tracebench: {e}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                    eprintln!("tracebench: write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("recorded {path}");
            }
        }
        Err(e) => {
            eprintln!("tracebench FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// The three arms, in interleave order.
const ARMS: [&str; 3] = ["off", "on", "slow"];

fn trace_config(arm: &str) -> TraceConfig {
    match arm {
        "off" => TraceConfig { enabled: false, ..TraceConfig::default() },
        "on" => TraceConfig::default(),
        // Every request crosses a zero threshold → the slow ring takes a
        // write per request (worst case for the recorder).
        _ => TraceConfig { slow_threshold: Duration::from_nanos(0), ..TraceConfig::default() },
    }
}

fn run(args: &Args) -> Result<String, String> {
    eprintln!("generating {} dataset + model ...", args.scale);
    let ds = CategoryDataset::generate(spec_for(&args.scale)?);
    let model = Arc::new(build_graphex(&ds, default_threshold(&ds)));
    let pool: Vec<(String, u32, u64)> = ds
        .test_items(512, 0xBEEF)
        .iter()
        .enumerate()
        .map(|(i, item)| (item.title.clone(), item.leaf.0, i as u64))
        .collect();
    if pool.is_empty() {
        return Err("dataset produced no test items".into());
    }

    let mut passes: Vec<[f64; ARMS.len()]> = Vec::with_capacity(args.passes);
    for pass in 0..args.passes {
        let mut row = [0.0f64; ARMS.len()];
        for (slot, arm) in ARMS.iter().enumerate() {
            row[slot] = run_arm(args, Arc::clone(&model), &pool, arm)?;
            eprintln!("pass {pass} arm {arm:<4}: {:.0} req/s", row[slot]);
        }
        passes.push(row);
    }
    // Best matched pair: overhead judged within each pass, smallest
    // per-pass delta wins (inter-pass drift cancels out of the ratio).
    let pair_overhead = |slot: usize| {
        passes
            .iter()
            .map(|row| ((row[0] - row[slot]) / row[0] * 100.0).max(0.0))
            .fold(f64::INFINITY, f64::min)
    };
    let on_pct = pair_overhead(1);
    let slow_pct = pair_overhead(2);
    let best = |slot: usize| passes.iter().map(|row| row[slot]).fold(0.0, f64::max);
    let (off, on, slow) = (best(0), best(1), best(2));
    eprintln!(
        "best: off {off:.0}  on {on:.0}  slow {slow:.0}; matched-pair overhead: on {on_pct:.1}%  slow {slow_pct:.1}%"
    );
    if on_pct > args.max_overhead_pct {
        return Err(format!(
            "tracing overhead {on_pct:.1}% exceeds the {:.1}% budget ({off:.0} → {on:.0} req/s)",
            args.max_overhead_pct
        ));
    }

    let report = format!(
        r#"{{
  "bench": "trace_overhead",
  "description": "three interleaved arms of loopback POST /v1/infer traffic against a release-built graphex-server: tracing off, tracing on (default 25ms slow threshold, slow ring idle), and tracing on with a zero slow threshold so every request also writes the slow ring. Throughputs are the best pass per arm; the overhead percentages are the best matched pair (smallest within-pass off-vs-traced delta), which cancels inter-pass machine drift. Gate: the traced arm within the overhead budget.",
  "date": "{date}",
  "machine": {{
    "os": "{os}",
    "cpus_available": {cpus},
    "note": "loopback-only; client and server threads share cores, so absolute req/s is machine-bound — the overhead ratio is the datapoint."
  }},
  "config": {{
    "dataset": "{scale}",
    "requests_per_arm": {requests},
    "connections": {connections},
    "passes": {passes},
    "max_overhead_pct": {budget:.1},
    "profile": "{profile}"
  }},
  "results": {{
    "throughput_off_per_s": {off:.0},
    "throughput_on_per_s": {on:.0},
    "throughput_slow_logging_per_s": {slow:.0},
    "overhead_on_pct": {on_pct:.2},
    "overhead_slow_logging_pct": {slow_pct:.2}
  }}
}}"#,
        date = args.date,
        os = std::env::consts::OS,
        cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        scale = args.scale,
        requests = args.requests,
        connections = args.connections,
        passes = args.passes,
        budget = args.max_overhead_pct,
        profile = if cfg!(debug_assertions) { "debug" } else { "release" },
    );
    Ok(report)
}

/// Boots a fresh server (fresh KV store, so arms see identical cache
/// behaviour), replays the request stream, and returns req/s.
fn run_arm(
    args: &Args,
    model: Arc<GraphExModel>,
    pool: &[(String, u32, u64)],
    arm: &str,
) -> Result<f64, String> {
    let api = Arc::new(ServingApi::new(model, Arc::new(KvStore::new()), 10));
    let server = graphex_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: args.connections,
            queue_depth: 256,
            max_body_bytes: 1 << 20,
            deadline: Some(Duration::from_secs(10)),
            keep_alive_timeout: Duration::from_secs(10),
            trace: trace_config(arm),
        },
        api,
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let per_connection = args.requests / args.connections as u64;
    let started = Instant::now();

    let clients: Vec<_> = (0..args.connections)
        .map(|c| {
            let pool = pool.to_vec();
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                for r in 0..per_connection {
                    let (title, leaf, id) = &pool[((c as u64 + r * 7) % pool.len() as u64) as usize];
                    let body = Json::obj(vec![
                        ("title", Json::str(title.clone())),
                        ("leaf", Json::uint(u64::from(*leaf))),
                        ("k", Json::uint(10)),
                        ("id", Json::uint(*id)),
                    ])
                    .render();
                    let response = client
                        .post_json("/v1/infer", &body)
                        .map_err(|e| format!("connection {c} request {r}: {e}"))?;
                    if response.status != 200 {
                        return Err(format!(
                            "connection {c} request {r}: HTTP {}",
                            response.status
                        ));
                    }
                }
                Ok(())
            })
        })
        .collect();
    let total = per_connection * args.connections as u64;
    for client in clients {
        client.join().map_err(|_| "client thread panicked".to_string())??;
    }
    let elapsed = started.elapsed();

    // Sanity per arm: the recorder saw exactly what the arm promises.
    match (arm, server.traces()) {
        ("off", Some(_)) => return Err("off arm booted with a recorder".into()),
        ("off", None) => {}
        (_, None) => return Err(format!("{arm} arm booted without a recorder")),
        (a, Some(recorder)) => {
            if recorder.recorded() < total {
                return Err(format!(
                    "{a} arm recorded {} traces for {total} requests",
                    recorder.recorded()
                ));
            }
            if a == "slow" && recorder.slow_count() < total {
                return Err(format!(
                    "slow arm logged {} slow traces for {total} requests",
                    recorder.slow_count()
                ));
            }
        }
    }
    let errors_5xx = server.metrics().server_errors();
    server.shutdown();
    if errors_5xx > 0 {
        return Err(format!("{errors_5xx} responses were 5xx"));
    }
    Ok(total as f64 / elapsed.as_secs_f64())
}

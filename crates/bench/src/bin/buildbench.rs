//! `buildbench` — record the `BENCH_build_pipeline.json` datapoint:
//! sequential `GraphExBuilder` vs the sharded pipeline (1/4 workers) vs
//! an incremental delta rebuild after one churn step, at cat1 + cat2
//! scales.
//!
//! Doubles as an equivalence harness: the run **fails** (exit 1) if the
//! pipeline or delta bytes ever diverge from the sequential builder's,
//! or if the delta pass reconstructs every leaf (reuse never engaged).
//!
//! ```text
//! cargo run --release -p graphex-bench --bin buildbench -- \
//!     [--reps 5] [--churn-rate 0.02] [--output BENCH_build_pipeline.json] \
//!     [--date YYYY-MM-DD]
//! ```

use graphex_core::{serialize, GraphExBuilder, GraphExConfig};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildOutput, BuildPlan, DeltaBase, VecSource};
use std::time::{Duration, Instant};

struct Args {
    reps: usize,
    churn_rate: f64,
    output: Option<String>,
    date: String,
}

fn parse_args() -> Result<Args, String> {
    // 0.5% churn default: at cat1/cat2 corpus sizes the paper's 2% daily
    // rate already touches every one of the (scaled-down) leaves, which
    // would degenerate the delta measurement into a full rebuild.
    let mut args =
        Args { reps: 5, churn_rate: 0.005, output: None, date: "unrecorded".into() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--reps" => args.reps = value.parse().map_err(|_| "bad --reps")?,
            "--churn-rate" => args.churn_rate = value.parse().map_err(|_| "bad --churn-rate")?,
            "--output" => args.output = Some(value.clone()),
            "--date" => args.date = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    args.reps = args.reps.clamp(1, 50);
    Ok(args)
}

fn config() -> GraphExConfig {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    config
}

/// Median wall time of `reps` runs of `f`.
fn median(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct ScaleResult {
    scale: String,
    records: u64,
    leaves: usize,
    sequential_ms: f64,
    pipeline_1_ms: f64,
    pipeline_4_ms: f64,
    delta_ms: f64,
    leaves_reused: usize,
    snapshot_bytes: usize,
}

fn run_scale(name: &str, spec: CategorySpec, args: &Args) -> Result<ScaleResult, String> {
    let dir = std::env::temp_dir().join(format!("graphex-buildbench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let snapshot = dir.join(format!("{name}.gexm"));

    // Day 0 snapshot as the delta base, one churn step to "today".
    let mut corpus = ChurnCorpus::new(spec, args.churn_rate);
    let pipeline_build = |jobs: usize, records: Vec<_>| -> Result<BuildOutput, String> {
        build(
            &BuildPlan::new(config()).jobs(jobs),
            vec![Box::new(VecSource::new("buildbench", records))],
        )
        .map_err(|e| e.to_string())
    };
    pipeline_build(1, corpus.records())?.write_to(&snapshot).map_err(|e| e.to_string())?;
    corpus.advance();
    let records = corpus.records();

    // Equivalence gate first: sequential ≡ pipeline ≡ delta, bytewise.
    let reference =
        GraphExBuilder::new(config()).add_records(records.clone()).build().map_err(|e| e.to_string())?;
    let reference_bytes = serialize::to_bytes(&reference);
    let delta_plan = BuildPlan::new(config())
        .jobs(4)
        .delta(DeltaBase::load(&snapshot).map_err(|e| e.to_string())?);
    let delta_out = build(
        &delta_plan,
        vec![Box::new(VecSource::new("buildbench", records.clone()))],
    )
    .map_err(|e| e.to_string())?;
    for (what, bytes) in [
        ("pipeline(4)", pipeline_build(4, records.clone())?.bytes),
        ("delta", delta_out.bytes.clone()),
    ] {
        if bytes.as_ref() != reference_bytes.as_ref() {
            return Err(format!("{name}: {what} bytes diverge from the sequential builder"));
        }
    }
    if delta_out.report.leaves_reused == 0 {
        return Err(format!("{name}: delta pass reused zero leaves — reuse never engaged"));
    }

    // Timings (median of reps).
    let sequential_ms = ms(median(args.reps, || {
        std::hint::black_box(
            GraphExBuilder::new(config()).add_records(records.clone()).build().unwrap(),
        );
    }));
    let pipeline_1_ms =
        ms(median(args.reps, || {
            std::hint::black_box(pipeline_build(1, records.clone()).unwrap());
        }));
    let pipeline_4_ms =
        ms(median(args.reps, || {
            std::hint::black_box(pipeline_build(4, records.clone()).unwrap());
        }));
    let delta_ms = ms(median(args.reps, || {
        std::hint::black_box(
            build(
                &delta_plan,
                vec![Box::new(VecSource::new("buildbench", records.clone()))],
            )
            .unwrap(),
        );
    }));

    std::fs::remove_dir_all(&dir).ok();
    Ok(ScaleResult {
        scale: name.into(),
        records: delta_out.report.records_in,
        leaves: delta_out.report.leaves_total,
        sequential_ms,
        pipeline_1_ms,
        pipeline_4_ms,
        delta_ms,
        leaves_reused: delta_out.report.leaves_reused,
        snapshot_bytes: delta_out.report.snapshot_bytes,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("buildbench: {e}");
            std::process::exit(2);
        }
    };
    let mut results = Vec::new();
    for (name, spec) in [("cat2", CategorySpec::cat2()), ("cat1", CategorySpec::cat1())] {
        match run_scale(name, spec, &args) {
            Ok(result) => results.push(result),
            Err(e) => {
                eprintln!("buildbench: {e}");
                std::process::exit(1);
            }
        }
    }

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let result_lines: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{ \"scale\": \"{}\", \"records\": {}, \"leaves\": {}, \
                 \"sequential_ms\": {:.3}, \"pipeline_1_worker_ms\": {:.3}, \
                 \"pipeline_4_workers_ms\": {:.3}, \"delta_rebuild_ms\": {:.3}, \
                 \"delta_leaves_reused\": {}, \"snapshot_bytes\": {} }}",
                r.scale,
                r.records,
                r.leaves,
                r.sequential_ms,
                r.pipeline_1_ms,
                r.pipeline_4_ms,
                r.delta_ms,
                r.leaves_reused,
                r.snapshot_bytes,
            )
        })
        .collect();
    let report = format!(
        "{{\n  \"bench\": \"build_pipeline\",\n  \"description\": \"Sequential GraphExBuilder vs \
         the graphex-pipeline sharded build (1/4 workers) vs an incremental delta rebuild after \
         one churn step at config.churn_rate; marketsim churn corpora (no session simulation). Gate: all three \
         produce byte-identical GEXM v2 snapshots and the delta pass reuses at least one leaf.\",\n  \
         \"date\": \"{}\",\n  \"machine\": {{\n    \"os\": \"{}\",\n    \"cpus_available\": {cpus},\n    \
         \"note\": \"on a 1-CPU container the worker-count comparison is degenerate (nothing to fan \
         out to; queue/merge plumbing even makes the pipeline slightly slower than the in-process \
         sequential builder) — re-measure parallel speedup on real hardware; the delta-vs-full gap \
         comes from skipping leaf construction and is the portable signal, bounded here by the \
         meta-fallback graph, which spans the whole corpus and is rebuilt whenever any leaf \
         changes.\"\n  }},\n  \"config\": {{\n    \
         \"churn_rate\": {}, \"repetitions_median\": {}, \"profile\": \"release\"\n  }},\n  \
         \"results\": [\n{}\n  ]\n}}",
        args.date,
        std::env::consts::OS,
        args.churn_rate,
        args.reps,
        result_lines.join(",\n"),
    );
    println!("{report}");
    if let Some(path) = &args.output {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("buildbench: write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("buildbench: wrote {path}");
    }
}

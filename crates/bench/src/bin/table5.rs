//! Regenerates Table V (relative precision/recall; RE as ground truth).

use graphex_bench::{experiments, Scale};

fn main() {
    let studies = experiments::run_studies(Scale::from_env());
    println!("{}", experiments::render::table5(&studies));
}

//! Regenerates Table II (dataset details per meta category).

use graphex_bench::{experiments, Scale};

fn main() {
    let studies = experiments::run_studies(Scale::from_env());
    println!("{}", experiments::render::table2(&studies));
}

//! `overlaybench` — NRT overlay serving cost model: measures (a) the
//! upsert-to-servable latency a seller sees when a brand-new listing is
//! pushed through `ServingApi::apply_upsert` and answered on the very
//! next request, and (b) the read-path overhead the overlay imposes on
//! steady-state inference at 0% / 1% / 10% overlaid-leaf depth (the
//! no-overlay arm runs an api without any overlay attached, so the 0%
//! arm also prices the bare `is-there-an-overlay` branch). Records the
//! `BENCH_overlay.json` datapoint behind `make bench-overlay`.
//!
//! ```text
//! cargo run --release -p graphex-bench --bin overlaybench -- \
//!     [--seed 23] [--output BENCH_overlay.json] [--date YYYY-MM-DD]
//! ```

use graphex_core::{GraphExConfig, InferRequest, KeyphraseRecord, LeafId};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildPlan, MarketsimSource};
use graphex_serving::{KvStore, OverlayStore, ServingApi};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NUM_LEAVES: usize = 100;
const UPSERTS: usize = 200;
const READS_PER_ARM: usize = 20_000;
/// Fraction of base leaves carrying at least one overlay record per arm.
const DEPTHS: [f64; 3] = [0.0, 0.01, 0.10];

struct Args {
    seed: u64,
    output: Option<String>,
    date: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { seed: 23, output: None, date: "unrecorded".into() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--seed" => args.seed = value.parse().map_err(|_| "bad --seed")?,
            "--output" => args.output = Some(value.clone()),
            "--date" => args.date = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("overlaybench: {e}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                    eprintln!("overlaybench: write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("recorded {path}");
            }
        }
        Err(e) => {
            eprintln!("overlaybench FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn bench_corpus(seed: u64) -> ChurnCorpus {
    ChurnCorpus::new(
        CategorySpec {
            name: "OVERLAYBENCH".into(),
            seed,
            num_leaves: NUM_LEAVES,
            products_per_leaf: 6,
            num_items: 600,
            num_sessions: 4_000,
            leaf_id_base: 5_000,
        },
        0.0,
    )
}

fn api_over(corpus: &ChurnCorpus, overlay: bool) -> Result<Arc<ServingApi>, String> {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config).jobs(2);
    let output =
        build(&plan, vec![Box::new(MarketsimSource::new(corpus))]).map_err(|e| e.to_string())?;
    let mut api = ServingApi::new(Arc::new(output.model), Arc::new(KvStore::new()), 10);
    if overlay {
        api = api.with_overlay(Arc::new(OverlayStore::new()));
    }
    Ok(Arc::new(api))
}

fn fmt_stats(samples: &mut [Duration]) -> (Duration, Duration, Duration) {
    samples.sort_unstable();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let p99 = samples[(samples.len() * 99) / 100 - 1];
    let max = *samples.last().unwrap();
    (mean, p99, max)
}

/// Arm (a): one brand-new listing per upsert, each immediately served.
/// The measured interval covers apply (canonicalize + rebuild the leaf's
/// mini graph) *and* the first read answered from it.
fn bench_upsert_to_servable(corpus: &ChurnCorpus) -> Result<String, String> {
    let api = api_over(corpus, true)?;
    let mut samples = Vec::with_capacity(UPSERTS);
    for i in 0..UPSERTS {
        let text = format!("fresh onboard listing {i} widget");
        let leaf = LeafId(40_000 + i as u32);
        let record = KeyphraseRecord::new(text.clone(), leaf, 60, 5);
        let started = Instant::now();
        api.apply_upsert(std::slice::from_ref(&record)).map_err(|e| format!("{e:?}"))?;
        let served = api.serve_request(&InferRequest::new(&text, leaf).k(5).resolve_texts(true));
        let elapsed = started.elapsed();
        if !served.keyphrases.iter().any(|k| k == &text) {
            return Err(format!("upsert {i} not servable on the next request"));
        }
        samples.push(elapsed);
    }
    let (mean, p99, max) = fmt_stats(&mut samples);
    eprintln!("upsert→servable over {UPSERTS} listings: {mean:.3?} mean, {p99:.3?} p99, {max:.3?} max");
    Ok(format!(
        r#"    "upsert_to_servable": {{
      "upserts": {UPSERTS},
      "mean": "{mean:.3?}",
      "p99": "{p99:.3?}",
      "max": "{max:.3?}"
    }}"#
    ))
}

/// Arm (b): steady-state read latency with 0% / 1% / 10% of base leaves
/// overlaid. Every arm replays the same request tape (one title per
/// leaf, round-robin), so overlaid leaves are hit in proportion to the
/// depth and the deltas isolate the overlay's read-path cost.
fn bench_read_overhead(corpus: &ChurnCorpus, seed: u64) -> Result<String, String> {
    // One representative (title, leaf) per base leaf.
    let mut tape: Vec<(String, LeafId)> = Vec::new();
    for item in &corpus.marketplace().items {
        if !tape.iter().any(|(_, l)| *l == item.leaf) {
            tape.push((item.title.clone(), item.leaf));
        }
    }
    tape.sort_by_key(|(_, l)| l.0);

    let mut arms = String::new();
    let mut baseline_mean = Duration::ZERO;
    for (i, &depth) in DEPTHS.iter().enumerate() {
        let api = api_over(corpus, depth > 0.0)?;
        let overlaid = ((tape.len() as f64) * depth).round() as usize;
        // Spread the overlaid leaves across the tape deterministically.
        if let Some(stride) = tape.len().checked_div(overlaid) {
            let records: Vec<KeyphraseRecord> = (0..overlaid)
                .map(|j| {
                    let (_, leaf) = tape[(j * stride + seed as usize) % tape.len()];
                    KeyphraseRecord::new(format!("overlay churn phrase {j} gadget"), leaf, 50, 5)
                })
                .collect();
            api.apply_upsert(&records).map_err(|e| format!("{e:?}"))?;
        }
        // Warm-up lap, then the measured tape replay.
        for (title, leaf) in &tape {
            api.serve_request(&InferRequest::new(title, *leaf).k(10));
        }
        let started = Instant::now();
        for r in 0..READS_PER_ARM {
            let (title, leaf) = &tape[r % tape.len()];
            let served = api.serve_request(&InferRequest::new(title, *leaf).k(10));
            std::hint::black_box(&served.keyphrases);
        }
        let mean = started.elapsed() / READS_PER_ARM as u32;
        if i == 0 {
            baseline_mean = mean;
        }
        let overhead_pct = if baseline_mean.is_zero() {
            0.0
        } else {
            (mean.as_nanos() as f64 / baseline_mean.as_nanos() as f64 - 1.0) * 100.0
        };
        eprintln!(
            "read path at {:.0}% depth ({overlaid}/{} leaves overlaid): {mean:.3?} mean ({overhead_pct:+.1}% vs no overlay)",
            depth * 100.0,
            tape.len()
        );
        if i > 0 {
            arms.push_str(",\n");
        }
        arms.push_str(&format!(
            r#"      {{
        "depth_pct": {},
        "leaves_overlaid": {overlaid},
        "reads": {READS_PER_ARM},
        "mean": "{mean:.3?}",
        "overhead_vs_no_overlay_pct": {overhead_pct:.1}
      }}"#,
            depth * 100.0,
        ));
    }
    Ok(format!("    \"read_path\": [\n{arms}\n    ]"))
}

fn run(args: &Args) -> Result<String, String> {
    let corpus = bench_corpus(args.seed);
    let upsert = bench_upsert_to_servable(&corpus)?;
    let reads = bench_read_overhead(&corpus, args.seed)?;
    Ok(format!(
        r#"{{
  "bench": "overlay",
  "description": "NRT overlay serving: upsert-to-servable latency (apply_upsert of a brand-new leaf plus the first read answered from its overlay mini graph) and steady-state read-path overhead with 0%/1%/10% of base leaves overlaid. The 0% arm runs without any overlay attached, so deltas price both the overlay branch and the overlaid-leaf traversal.",
  "date": "{}",
  "machine": {{
    "os": "{}",
    "cpus_available": {},
    "note": "single-process, in-memory serving api; no HTTP or KV-cache in the measured path (serve_request bypasses the store)."
  }},
  "config": {{
    "dataset": "marketsim OVERLAYBENCH ({NUM_LEAVES} leaves, seed {})",
    "upserts": {UPSERTS},
    "reads_per_arm": {READS_PER_ARM},
    "depths_pct": [0, 1, 10],
    "profile": "release"
  }},
  "results": {{
{upsert},
{reads}
  }}
}}"#,
        args.date,
        std::env::consts::OS,
        std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        args.seed,
    ))
}

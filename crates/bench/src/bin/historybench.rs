//! `historybench` — measure what the telemetry-history sampler costs on
//! the serving hot path. Two arms over the same model and request
//! stream, each against a freshly booted `graphex-server`:
//!
//! * `off` — history disabled (no sampler thread, no ring).
//! * `on`  — history enabled with a deliberately aggressive interval
//!   (default 50ms, 20× the production default rate) so the sampler
//!   provably fires many times inside the measurement window.
//!
//! The sampler never touches the request path — it reads the same
//! atomics the handlers bump and appends to its own ring — so the
//! budget here is tight: **1%** by default, versus tracebench's 5%.
//! Arms are interleaved across passes and the overhead is the best
//! matched pair (smallest within-pass off-vs-on delta), which cancels
//! inter-pass machine drift; a loaded CI neighbour can slow one pass,
//! but it cannot manufacture overhead in every pass at once. Exit 1 if
//! the overhead exceeds `--max-overhead-pct`, if any response is
//! non-200, or if the on arm failed to record samples. On success it
//! prints (and with `--output`, writes) `BENCH_report_history.json`.
//!
//! ```text
//! cargo run --release -p graphex-bench --bin historybench -- \
//!     [--requests 3000] [--connections 4] [--scale cat1|cat2|cat3|tiny] \
//!     [--passes 3] [--interval-ms 50] [--max-overhead-pct 1] \
//!     [--output BENCH_report_history.json] [--date YYYY-MM-DD]
//! ```

use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_core::GraphExModel;
use graphex_marketsim::{CategoryDataset, CategorySpec};
use graphex_serving::{KvStore, ServingApi};
use graphex_server::{HistoryConfig, HttpClient, Json, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: u64,
    connections: usize,
    scale: String,
    passes: usize,
    interval_ms: u64,
    max_overhead_pct: f64,
    output: Option<String>,
    date: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 3000,
        connections: 4,
        scale: "tiny".into(),
        passes: 3,
        interval_ms: 50,
        max_overhead_pct: 1.0,
        output: None,
        date: "unrecorded".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--requests" => args.requests = value.parse().map_err(|_| "bad --requests")?,
            "--connections" => args.connections = value.parse().map_err(|_| "bad --connections")?,
            "--scale" => args.scale = value.clone(),
            "--passes" => args.passes = value.parse().map_err(|_| "bad --passes")?,
            "--interval-ms" => args.interval_ms = value.parse().map_err(|_| "bad --interval-ms")?,
            "--max-overhead-pct" => {
                args.max_overhead_pct = value.parse().map_err(|_| "bad --max-overhead-pct")?;
            }
            "--output" => args.output = Some(value.clone()),
            "--date" => args.date = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    args.connections = args.connections.clamp(1, 64);
    args.requests = args.requests.max(args.connections as u64);
    args.passes = args.passes.clamp(1, 16);
    args.interval_ms = args.interval_ms.max(10);
    Ok(args)
}

fn spec_for(scale: &str) -> Result<CategorySpec, String> {
    match scale {
        "cat1" => Ok(CategorySpec::cat1()),
        "cat2" => Ok(CategorySpec::cat2()),
        "cat3" => Ok(CategorySpec::cat3()),
        "tiny" => Ok(CategorySpec::tiny(7)),
        other => Err(format!("unknown scale {other:?} (cat1|cat2|cat3|tiny)")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("historybench: {e}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                    eprintln!("historybench: write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("recorded {path}");
            }
        }
        Err(e) => {
            eprintln!("historybench FAILED: {e}");
            std::process::exit(1);
        }
    }
}

const ARMS: [&str; 2] = ["off", "on"];

fn run(args: &Args) -> Result<String, String> {
    eprintln!("generating {} dataset + model ...", args.scale);
    let ds = CategoryDataset::generate(spec_for(&args.scale)?);
    let model = Arc::new(build_graphex(&ds, default_threshold(&ds)));
    let pool: Vec<(String, u32, u64)> = ds
        .test_items(512, 0xBEEF)
        .iter()
        .enumerate()
        .map(|(i, item)| (item.title.clone(), item.leaf.0, i as u64))
        .collect();
    if pool.is_empty() {
        return Err("dataset produced no test items".into());
    }

    let mut passes: Vec<[f64; ARMS.len()]> = Vec::with_capacity(args.passes);
    let mut min_samples = u64::MAX;
    for pass in 0..args.passes {
        let mut row = [0.0f64; ARMS.len()];
        for (slot, arm) in ARMS.iter().enumerate() {
            let (throughput, samples) = run_arm(args, Arc::clone(&model), &pool, arm)?;
            row[slot] = throughput;
            if *arm == "on" {
                min_samples = min_samples.min(samples);
            }
            eprintln!("pass {pass} arm {arm:<3}: {throughput:.0} req/s ({samples} samples)");
        }
        passes.push(row);
    }
    // Best matched pair: overhead judged within each pass, smallest
    // per-pass delta wins (inter-pass drift cancels out of the ratio).
    let on_pct = passes
        .iter()
        .map(|row| ((row[0] - row[1]) / row[0] * 100.0).max(0.0))
        .fold(f64::INFINITY, f64::min);
    let best = |slot: usize| passes.iter().map(|row| row[slot]).fold(0.0, f64::max);
    let (off, on) = (best(0), best(1));
    eprintln!("best: off {off:.0}  on {on:.0}; matched-pair overhead: {on_pct:.2}%");
    if on_pct > args.max_overhead_pct {
        return Err(format!(
            "history overhead {on_pct:.2}% exceeds the {:.2}% budget ({off:.0} → {on:.0} req/s)",
            args.max_overhead_pct
        ));
    }

    let report = format!(
        r#"{{
  "bench": "report_history",
  "description": "two interleaved arms of loopback POST /v1/infer traffic against a release-built graphex-server: telemetry history off, and on with an aggressive sampling interval (20x the production default rate). The sampler reads the same atomics the handlers bump and writes its own ring, never touching the request path, so the budget is 1% — versus tracebench's 5%. Throughputs are the best pass per arm; the overhead percentage is the best matched pair (smallest within-pass off-vs-on delta), which cancels inter-pass machine drift. Gate: overhead within budget and the on arm actually recorded samples.",
  "date": "{date}",
  "machine": {{
    "os": "{os}",
    "cpus_available": {cpus},
    "note": "loopback-only; client and server threads share cores, so absolute req/s is machine-bound — the overhead ratio is the datapoint."
  }},
  "config": {{
    "dataset": "{scale}",
    "requests_per_arm": {requests},
    "connections": {connections},
    "passes": {passes},
    "sample_interval_ms": {interval},
    "max_overhead_pct": {budget:.2},
    "profile": "{profile}"
  }},
  "results": {{
    "throughput_off_per_s": {off:.0},
    "throughput_on_per_s": {on:.0},
    "overhead_on_pct": {on_pct:.2},
    "min_samples_per_on_arm": {min_samples}
  }}
}}"#,
        date = args.date,
        os = std::env::consts::OS,
        cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        scale = args.scale,
        requests = args.requests,
        connections = args.connections,
        passes = args.passes,
        interval = args.interval_ms,
        budget = args.max_overhead_pct,
        profile = if cfg!(debug_assertions) { "debug" } else { "release" },
    );
    Ok(report)
}

/// Boots a fresh server (fresh KV store, so arms see identical cache
/// behaviour), replays the request stream, and returns (req/s, samples
/// the history ring recorded during the run).
fn run_arm(
    args: &Args,
    model: Arc<GraphExModel>,
    pool: &[(String, u32, u64)],
    arm: &str,
) -> Result<(f64, u64), String> {
    let api = Arc::new(ServingApi::new(model, Arc::new(KvStore::new()), 10));
    let history = HistoryConfig {
        enabled: arm == "on",
        interval: Duration::from_millis(args.interval_ms),
        ..HistoryConfig::default()
    };
    let server = graphex_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: args.connections,
            queue_depth: 256,
            max_body_bytes: 1 << 20,
            deadline: Some(Duration::from_secs(10)),
            keep_alive_timeout: Duration::from_secs(10),
            trace: Default::default(),
            history,
        },
        api,
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let per_connection = args.requests / args.connections as u64;
    let started = Instant::now();

    let clients: Vec<_> = (0..args.connections)
        .map(|c| {
            let pool = pool.to_vec();
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                for r in 0..per_connection {
                    let (title, leaf, id) = &pool[((c as u64 + r * 7) % pool.len() as u64) as usize];
                    let body = Json::obj(vec![
                        ("title", Json::str(title.clone())),
                        ("leaf", Json::uint(u64::from(*leaf))),
                        ("k", Json::uint(10)),
                        ("id", Json::uint(*id)),
                    ])
                    .render();
                    let response = client
                        .post_json("/v1/infer", &body)
                        .map_err(|e| format!("connection {c} request {r}: {e}"))?;
                    if response.status != 200 {
                        return Err(format!(
                            "connection {c} request {r}: HTTP {}",
                            response.status
                        ));
                    }
                }
                Ok(())
            })
        })
        .collect();
    let total = per_connection * args.connections as u64;
    for client in clients {
        client.join().map_err(|_| "client thread panicked".to_string())??;
    }
    let elapsed = started.elapsed();

    // Sanity per arm: the ring saw exactly what the arm promises.
    let samples = match (arm, server.history()) {
        ("off", Some(_)) => return Err("off arm booted with a history ring".into()),
        ("off", None) => 0,
        (_, None) => return Err("on arm booted without a history ring".into()),
        (_, Some(history)) => {
            // The run lasts requests/throughput seconds; at 50ms the
            // sampler should have fired at least once unless the whole
            // arm finished inside one interval — force one so the ring
            // provably works, then require content either way.
            server.sample_history_now();
            let recorded = history.recorded();
            if recorded == 0 {
                return Err("on arm recorded no history samples".into());
            }
            recorded
        }
    };
    let errors_5xx = server.metrics().server_errors();
    server.shutdown();
    if errors_5xx > 0 {
        return Err(format!("{errors_5xx} responses were 5xx"));
    }
    Ok((total as f64 / elapsed.as_secs_f64(), samples))
}

//! Regenerates Table III (RP / HP / RRR / RHR for all six models).

use graphex_bench::{experiments, Scale};

fn main() {
    let studies = experiments::run_studies(Scale::from_env());
    println!("{}", experiments::render::table3(&studies));
}

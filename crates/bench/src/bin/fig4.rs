//! Regenerates Figure 4 (avg relevant head/tail & irrelevant per model).

use graphex_bench::{experiments, Scale};

fn main() {
    let studies = experiments::run_studies(Scale::from_env());
    println!("{}", experiments::render::fig4(&studies));
}

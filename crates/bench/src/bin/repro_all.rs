//! Regenerates every table and figure of the paper in one run, sharing the
//! datasets, trained models and judged evaluation across experiments.
//!
//! ```bash
//! cargo run --release -p graphex-bench --bin repro_all            # full scale
//! GRAPHEX_SCALE=quick cargo run --release -p graphex-bench --bin repro_all
//! ```

use graphex_bench::experiments::{render, run_studies};
use graphex_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[repro_all] scale: {scale:?}");
    let studies = run_studies(scale);

    let sections: Vec<String> = vec![
        render::table1(),
        render::table2(&studies),
        render::fig2(&studies[0]),
        render::fig4(&studies),
        render::table3(&studies),
        render::table4(&studies),
        render::fig5(&studies[0]),
        render::table5(&studies),
        render::table6(&studies),
        render::table7(&studies[0]),
        render::fig6(&studies),
        render::serving_demo(&studies[0]),
    ];

    let mut out = String::new();
    for section in sections {
        out.push_str(&section);
        out.push_str("\n================================================================\n\n");
    }
    // Single locked write: the output is the artifact.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    lock.write_all(out.as_bytes()).expect("stdout write");
}

//! Regenerates every table and figure of the paper in one run, sharing the
//! datasets, trained models and judged evaluation across experiments.
//!
//! ```bash
//! cargo run --release -p graphex-bench --bin repro_all            # full scale
//! GRAPHEX_SCALE=quick cargo run --release -p graphex-bench --bin repro_all
//! ```

use graphex_bench::experiments::{render, run_studies};
use graphex_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    eprintln!("[repro_all] scale: {scale:?}");
    let studies = run_studies(scale);

    let mut sections: Vec<String> = Vec::new();
    sections.push(render::table1());
    sections.push(render::table2(&studies));
    sections.push(render::fig2(&studies[0]));
    sections.push(render::fig4(&studies));
    sections.push(render::table3(&studies));
    sections.push(render::table4(&studies));
    sections.push(render::fig5(&studies[0]));
    sections.push(render::table5(&studies));
    sections.push(render::table6(&studies));
    sections.push(render::table7(&studies[0]));
    sections.push(render::fig6(&studies));
    sections.push(render::serving_demo(&studies[0]));

    let mut out = String::new();
    for section in sections {
        out.push_str(&section);
        out.push_str("\n================================================================\n\n");
    }
    // Single locked write: the output is the artifact.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    lock.write_all(out.as_bytes()).expect("stdout write");
}

//! `tenancybench` — tenant fleet cold-start and residency footprint:
//! boots fleets of 1, 4, and 16 tenants (each tenant a full registry
//! publishing the same marketsim-built snapshot), admits every tenant
//! cold, evicts the lot, and re-admits — once with the mmap backend and
//! once with heap loads. Records per-tenant cold-start / re-admission
//! latency and resident bytes per scale, the `BENCH_tenancy.json`
//! datapoint behind `make bench-tenancy`.
//!
//! ```text
//! cargo run --release -p graphex-bench --bin tenancybench -- \
//!     [--seed 11] [--output BENCH_tenancy.json] [--date YYYY-MM-DD]
//! ```

use graphex_core::serialize::LoadMode;
use graphex_core::{GraphExConfig, GraphExModel};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildPlan, MarketsimSource};
use graphex_serving::{FleetConfig, TenantFleet};
use std::time::{Duration, Instant};

const SCALES: [usize; 3] = [1, 4, 16];

struct Args {
    seed: u64,
    output: Option<String>,
    date: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { seed: 11, output: None, date: "unrecorded".into() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--seed" => args.seed = value.parse().map_err(|_| "bad --seed")?,
            "--output" => args.output = Some(value.clone()),
            "--date" => args.date = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("tenancybench: {e}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                    eprintln!("tenancybench: write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("recorded {path}");
            }
        }
        Err(e) => {
            eprintln!("tenancybench FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn bench_model(seed: u64) -> Result<(GraphExModel, u64), String> {
    let spec = CategorySpec {
        name: "TENANCYBENCH".into(),
        seed,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 400,
        num_sessions: 2_500,
        leaf_id_base: 7_000,
    };
    let corpus = ChurnCorpus::new(spec, 0.05);
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config).jobs(2);
    let output =
        build(&plan, vec![Box::new(MarketsimSource::new(&corpus))]).map_err(|e| e.to_string())?;
    let size = output.bytes.len() as u64;
    let model =
        graphex_core::serialize::from_bytes(&output.bytes).map_err(|e| e.to_string())?;
    Ok((model, size))
}

struct ScaleResult {
    tenants: usize,
    cold_mean: Duration,
    cold_max: Duration,
    readmit_mean: Duration,
    resident_bytes: u64,
}

/// One (mode, scale) arm: publish `n` tenants, admit all cold, evict
/// all, re-admit all. Admission answers a probe request each time so
/// the measured path includes real inference, not just the load.
fn run_arm(mode: LoadMode, n: usize, model: &GraphExModel) -> Result<ScaleResult, String> {
    let root = std::env::temp_dir()
        .join(format!("graphex-tenancybench-{mode}-{n}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let fleet = TenantFleet::open(
        &root,
        FleetConfig { resident_cap: n, load_mode: mode, ..FleetConfig::default() },
    )
    .map_err(|e| e.to_string())?;
    let names: Vec<String> = (0..n).map(|i| format!("tenant-{i}")).collect();
    for name in &names {
        fleet.publish_model(name, model, "tenancybench").map_err(|e| e.to_string())?;
        fleet.evict(name).map_err(|e| e.to_string())?;
    }
    debug_assert_eq!(fleet.resident_count(), 0);

    let admit_all = |fleet: &TenantFleet| -> Result<Vec<Duration>, String> {
        names
            .iter()
            .map(|name| {
                let started = Instant::now();
                fleet.admit(name).map_err(|e| e.to_string())?;
                Ok(started.elapsed())
            })
            .collect()
    };
    let cold = admit_all(&fleet)?;
    let resident_bytes = fleet.resident_bytes();
    for name in &names {
        fleet.evict(name).map_err(|e| e.to_string())?;
    }
    // Re-admission: under mmap the snapshot pages are still in the page
    // cache, so this is the evict → re-admit cost the LRU cap implies.
    let readmit = admit_all(&fleet)?;

    std::fs::remove_dir_all(&root).ok();
    let mean = |xs: &[Duration]| xs.iter().sum::<Duration>() / xs.len() as u32;
    Ok(ScaleResult {
        tenants: n,
        cold_mean: mean(&cold),
        cold_max: cold.iter().max().copied().unwrap_or_default(),
        readmit_mean: mean(&readmit),
        resident_bytes,
    })
}

fn run(args: &Args) -> Result<String, String> {
    let (model, snapshot_bytes) = bench_model(args.seed)?;
    let mut arms = String::new();
    for (m, mode) in [LoadMode::Mmap, LoadMode::Heap].into_iter().enumerate() {
        if m > 0 {
            arms.push_str(",\n");
        }
        let mut scales = String::new();
        for (i, &n) in SCALES.iter().enumerate() {
            let result = run_arm(mode, n, &model)?;
            eprintln!(
                "{mode} x{n}: cold {:.3?} mean / {:.3?} max, re-admit {:.3?} mean, {} resident bytes",
                result.cold_mean, result.cold_max, result.readmit_mean, result.resident_bytes
            );
            if i > 0 {
                scales.push_str(",\n");
            }
            scales.push_str(&format!(
                r#"      {{
        "tenants": {},
        "cold_start_mean": "{:.3?}",
        "cold_start_max": "{:.3?}",
        "readmit_mean": "{:.3?}",
        "resident_bytes": {}
      }}"#,
                result.tenants,
                result.cold_mean,
                result.cold_max,
                result.readmit_mean,
                result.resident_bytes,
            ));
        }
        arms.push_str(&format!("    \"{mode}\": [\n{scales}\n    ]"));
    }

    Ok(format!(
        r#"{{
  "bench": "tenancy",
  "description": "tenant fleet cold-start latency and resident footprint at 1/4/16 tenants, mmap vs heap snapshot backend. Each admission runs the full registry pipeline (load, manifest checksum, structural parse, warm-up); re-admission repeats it after evicting every tenant, so the mmap arm measures page-cache-warm reload — the cost the LRU residency cap imposes on an evicted tenant's next request.",
  "date": "{}",
  "machine": {{
    "os": "{}",
    "cpus_available": {},
    "note": "single-process, tmpfs-or-disk temp dir; resident_bytes under mmap counts file-backed pages shared with the page cache, under heap it is private memory."
  }},
  "config": {{
    "dataset": "marketsim TENANCYBENCH (24 leaves, seed {})",
    "snapshot_bytes_per_tenant": {},
    "scales": [1, 4, 16],
    "profile": "release"
  }},
  "results": {{
{}
  }}
}}"#,
        args.date,
        std::env::consts::OS,
        std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        args.seed,
        snapshot_bytes,
        arms,
    ))
}

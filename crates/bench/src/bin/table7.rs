//! Regenerates Table VII (curation search-count threshold ablation) on the
//! largest category.

use graphex_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    let spec = scale.specs().remove(0);
    let test_n = scale.test_set_sizes()[0];
    let study = experiments::run_study(spec, test_n);
    println!("{}", experiments::render::table7(&study));
}

//! Sec. IV-H serving-architecture demo: batch throughput + NRT consistency.

use graphex_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    let spec = scale.specs().remove(0);
    let test_n = scale.test_set_sizes()[0];
    let study = experiments::run_study(spec, test_n);
    println!("{}", experiments::render::serving_demo(&study));
}

//! `loadgen` — replay marketsim serving traffic against a release-built
//! `graphex-server` over loopback, with one live model hot-swap mid-run.
//!
//! This is the acceptance harness for the network frontend: C keep-alive
//! client connections fire `POST /v1/infer` envelopes built from the
//! simulated marketplace's items, a second snapshot is published while
//! traffic is in flight, and the run **fails** (exit 1) on any non-200
//! response or if no hot swap was observed. On success it prints (and
//! with `--output`, writes) the `BENCH_http_frontend.json` datapoint:
//! latency percentiles, throughput, and the server-side counters.
//!
//! ```text
//! cargo run --release -p graphex-bench --bin loadgen -- \
//!     [--requests 4000] [--connections 4] [--scale cat1|cat2|cat3|tiny] \
//!     [--output BENCH_http_frontend.json] [--date YYYY-MM-DD]
//! ```

use graphex_bench::experiments::{build_graphex, default_threshold};
use graphex_marketsim::{CategoryDataset, CategorySpec};
use graphex_serving::{KvStore, ModelRegistry, ServingApi};
use graphex_server::{HttpClient, Json, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: u64,
    connections: usize,
    scale: String,
    output: Option<String>,
    date: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 4000,
        connections: 4,
        scale: "cat1".into(),
        output: None,
        date: "unrecorded".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--requests" => args.requests = value.parse().map_err(|_| "bad --requests")?,
            "--connections" => args.connections = value.parse().map_err(|_| "bad --connections")?,
            "--scale" => args.scale = value.clone(),
            "--output" => args.output = Some(value.clone()),
            "--date" => args.date = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    args.connections = args.connections.clamp(1, 64);
    args.requests = args.requests.max(args.connections as u64);
    Ok(args)
}

fn spec_for(scale: &str) -> Result<CategorySpec, String> {
    match scale {
        "cat1" => Ok(CategorySpec::cat1()),
        "cat2" => Ok(CategorySpec::cat2()),
        "cat3" => Ok(CategorySpec::cat3()),
        "tiny" => Ok(CategorySpec::tiny(7)),
        other => Err(format!("unknown scale {other:?} (cat1|cat2|cat3|tiny)")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            if let Some(path) = &args.output {
                if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                    eprintln!("loadgen: write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("recorded {path}");
            }
        }
        Err(e) => {
            eprintln!("loadgen FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn run(args: &Args) -> Result<String, String> {
    eprintln!("generating {} dataset + model ...", args.scale);
    let ds = CategoryDataset::generate(spec_for(&args.scale)?);
    let model = build_graphex(&ds, default_threshold(&ds));

    // Serve through the full registry → watch → api → HTTP stack, so a
    // publish mid-run is a real hot swap under live traffic.
    let root = std::env::temp_dir().join(format!("graphex-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = Arc::new(ModelRegistry::open(&root).map_err(|e| e.to_string())?);
    registry.publish(&model, "loadgen v1").map_err(|e| e.to_string())?;
    let api = Arc::new(ServingApi::with_watch(
        registry.watch().map_err(|e| e.to_string())?,
        Arc::new(KvStore::new()),
        10,
    ));
    let server = graphex_server::start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: args.connections,
            queue_depth: 256,
            max_body_bytes: 1 << 20,
            deadline: Some(Duration::from_secs(10)),
            keep_alive_timeout: Duration::from_secs(10),
            trace: Default::default(),
            history: Default::default(),
        },
        Arc::clone(&api),
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    eprintln!(
        "replaying {} requests over {} connections against http://{addr}",
        args.requests, args.connections
    );

    // Request pool: item titles + leaves, ids overlapping across
    // connections so the store-hit path is exercised alongside
    // read-through (the production mix).
    let pool: Vec<(String, u32, u64)> = ds
        .test_items(512, 0xBEEF)
        .iter()
        .enumerate()
        .map(|(i, item)| (item.title.clone(), item.leaf.0, i as u64))
        .collect();
    if pool.is_empty() {
        return Err("dataset produced no test items".into());
    }

    let completed = Arc::new(AtomicU64::new(0));
    let finished_threads = Arc::new(AtomicU64::new(0));
    let per_connection = args.requests / args.connections as u64;
    let started = Instant::now();

    let clients: Vec<_> = (0..args.connections)
        .map(|c| {
            let pool = pool.clone();
            let completed = Arc::clone(&completed);
            let finished_threads = Arc::clone(&finished_threads);
            std::thread::spawn(move || -> Result<Vec<Duration>, String> {
                let run = || -> Result<Vec<Duration>, String> {
                    let mut client =
                        HttpClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let mut latencies = Vec::with_capacity(per_connection as usize);
                    for r in 0..per_connection {
                        let (title, leaf, id) =
                            &pool[((c as u64 + r * 7) % pool.len() as u64) as usize];
                        let body = Json::obj(vec![
                            ("title", Json::str(title.clone())),
                            ("leaf", Json::uint(u64::from(*leaf))),
                            ("k", Json::uint(10)),
                            ("id", Json::uint(*id)),
                        ])
                        .render();
                        let sent = Instant::now();
                        let response = client
                            .post_json("/v1/infer", &body)
                            .map_err(|e| format!("connection {c} request {r}: {e}"))?;
                        latencies.push(sent.elapsed());
                        if response.status != 200 {
                            return Err(format!(
                                "connection {c} request {r}: HTTP {} — {}",
                                response.status,
                                response.text()
                            ));
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(latencies)
                };
                // Count the thread as finished on *every* exit path, so
                // the swap-trigger wait below can never spin forever when
                // a connection errors out before the halfway mark.
                let result = run();
                finished_threads.fetch_add(1, Ordering::Relaxed);
                result
            })
        })
        .collect();

    // Hot swap once half the traffic has landed — or bail out of the
    // wait if the clients are done (e.g. failed early); the join below
    // then reports their error instead of this loop hanging.
    let swap_at = args.requests / 2;
    while completed.load(Ordering::Relaxed) < swap_at
        && finished_threads.load(Ordering::Relaxed) < args.connections as u64
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let swap_started = Instant::now();
    registry.publish(&model, "loadgen v2 (mid-run hot swap)").map_err(|e| e.to_string())?;
    let swap_elapsed = swap_started.elapsed();
    eprintln!(
        "hot-swapped to snapshot 2 after {} requests ({:.1?} publish+admission)",
        completed.load(Ordering::Relaxed),
        swap_elapsed
    );

    let mut latencies: Vec<Duration> = Vec::with_capacity(args.requests as usize);
    for client in clients {
        latencies.extend(client.join().map_err(|_| "client thread panicked".to_string())??);
    }
    let elapsed = started.elapsed();
    let stats = api.stats();
    let errors_5xx = server.metrics().server_errors();
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();

    // The acceptance gate: every request succeeded and a swap happened
    // under load (client errors already failed fast above).
    if errors_5xx > 0 {
        return Err(format!("{errors_5xx} responses were 5xx"));
    }
    if stats.model_swaps < 1 {
        return Err("no hot swap observed".into());
    }

    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let total = latencies.len() as u64;
    let throughput = total as f64 / elapsed.as_secs_f64();
    let report = format!(
        r#"{{
  "bench": "http_frontend",
  "description": "loadgen replay of marketsim serving traffic against a release-built graphex-server over loopback: keep-alive connections, POST /v1/infer envelopes, one live registry hot-swap at the halfway mark. Gate: zero non-200 responses.",
  "date": "{date}",
  "machine": {{
    "os": "{os}",
    "cpus_available": {cpus},
    "note": "loopback-only; on a 1-CPU container client and server threads share the core, so latency percentiles are upper bounds and thread scaling must be re-measured on real hardware."
  }},
  "config": {{
    "dataset": "{scale}",
    "requests": {total},
    "connections": {connections},
    "workers": {connections},
    "queue_depth": 256,
    "k": 10,
    "profile": "{profile}"
  }},
  "results": {{
    "elapsed": "{elapsed:.3?}",
    "throughput_per_s": {throughput:.0},
    "latency_p50": "{p50:.3?}",
    "latency_p95": "{p95:.3?}",
    "latency_p99": "{p99:.3?}",
    "latency_max": "{max:.3?}",
    "hot_swaps_under_load": {swaps},
    "swap_publish_elapsed": "{swap_elapsed:.3?}",
    "responses_5xx": 0,
    "store_hits": {store_hits},
    "read_throughs": {read_throughs},
    "coalesced": {coalesced}
  }}
}}"#,
        date = args.date,
        os = std::env::consts::OS,
        cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        scale = args.scale,
        connections = args.connections,
        profile = if cfg!(debug_assertions) { "debug" } else { "release" },
        p50 = pct(0.50),
        p95 = pct(0.95),
        p99 = pct(0.99),
        max = latencies[latencies.len() - 1],
        swaps = stats.model_swaps,
        store_hits = stats.store_hits,
        read_throughs = stats.read_throughs,
        coalesced = stats.coalesced,
    );
    Ok(report)
}

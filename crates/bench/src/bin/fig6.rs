//! Regenerates Figure 6a (inference latency), Figure 6b (model sizes) and
//! the Sec. IV-G training-time comparison.

use graphex_bench::{experiments, Scale};

fn main() {
    let studies = experiments::run_studies(Scale::from_env());
    println!("{}", experiments::render::fig6(&studies));
}

//! Regenerates Table IV (exclusive relevant-head diversity vs GraphEx) and
//! the Figure 5 overlap counts it is derived from.

use graphex_bench::{experiments, Scale};

fn main() {
    let studies = experiments::run_studies(Scale::from_env());
    println!("{}", experiments::render::table4(&studies));
    for study in &studies {
        println!("{}", experiments::render::fig5(study));
    }
}

//! Regenerates Figure 2 (click-data distribution) on the largest category.
//! Only the dataset is needed, so this binary skips model training.

use graphex_bench::Scale;
use graphex_marketsim::CategoryDataset;

fn main() {
    let spec = Scale::from_env().specs().remove(0);
    let name = spec.name.clone();
    let ds = CategoryDataset::generate(spec);
    let stats = ds.train_log.click_stats();
    println!("Figure 2 — click-data distribution ({name})\n");
    println!(
        "items total: {}   items with clicks: {} ({:.1}% coverage; paper: ~4%)",
        stats.num_items,
        stats.items_with_clicks,
        stats.coverage * 100.0
    );
    println!(
        "clicked items with exactly 1 query: {:.1}% (paper: ~90%)\n",
        stats.single_query_share * 100.0
    );
    println!("{:>18}  {:>8}", "# queries/item", "# items");
    let hist = &stats.queries_per_item_histogram;
    let mut six_plus = 0u32;
    for (k, &count) in hist.iter().enumerate().skip(1) {
        if k <= 5 {
            println!("{k:>18}  {count:>8}");
        } else {
            six_plus += count;
        }
    }
    println!("{:>18}  {six_plus:>8}", "6+");
}

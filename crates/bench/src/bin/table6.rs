//! Regenerates Table VI (alignment-function ablation: WMR vs JAC vs LTA).

use graphex_bench::{experiments, Scale};

fn main() {
    let studies = experiments::run_studies(Scale::from_env());
    println!("{}", experiments::render::table6(&studies));
}

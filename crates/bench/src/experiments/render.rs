//! Renderers: one function per paper table/figure, each producing the same
//! rows/series the paper reports, from a set of [`Study`]s.

use super::{percentile_threshold, Study, MODEL_ORDER};
use crate::tables::{fmt_bytes, fmt_pct, fmt_ratio, render};
use graphex_core::Scratch;
use graphex_eval::judge::RelevanceJudge;
use graphex_eval::metrics::{exclusive_relevant_head, fig4_rows, precision_recall_vs, venn_counts};
use graphex_eval::framework_capabilities;
use graphex_serving::{BatchPipeline, ItemEvent, KvStore, NrtConfig, NrtService};
use std::sync::Arc;

/// Table I: capability matrix of the framework families.
pub fn table1() -> String {
    let rows: Vec<Vec<String>> = framework_capabilities()
        .into_iter()
        .map(|r| {
            vec![
                r.framework.to_string(),
                r.feasible_latency.symbol().into(),
                r.click_debiasing.symbol().into(),
                r.survives_re_dedup.symbol().into(),
                r.full_targeting.symbol().into(),
                r.head_focus.symbol().into(),
            ]
        })
        .collect();
    format!(
        "Table I — framework capabilities (yes / - / ?)\n\n{}",
        render(
            &["Framework", "Latency OK", "Click debias", "Survives RE dedup", "100% targeting", "Head focus"],
            &rows,
        )
    )
}

/// Table II: dataset details per category.
pub fn table2(studies: &[Study]) -> String {
    let rows: Vec<Vec<String>> = studies
        .iter()
        .map(|s| {
            let searched = s.ds.keyphrase_records().len();
            vec![
                s.name.clone(),
                s.ds.marketplace.items.len().to_string(),
                searched.to_string(),
                s.graphex_model.num_keyphrases().to_string(),
                s.graphex_threshold.to_string(),
            ]
        })
        .collect();
    format!(
        "Table II — category datasets (synthetic; paper scales ÷1000)\n\n{}",
        render(&["MetaCat", "# Items", "# Keyphrases", "# GraphEx Keyphrases", "curation threshold"], &rows)
    )
}

/// Figure 2: distribution of click data — items vs number of associated
/// queries, on the largest category.
pub fn fig2(study: &Study) -> String {
    let stats = study.ds.train_log.click_stats();
    let hist = &stats.queries_per_item_histogram;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut six_plus = 0u32;
    for (k, &count) in hist.iter().enumerate().skip(1) {
        if k <= 5 {
            rows.push(vec![k.to_string(), count.to_string()]);
        } else {
            six_plus += count;
        }
    }
    rows.push(vec!["6+".into(), six_plus.to_string()]);
    format!(
        "Figure 2 — click-data distribution ({})\n\n\
         items total: {}   items with clicks: {} ({:.1}% coverage; paper: ~4%)\n\
         clicked items with exactly 1 query: {} (paper: ~90%)\n\n{}",
        study.name,
        stats.num_items,
        stats.items_with_clicks,
        stats.coverage * 100.0,
        fmt_pct(stats.single_query_share),
        render(&["# queries per item", "# items"], &rows)
    )
}

/// Figure 4: average relevant head/tail and irrelevant keyphrases per item.
pub fn fig4(studies: &[Study]) -> String {
    let mut out = String::from("Figure 4 — avg keyphrases per item (irrelevant / relevant-tail / relevant-head)\n");
    for study in studies {
        let rows: Vec<Vec<String>> = fig4_rows(&study.evaluation)
            .into_iter()
            .map(|r| {
                vec![
                    r.model,
                    format!("{:.2}", r.avg_irrelevant),
                    format!("{:.2}", r.avg_relevant_tail),
                    format!("{:.2}", r.avg_relevant_head),
                    format!("{:.2}", r.avg_total),
                ]
            })
            .collect();
        out.push_str(&format!(
            "\n[{}]\n{}",
            study.name,
            render(&["Model", "irrelevant", "rel tail", "rel head", "total"], &rows)
        ));
    }
    out
}

/// Table III: RP / HP / RRR / RHR (RRR/RHR w.r.t. GraphEx).
pub fn table3(studies: &[Study]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for name in MODEL_ORDER {
        let mut row = vec![name.to_string()];
        for study in studies {
            let m = study.evaluation.model(name).expect("model evaluated");
            row.push(fmt_pct(m.rp()));
        }
        for study in studies {
            let m = study.evaluation.model(name).expect("model evaluated");
            row.push(fmt_pct(m.hp()));
        }
        for study in studies {
            row.push(fmt_ratio(study.evaluation.rrr(name, "GraphEx")));
        }
        for study in studies {
            row.push(fmt_ratio(study.evaluation.rhr(name, "GraphEx")));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["Models".into()];
    for metric in ["RP", "HP", "RRR", "RHR"] {
        for study in studies {
            header.push(format!("{metric} {}", study.name));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    format!("Table III — RP, HP, RRR, RHR (RRR/RHR relative to GraphEx)\n\n{}", render(&header_refs, &rows))
}

/// Table IV: GraphEx's exclusive relevant-head diversity relative to every
/// other model (values > 1 mean GraphEx recommends more exclusive relevant
/// head keyphrases).
pub fn table4(studies: &[Study]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for name in MODEL_ORDER.iter().filter(|&&n| n != "GraphEx") {
        let mut row = vec![name.to_string()];
        for study in studies {
            let ex = exclusive_relevant_head(&study.evaluation);
            let get = |model: &str| ex.iter().find(|(n, _)| n == model).map(|&(_, v)| v).unwrap_or(0.0);
            let graphex = get("GraphEx");
            let other = get(name);
            // Show the ratio plus the raw per-item averages so degenerate
            // denominators stay interpretable.
            row.push(if other == 0.0 {
                format!("all ({graphex:.3} vs 0)")
            } else {
                format!("{:.2}x ({graphex:.3} vs {other:.3})", graphex / other)
            });
        }
        rows.push(row);
    }
    let mut header = vec!["Models".to_string()];
    header.extend(studies.iter().map(|s| s.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    format!(
        "Table IV — GraphEx exclusive relevant-head keyphrases relative to each model\n\
         (per-item averages in parentheses: GraphEx vs model)\n\n{}",
        render(&header_refs, &rows)
    )
}

/// Figure 5: per-model unique vs shared prediction counts (the Venn regions).
pub fn fig5(study: &Study) -> String {
    let rows: Vec<Vec<String>> = venn_counts(&study.evaluation)
        .into_iter()
        .map(|(name, unique, shared)| {
            vec![name, unique.to_string(), shared.to_string(), (unique + shared).to_string()]
        })
        .collect();
    format!(
        "Figure 5 — recall-source overlap ({}): unique vs shared predictions\n\n{}",
        study.name,
        render(&["Model", "unique", "shared", "total"], &rows)
    )
}

/// Table V: precision/recall relative to GraphEx, RE as ground truth.
pub fn table5(studies: &[Study]) -> String {
    let mut out = String::from(
        "Table V — relative precision/recall vs GraphEx (RE recommendations as ground truth)\n",
    );
    for study in studies {
        let graphex = precision_recall_vs(&study.evaluation, "GraphEx", "RE");
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut precision_row = vec!["Precision".to_string()];
        let mut recall_row = vec!["Recall".to_string()];
        let models = ["fastText", "Graphite", "SL-emb", "SL-query"];
        for m in models {
            let pr = precision_recall_vs(&study.evaluation, m, "RE");
            precision_row.push(if graphex.precision > 0.0 {
                fmt_ratio(pr.precision / graphex.precision)
            } else {
                "n/a".into()
            });
            recall_row.push(if graphex.recall > 0.0 {
                fmt_ratio(pr.recall / graphex.recall)
            } else {
                "n/a".into()
            });
        }
        rows.push(precision_row);
        rows.push(recall_row);
        out.push_str(&format!(
            "\n[{}] (GraphEx absolute: P={:.4} R={:.4})\n{}",
            study.name,
            graphex.precision,
            graphex.recall,
            render(&["Metrics", "fastText", "Graphite", "SL-emb", "SL-query"], &rows)
        ));
    }
    out
}

/// Table VI: alignment-function ablation — RP of WMR / JAC / LTA.
///
/// Ranked with a *binding* budget (k = 10): the alignment function only
/// changes the output set through the truncation, so a budget larger than
/// the candidate pool would show identical RPs (at eBay scale the candidate
/// pool dwarfs the 40-cap; at simulation scale k = 10 restores the same
/// regime).
pub fn table6(studies: &[Study]) -> String {
    use graphex_core::Alignment;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for study in studies {
        let judge = RelevanceJudge::new(&study.ds);
        let mut row = vec![study.name.clone()];
        for alignment in [Alignment::Wmr, Alignment::Jac, Alignment::Lta] {
            let mut scratch = Scratch::new();
            let mut relevant = 0usize;
            let mut total = 0usize;
            for &id in &study.test_item_ids {
                let item = &study.ds.marketplace.items[id as usize];
                let request = graphex_core::InferRequest::new(&item.title, item.leaf)
                    .k(10)
                    .alignment(alignment)
                    .resolve_texts(true);
                let response = study.graphex_model.infer_request(&request, &mut scratch);
                for text in &response.texts {
                    total += 1;
                    if judge.judge(item, text) {
                        relevant += 1;
                    }
                }
            }
            row.push(if total == 0 { "n/a".into() } else { fmt_pct(relevant as f64 / total as f64) });
        }
        rows.push(row);
    }
    format!(
        "Table VI — relevant proportion (RP) by alignment function in GraphEx\n\n{}",
        render(&["Category", "WMR", "JAC", "LTA"], &rows)
    )
}

/// Table VII: data-curation ablation — two search-count thresholds (the
/// paper's 90 vs 180), exclusive relevant / relevant-head percentages.
pub fn table7(study: &Study) -> String {
    let low = percentile_threshold(&study.ds, 0.45);
    let high = (low * 2).max(low + 1); // the paper's pair differs by 2×
    let model_low = super::build_graphex(&study.ds, low);
    let model_high = super::build_graphex(&study.ds, high);
    let judge = RelevanceJudge::new(&study.ds);
    let head = graphex_eval::HeadThreshold::from_dataset(&study.ds);

    let mut scratch = Scratch::new();
    let mut identical = 0usize;
    let mut same_relevant = 0usize;
    let mut same_relevant_head = 0usize;
    // exclusive prediction tallies: (total, relevant, relevant head)
    let mut ex_low = (0usize, 0usize, 0usize);
    let mut ex_high = (0usize, 0usize, 0usize);

    let items = &study.test_item_ids;
    for &id in items {
        let item = &study.ds.marketplace.items[id as usize];
        let texts = |model: &graphex_core::GraphExModel, scratch: &mut Scratch| -> Vec<String> {
            let request =
                graphex_core::InferRequest::new(&item.title, item.leaf).k(20).resolve_texts(true);
            model.infer_request(&request, scratch).texts
        };
        let a = texts(&model_low, &mut scratch);
        let b = texts(&model_high, &mut scratch);
        let sa: std::collections::BTreeSet<&String> = a.iter().collect();
        let sb: std::collections::BTreeSet<&String> = b.iter().collect();
        if sa == sb {
            identical += 1;
            continue;
        }
        let rel = |texts: &[String]| -> std::collections::BTreeSet<String> {
            texts.iter().filter(|t| judge.judge(item, t)).cloned().collect()
        };
        let (ra, rb) = (rel(&a), rel(&b));
        if ra == rb {
            same_relevant += 1;
        }
        let heads = |set: &std::collections::BTreeSet<String>| -> std::collections::BTreeSet<String> {
            set.iter().filter(|t| head.is_head(study.ds.eval_search_count(t))).cloned().collect()
        };
        if heads(&ra) == heads(&rb) {
            same_relevant_head += 1;
        }
        for t in sa.difference(&sb) {
            ex_low.0 += 1;
            if judge.judge(item, t) {
                ex_low.1 += 1;
                if head.is_head(study.ds.eval_search_count(t)) {
                    ex_low.2 += 1;
                }
            }
        }
        for t in sb.difference(&sa) {
            ex_high.0 += 1;
            if judge.judge(item, t) {
                ex_high.1 += 1;
                if head.is_head(study.ds.eval_search_count(t)) {
                    ex_high.2 += 1;
                }
            }
        }
    }

    let pct = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    let rows = vec![
        vec![
            low.to_string(),
            fmt_pct(pct(ex_low.1, ex_low.0.max(1))),
            fmt_pct(pct(ex_low.2, ex_low.0.max(1))),
        ],
        vec![
            high.to_string(),
            fmt_pct(pct(ex_high.1, ex_high.0.max(1))),
            fmt_pct(pct(ex_high.2, ex_high.0.max(1))),
        ],
    ];
    format!(
        "Table VII — curation threshold ablation ({}; thresholds {} vs {})\n\n\
         identical recommendation sets: {}\n\
         same relevant sets (of differing): {}\n\
         same relevant-head sets (of differing): {}\n\n{}",
        study.name,
        low,
        high,
        fmt_pct(pct(identical, items.len())),
        fmt_pct(pct(same_relevant, items.len().saturating_sub(identical))),
        fmt_pct(pct(same_relevant_head, items.len().saturating_sub(identical))),
        render(&["Search Count Threshold", "% Relevant (exclusive)", "% Relevant Head (exclusive)"], &rows)
    )
}

/// Figure 6 (a+b) and the Sec. IV-G training-time comparison.
pub fn fig6(studies: &[Study]) -> String {
    let mut latency_rows: Vec<Vec<String>> = Vec::new();
    for name in ["fastText", "Graphite", "GraphEx"] {
        let mut row = vec![name.to_string()];
        for study in studies {
            let lat = study.latencies.iter().find(|(n, _)| n == name).map(|(_, d)| *d).unwrap_or_default();
            row.push(format!("{:.3} ms", lat.as_secs_f64() * 1e3));
        }
        latency_rows.push(row);
    }
    let mut size_rows: Vec<Vec<String>> = Vec::new();
    for name in ["fastText", "Graphite", "GraphEx"] {
        let mut row = vec![name.to_string()];
        for study in studies {
            let sz = study.sizes.iter().find(|(n, _)| n == name).map(|&(_, s)| s).unwrap_or(0);
            row.push(fmt_bytes(sz));
        }
        size_rows.push(row);
    }
    let mut train_rows: Vec<Vec<String>> = Vec::new();
    for name in ["fastText", "Graphite", "GraphEx"] {
        let mut row = vec![name.to_string()];
        for study in studies {
            let t = study
                .construction_times
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| *d)
                .unwrap_or_default();
            row.push(format!("{:.2} s", t.as_secs_f64()));
        }
        train_rows.push(row);
    }
    let mut header = vec!["Model".to_string()];
    header.extend(studies.iter().map(|s| s.name.clone()));
    let href: Vec<&str> = header.iter().map(String::as_str).collect();
    format!(
        "Figure 6a — amortized per-record inference latency\n\n{}\n\
         Figure 6b — model sizes\n\n{}\n\
         Sec. IV-G — construction/training time\n\n{}",
        render(&href, &latency_rows),
        render(&href, &size_rows),
        render(&href, &train_rows)
    )
}

/// Sec. IV-H: batch + NRT serving demo with a consistency check.
pub fn serving_demo(study: &Study) -> String {
    let model = Arc::new(study.graphex_model.clone());
    let batch_store = KvStore::new();
    let pipeline = BatchPipeline::new(&model, &batch_store, 20, 0);

    // Full batch over (up to) 50k items.
    let items: Vec<graphex_serving::batch::BatchItem> = study
        .ds
        .marketplace
        .items
        .iter()
        .take(50_000)
        .map(|i| graphex_serving::batch::BatchItem { id: i.id, title: i.title.clone(), leaf: i.leaf })
        .collect();
    let report = pipeline.run_full(&items);
    let throughput = if report.elapsed_ms == 0 {
        f64::INFINITY
    } else {
        report.items_processed as f64 / (report.elapsed_ms as f64 / 1000.0)
    };

    // NRT over a sample of "revised" items; then check both paths agree.
    let nrt_store = Arc::new(KvStore::new());
    let service = NrtService::start(model.clone(), nrt_store.clone(), NrtConfig::default());
    let sample: Vec<&graphex_serving::batch::BatchItem> = items.iter().take(500).collect();
    for item in &sample {
        service.submit(ItemEvent::Revised { id: item.id, title: item.title.clone(), leaf: item.leaf });
    }
    let stats = service.shutdown();
    let mut consistent = 0usize;
    let mut compared = 0usize;
    for item in &sample {
        match (batch_store.get(u64::from(item.id)), nrt_store.get(u64::from(item.id))) {
            (Some(a), Some(b)) => {
                compared += 1;
                if a.keyphrases == b.keyphrases {
                    consistent += 1;
                }
            }
            (None, None) => {}
            _ => compared += 1,
        }
    }

    format!(
        "Sec. IV-H — serving architecture demo ({})\n\n\
         batch: {} items in {} ms → {:.0} items/s ({} with recommendations, {} keyphrases)\n\
         extrapolation to the paper's 200M items at this rate: {:.1} h (paper: 1.5 h on 70 cores)\n\
         NRT: {} events received, {} scored, {} deduplicated by the window\n\
         batch/NRT consistency: {}/{} items identical\n",
        study.name,
        report.items_processed,
        report.elapsed_ms,
        throughput,
        report.items_with_recommendations,
        report.total_keyphrases,
        200_000_000.0 / throughput.max(1.0) / 3600.0,
        stats.events_received,
        stats.items_scored,
        stats.deduplicated,
        consistent,
        compared,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::CategorySpec;

    fn quick_studies() -> Vec<Study> {
        let mut spec = CategorySpec::tiny(0x71);
        spec.name = "QCAT".into();
        vec![super::super::run_study(spec, 25)]
    }

    #[test]
    fn all_renderers_produce_output() {
        let studies = quick_studies();
        assert!(table1().contains("GraphEx"));
        assert!(table2(&studies).contains("QCAT"));
        assert!(fig2(&studies[0]).contains("queries per item"));
        assert!(fig4(&studies).contains("rel head"));
        assert!(table3(&studies).contains("RRR"));
        assert!(table4(&studies).contains("x"));
        assert!(fig5(&studies[0]).contains("unique"));
        assert!(table5(&studies).contains("Precision"));
        assert!(table6(&studies).contains("LTA"));
        assert!(table7(&studies[0]).contains("Threshold"));
        assert!(fig6(&studies).contains("ms"));
        let demo = serving_demo(&studies[0]);
        assert!(demo.contains("batch/NRT consistency"));
        // Consistency must be perfect: same model, same items.
        let line = demo.lines().find(|l| l.contains("consistency")).unwrap();
        let nums: Vec<usize> = line
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(nums[0], nums[1], "batch and NRT disagree: {line}");
    }

    #[test]
    fn graphex_rrr_is_one_against_itself() {
        let studies = quick_studies();
        let t3 = table3(&studies);
        let graphex_line = t3.lines().find(|l| l.starts_with("GraphEx")).unwrap();
        assert!(graphex_line.contains("1.00"), "{graphex_line}");
    }
}

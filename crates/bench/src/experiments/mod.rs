//! Study orchestration: generate a category, train all six models, run the
//! judged evaluation once, measure execution characteristics — then let the
//! per-table renderers (`render` module) format the paper's outputs from it.

pub mod render;

use graphex_baselines::{
    FastTextLike, GraphExRecommender, Graphite, ItemRef, Recommender, RulesEngine, SlEmb, SlQuery,
};
use graphex_baselines::fasttext::FastTextConfig;
use graphex_core::{GraphExBuilder, GraphExConfig, GraphExModel};
use graphex_eval::{Evaluation, RelevanceJudge};
use graphex_marketsim::{CategoryDataset, CategorySpec};
use std::time::{Duration, Instant};

/// Model order used everywhere (matches the paper's table rows).
pub const MODEL_ORDER: [&str; 6] = ["fastText", "SL-emb", "SL-query", "Graphite", "RE", "GraphEx"];

/// One fully evaluated category.
pub struct Study {
    pub name: String,
    pub ds: CategoryDataset,
    /// The curation threshold used for GraphEx on this dataset.
    pub graphex_threshold: u32,
    /// A clone of the GraphEx model for ablation experiments.
    pub graphex_model: GraphExModel,
    pub models: Vec<Box<dyn Recommender>>,
    /// Judged evaluation over the test set (k = 40, paper Sec. IV-B).
    pub evaluation: Evaluation,
    /// Test item ids (indices into `ds.marketplace.items`).
    pub test_item_ids: Vec<u32>,
    /// (model, construction/training wall time).
    pub construction_times: Vec<(String, Duration)>,
    /// (model, amortized per-record inference latency) for the latency
    /// models of Fig. 6a.
    pub latencies: Vec<(String, Duration)>,
    /// (model, size in bytes) for Fig. 6b.
    pub sizes: Vec<(String, usize)>,
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// GraphEx curation threshold for a simulated dataset.
///
/// The paper's production rule is "searched at least once per day" (180
/// over 6 months, Sec. IV-F2); our simulated windows are far shorter, so we
/// translate the rule scale-invariantly: the 70th percentile of positive
/// search counts (keeping roughly the same head-heavy fraction the paper's
/// thresholds keep), floored at 2 to drop single-search noise queries.
pub fn default_threshold(ds: &CategoryDataset) -> u32 {
    percentile_threshold(ds, 0.70)
}

/// Threshold at an arbitrary percentile of positive search counts.
pub fn percentile_threshold(ds: &CategoryDataset, pct: f64) -> u32 {
    let mut counts: Vec<u32> =
        ds.train_log.search_counts.iter().copied().filter(|&c| c > 0).collect();
    if counts.is_empty() {
        return 2;
    }
    counts.sort_unstable();
    let idx = ((counts.len() as f64 * pct) as usize).min(counts.len() - 1);
    counts[idx].max(2)
}

/// Builds the GraphEx model for a dataset with an explicit threshold.
pub fn build_graphex(ds: &CategoryDataset, min_search_count: u32) -> GraphExModel {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = min_search_count;
    GraphExBuilder::new(config)
        .add_records(ds.keyphrase_records())
        .build()
        .expect("dataset produced zero curated keyphrases")
}

/// Runs the full study for one category spec.
pub fn run_study(spec: CategorySpec, test_n: usize) -> Study {
    let name = spec.name.clone();
    let ds = CategoryDataset::generate(spec);

    // --- train all six models, timing the Fig. 6 trio --------------------
    let threshold = default_threshold(&ds);
    let (graphex_model, graphex_time) = time(|| build_graphex(&ds, threshold));
    let (graphite, graphite_time) = time(|| Graphite::train(&ds, 512));
    let (fasttext, fasttext_time) = time(|| FastTextLike::train(&ds, FastTextConfig::default()));
    let rules_engine = RulesEngine::train(&ds, 1);
    let sl_query = SlQuery::train(&ds, 0.2);
    let sl_emb = SlEmb::train(&ds, 25, 0.05);

    let construction_times = vec![
        ("fastText".to_string(), fasttext_time),
        ("Graphite".to_string(), graphite_time),
        ("GraphEx".to_string(), graphex_time),
    ];

    let models: Vec<Box<dyn Recommender>> = vec![
        Box::new(fasttext),
        Box::new(sl_emb),
        Box::new(sl_query),
        Box::new(graphite),
        Box::new(rules_engine),
        Box::new(GraphExRecommender::new(graphex_model.clone())),
    ];

    // --- evaluation (judged, k = 40) --------------------------------------
    let judge = RelevanceJudge::new(&ds);
    let test_items = ds.test_items(test_n, 0xE57);
    let refs: Vec<&dyn Recommender> = models.iter().map(|m| m.as_ref()).collect();
    let evaluation = Evaluation::run(&ds, &refs, &test_items, 40, &judge);
    let test_item_ids: Vec<u32> = test_items.iter().map(|i| i.id).collect();

    // --- execution metrics -------------------------------------------------
    let latency_models = ["fastText", "Graphite", "GraphEx"];
    let mut latencies = Vec::new();
    for name in latency_models {
        let model = models.iter().find(|m| m.name() == name).expect("model present");
        latencies.push((name.to_string(), measure_latency(model.as_ref(), &ds, &test_item_ids)));
    }
    let sizes: Vec<(String, usize)> =
        models.iter().map(|m| (m.name().to_string(), m.size_bytes())).collect();

    Study {
        name,
        graphex_threshold: threshold,
        graphex_model,
        models,
        evaluation,
        test_item_ids,
        construction_times,
        latencies,
        sizes,
        ds,
    }
}

/// Amortized per-record inference latency over the test items (paper
/// Fig. 6a: "amortizing the time taken for prediction over the entire test
/// set"), k = 20.
pub fn measure_latency(model: &dyn Recommender, ds: &CategoryDataset, item_ids: &[u32]) -> Duration {
    // Warm-up pass so lazy allocations don't pollute the measurement.
    for &id in item_ids.iter().take(10) {
        let item = &ds.marketplace.items[id as usize];
        std::hint::black_box(model.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 20));
    }
    let start = Instant::now();
    for &id in item_ids {
        let item = &ds.marketplace.items[id as usize];
        std::hint::black_box(model.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 20));
    }
    start.elapsed() / item_ids.len().max(1) as u32
}

/// Runs all categories of a scale.
pub fn run_studies(scale: crate::Scale) -> Vec<Study> {
    let sizes = scale.test_set_sizes();
    scale
        .specs()
        .into_iter()
        .zip(sizes)
        .map(|(spec, n)| {
            eprintln!("[bench] generating + evaluating {} ...", spec.name);
            run_study(spec, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::CategorySpec;

    fn quick_study() -> Study {
        let mut spec = CategorySpec::tiny(0x57);
        spec.name = "TEST_CAT".into();
        run_study(spec, 30)
    }

    #[test]
    fn study_has_all_models_in_order() {
        let study = quick_study();
        let names: Vec<&str> = study.models.iter().map(|m| m.name()).collect();
        assert_eq!(names, MODEL_ORDER);
        assert_eq!(study.evaluation.models.len(), 6);
        assert_eq!(study.test_item_ids.len(), 30);
        assert_eq!(study.sizes.len(), 6);
        assert_eq!(study.latencies.len(), 3);
    }

    #[test]
    fn graphex_produces_predictions_in_study() {
        let study = quick_study();
        let graphex = study.evaluation.model("GraphEx").unwrap();
        assert!(graphex.total_predictions() > 0, "GraphEx predicted nothing");
        assert!(graphex.relevant() > 0, "GraphEx has zero judged-relevant predictions");
    }

    #[test]
    fn threshold_is_data_driven() {
        let ds = CategoryDataset::generate(CategorySpec::tiny(0x58));
        let t = default_threshold(&ds);
        assert!(t >= 2);
        let stricter = percentile_threshold(&ds, 0.9);
        assert!(stricter >= t);
    }
}

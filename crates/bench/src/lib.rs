//! # bench — the experiment harness regenerating every table and figure
//!
//! One binary per experiment (see `src/bin/`), all built on the shared
//! [`experiments`] machinery: generate the three category datasets
//! (Table II), train all six models, run the judged evaluation once, and
//! render the paper's tables from it.
//!
//! Scale control: set `GRAPHEX_SCALE=quick` to run everything on miniature
//! datasets (seconds, for smoke-testing the harness);the default is the
//! full laptop-scale presets used by EXPERIMENTS.md.
//!
//! ```bash
//! cargo run --release -p graphex-bench --bin table3     # one experiment
//! cargo run --release -p graphex-bench --bin repro_all  # everything
//! cargo bench -p graphex-bench                          # criterion suite
//! ```

pub mod experiments;
pub mod tables;

use graphex_marketsim::CategorySpec;

/// Dataset scale for the repro binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The CAT_1/2/3 presets (paper Table II scaled ×1000 down).
    Full,
    /// Miniature datasets for smoke runs.
    Quick,
}

impl Scale {
    /// Reads `GRAPHEX_SCALE` (`quick` → [`Scale::Quick`], anything else →
    /// [`Scale::Full`]).
    pub fn from_env() -> Self {
        match std::env::var("GRAPHEX_SCALE").as_deref() {
            Ok("quick") | Ok("QUICK") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// The category specs at this scale.
    pub fn specs(self) -> Vec<CategorySpec> {
        match self {
            Scale::Full => vec![CategorySpec::cat1(), CategorySpec::cat2(), CategorySpec::cat3()],
            Scale::Quick => {
                let mut c1 = CategorySpec::tiny(0xC1);
                c1.name = "CAT_1".into();
                c1.num_items = 3_000;
                c1.num_sessions = 18_000;
                c1.num_leaves = 6;
                c1.products_per_leaf = 20;
                let mut c2 = CategorySpec::tiny(0xC2);
                c2.name = "CAT_2".into();
                c2.num_items = 1_200;
                c2.num_sessions = 7_000;
                c2.leaf_id_base = 9_500;
                let mut c3 = CategorySpec::tiny(0xC3);
                c3.name = "CAT_3".into();
                c3.num_items = 600;
                c3.num_sessions = 3_000;
                c3.leaf_id_base = 9_800;
                vec![c1, c2, c3]
            }
        }
    }

    /// Test-set sizes per category (paper: 1000/400/200).
    pub fn test_set_sizes(self) -> [usize; 3] {
        match self {
            Scale::Full => [1000, 400, 200],
            Scale::Quick => [120, 80, 50],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_defaults_to_full() {
        // (Cannot mutate the env safely in parallel tests; just check the
        // mapping logic through specs().)
        assert_eq!(Scale::Full.specs().len(), 3);
        assert_eq!(Scale::Quick.specs().len(), 3);
        assert_eq!(Scale::Full.test_set_sizes(), [1000, 400, 200]);
    }

    #[test]
    fn quick_specs_are_small_and_named_like_paper() {
        let specs = Scale::Quick.specs();
        assert_eq!(specs[0].name, "CAT_1");
        assert!(specs.iter().all(|s| s.num_items <= 3_000));
        // Leaf id ranges must not collide across categories.
        assert!(specs[0].leaf_id_base + specs[0].num_leaves as u32 <= specs[1].leaf_id_base);
        assert!(specs[1].leaf_id_base + specs[1].num_leaves as u32 <= specs[2].leaf_id_base);
    }
}

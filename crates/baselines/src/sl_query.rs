//! SL-query: "similar listings share similar queries".
//!
//! Paper Sec. II: a rule-based model that recommends the associated queries
//! of listings that share a keyphrase with the seed item, truncated with a
//! Jaccard-coefficient threshold to ensure relevance. Like RE it only works
//! for items that already have click associations (low item coverage, no
//! cold start).

use crate::{ItemRef, Rec, Recommender};
use graphex_marketsim::CategoryDataset;
use graphex_textkit::{FxHashMap, FxHashSet};

/// Co-click neighborhood recommender.
#[derive(Debug)]
pub struct SlQuery {
    /// item → clicked query ids (sorted).
    item_queries: FxHashMap<u32, Vec<u32>>,
    /// query id → items that were clicked for it.
    query_items: FxHashMap<u32, Vec<u32>>,
    /// query id → text.
    query_texts: Vec<String>,
    /// Minimum Jaccard similarity between seed and neighbor query sets.
    jaccard_threshold: f64,
    bytes: usize,
}

impl SlQuery {
    /// Trains from the dataset click log. `jaccard_threshold` truncates
    /// neighbor listings by click-set similarity (paper's truncation rule;
    /// production value undisclosed — 0.2 works well at our scale).
    pub fn train(ds: &CategoryDataset, jaccard_threshold: f64) -> Self {
        let mut item_queries: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut query_items: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut bytes = 0usize;
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            if assoc.is_empty() {
                continue;
            }
            let mut qs: Vec<u32> = assoc.iter().map(|&(q, _)| q).collect();
            qs.sort_unstable();
            bytes += qs.len() * 4 + 16;
            for &q in &qs {
                query_items.entry(q).or_default().push(item_id as u32);
            }
            item_queries.insert(item_id as u32, qs);
        }
        let query_texts: Vec<String> = ds.queries.iter().map(|q| q.text.clone()).collect();
        bytes += query_texts.iter().map(|t| t.len() + 8).sum::<usize>();
        Self { item_queries, query_items, query_texts, jaccard_threshold, bytes }
    }

    fn jaccard(a: &[u32], b: &[u32]) -> f64 {
        // Both sorted; merge-count the intersection.
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl Recommender for SlQuery {
    fn name(&self) -> &'static str {
        "SL-query"
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        let Some(id) = item.id else { return Vec::new() };
        let Some(seed_queries) = self.item_queries.get(&id) else { return Vec::new() };

        // Neighbor listings: any item sharing a clicked query with the seed.
        let mut neighbors: FxHashSet<u32> = FxHashSet::default();
        for q in seed_queries {
            if let Some(items) = self.query_items.get(q) {
                neighbors.extend(items.iter().copied());
            }
        }
        neighbors.remove(&id);

        // Score candidate queries by the Jaccard mass of the neighbors that
        // carried them; drop neighbors below the similarity threshold.
        let mut scores: FxHashMap<u32, f64> = FxHashMap::default();
        let mut sorted_neighbors: Vec<u32> = neighbors.into_iter().collect();
        sorted_neighbors.sort_unstable(); // deterministic iteration
        for n in sorted_neighbors {
            let nq = &self.item_queries[&n];
            let sim = Self::jaccard(seed_queries, nq);
            if sim < self.jaccard_threshold {
                continue;
            }
            for &q in nq {
                *scores.entry(q).or_insert(0.0) += sim;
            }
        }
        // Note: the seed's own queries stay in the candidate set — neighbor
        // listings share them by construction, and the paper's Table V shows
        // SL models with the *highest* recall against RE (which is exactly
        // this effect: similar listings re-surface the item's own clicked
        // queries, so SL predictions de-duplicate heavily against RE).
        let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(k)
            .map(|(q, score)| Rec { text: self.query_texts[q as usize].clone(), score })
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.bytes
    }

    fn cold_start_capable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::CategorySpec;

    fn dataset() -> CategoryDataset {
        CategoryDataset::generate(CategorySpec::tiny(61))
    }

    #[test]
    fn jaccard_math() {
        assert_eq!(SlQuery::jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(SlQuery::jaccard(&[], &[]), 0.0);
        assert_eq!(SlQuery::jaccard(&[1], &[1]), 1.0);
        assert_eq!(SlQuery::jaccard(&[1], &[2]), 0.0);
    }

    #[test]
    fn cold_items_get_nothing() {
        let ds = dataset();
        let sl = SlQuery::train(&ds, 0.1);
        assert!(sl.recommend(&ItemRef::cold("new item", ds.marketplace.leaves[0].id), 10).is_empty());
        assert!(!sl.cold_start_capable());
    }

    #[test]
    fn seed_queries_resurface_through_neighbors() {
        // The RE-de-duplication property the paper discusses: SL-query's
        // candidates include the seed's own clicked queries whenever a
        // neighbor shares them.
        let ds = dataset();
        let sl = SlQuery::train(&ds, 0.0);
        let mut resurfaced = 0usize;
        let mut with_recs = 0usize;
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            if assoc.is_empty() {
                continue;
            }
            let item = &ds.marketplace.items[item_id];
            let own: FxHashSet<&str> =
                assoc.iter().map(|&(q, _)| ds.queries[q as usize].text.as_str()).collect();
            let recs = sl.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 40);
            if recs.is_empty() {
                continue;
            }
            with_recs += 1;
            if recs.iter().any(|r| own.contains(r.text.as_str())) {
                resurfaced += 1;
            }
        }
        assert!(with_recs > 0);
        assert!(resurfaced * 2 > with_recs, "seed queries rarely resurface: {resurfaced}/{with_recs}");
    }

    #[test]
    fn expansion_comes_from_co_clicked_neighbors() {
        let ds = dataset();
        let sl = SlQuery::train(&ds, 0.0);
        // Find a seed with at least one recommendation and verify provenance:
        // every recommended query must be clicked on some neighbor that
        // shares a query with the seed.
        let mut verified = false;
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            if assoc.is_empty() {
                continue;
            }
            let item = &ds.marketplace.items[item_id];
            let recs = sl.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 10);
            if recs.is_empty() {
                continue;
            }
            let seed_qs: FxHashSet<u32> = assoc.iter().map(|&(q, _)| q).collect();
            for rec in &recs {
                let qid = ds.oracle().query_by_text(&rec.text).unwrap().id;
                let carrier_exists = ds.train_log.query_clicks[qid as usize].iter().any(|&(n, _)| {
                    ds.train_log.item_clicks[n as usize].iter().any(|&(q2, _)| seed_qs.contains(&q2))
                });
                assert!(carrier_exists, "no co-click path for {}", rec.text);
            }
            verified = true;
            break;
        }
        assert!(verified, "no item produced SL-query recommendations");
    }

    #[test]
    fn threshold_monotonically_shrinks_output() {
        let ds = dataset();
        let loose = SlQuery::train(&ds, 0.0);
        let strict = SlQuery::train(&ds, 0.6);
        let mut loose_total = 0usize;
        let mut strict_total = 0usize;
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            if assoc.is_empty() {
                continue;
            }
            let item = &ds.marketplace.items[item_id];
            let r = ItemRef::known(item.id, &item.title, item.leaf);
            loose_total += loose.recommend(&r, 40).len();
            strict_total += strict.recommend(&r, 40).len();
        }
        assert!(strict_total <= loose_total);
    }
}

//! Rules Engine (RE): the 100 %-recall production heuristic.
//!
//! Paper Sec. II: "stores item-keyphrase associations based on their
//! co-occurrences (associated with buyer activity) in the search logs during
//! the last 30 days … recommends keyphrases only for items in which buyers
//! have shown interest and not for any new items. This is a 100 % recall
//! model in which buyers' interest is reflected back to them."
//!
//! Item coverage is therefore exactly the click coverage of the log
//! (~13 % at eBay; see [`RulesEngine::item_coverage`]).

use crate::{ItemRef, Rec, Recommender};
use graphex_marketsim::CategoryDataset;
use graphex_textkit::FxHashMap;

/// Click-lookup recommender.
#[derive(Debug)]
pub struct RulesEngine {
    /// item id → (keyphrase text, clicks), sorted by clicks desc.
    associations: FxHashMap<u32, Vec<(String, u32)>>,
    total_items: usize,
    bytes: usize,
}

impl RulesEngine {
    /// Builds the lookup from the dataset's training click log, keeping
    /// associations with at least `min_clicks` buyer clicks.
    pub fn train(ds: &CategoryDataset, min_clicks: u32) -> Self {
        let mut associations: FxHashMap<u32, Vec<(String, u32)>> = FxHashMap::default();
        let mut bytes = 0usize;
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            if assoc.is_empty() {
                continue;
            }
            let mut entries: Vec<(String, u32)> = assoc
                .iter()
                .filter(|&&(_, clicks)| clicks >= min_clicks)
                .map(|&(query, clicks)| (ds.queries[query as usize].text.clone(), clicks))
                .collect();
            if entries.is_empty() {
                continue;
            }
            entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            bytes += entries.iter().map(|(t, _)| t.len() + 12).sum::<usize>() + 16;
            associations.insert(item_id as u32, entries);
        }
        Self { associations, total_items: ds.marketplace.items.len(), bytes }
    }

    /// Fraction of items this model can serve at all.
    pub fn item_coverage(&self) -> f64 {
        if self.total_items == 0 {
            0.0
        } else {
            self.associations.len() as f64 / self.total_items as f64
        }
    }

    /// The raw associations of an item (ground-truth view used by the
    /// paper's Table V, where RE recommendations act as labels).
    pub fn associations(&self, item_id: u32) -> Option<&[(String, u32)]> {
        self.associations.get(&item_id).map(Vec::as_slice)
    }
}

impl Recommender for RulesEngine {
    fn name(&self) -> &'static str {
        "RE"
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        let Some(id) = item.id else { return Vec::new() };
        let Some(entries) = self.associations.get(&id) else { return Vec::new() };
        entries
            .iter()
            .take(k)
            .map(|(text, clicks)| Rec { text: text.clone(), score: f64::from(*clicks) })
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.bytes
    }

    fn cold_start_capable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::CategorySpec;

    fn dataset() -> CategoryDataset {
        CategoryDataset::generate(CategorySpec::tiny(51))
    }

    #[test]
    fn recommends_exactly_the_clicked_queries() {
        let ds = dataset();
        let re = RulesEngine::train(&ds, 1);
        let clicked_item = ds
            .train_log
            .item_clicks
            .iter()
            .position(|a| a.len() >= 2)
            .expect("an item with 2+ clicked queries") as u32;
        let item = &ds.marketplace.items[clicked_item as usize];
        let recs = re.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 40);
        let expected: std::collections::BTreeSet<String> = ds.train_log.item_clicks
            [clicked_item as usize]
            .iter()
            .map(|&(q, _)| ds.queries[q as usize].text.clone())
            .collect();
        let got: std::collections::BTreeSet<String> = recs.iter().map(|r| r.text.clone()).collect();
        assert_eq!(got, expected);
        // sorted by clicks desc
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn cold_items_get_nothing() {
        let ds = dataset();
        let re = RulesEngine::train(&ds, 1);
        assert!(re.recommend(&ItemRef::cold("brand new listing", ds.marketplace.leaves[0].id), 10).is_empty());
        assert!(!re.cold_start_capable());
    }

    #[test]
    fn unclicked_items_get_nothing() {
        let ds = dataset();
        let re = RulesEngine::train(&ds, 1);
        let unclicked = ds.train_log.item_clicks.iter().position(Vec::is_empty).unwrap() as u32;
        let item = &ds.marketplace.items[unclicked as usize];
        assert!(re.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 10).is_empty());
    }

    #[test]
    fn coverage_matches_click_stats() {
        let ds = dataset();
        let re = RulesEngine::train(&ds, 1);
        let stats = ds.train_log.click_stats();
        assert!((re.item_coverage() - stats.coverage).abs() < 1e-9);
        assert!(re.item_coverage() > 0.0);
        assert!(re.size_bytes() > 0);
    }

    #[test]
    fn min_clicks_filters() {
        let ds = dataset();
        let permissive = RulesEngine::train(&ds, 1);
        let strict = RulesEngine::train(&ds, 3);
        assert!(strict.item_coverage() <= permissive.item_coverage());
    }
}

//! fastText-like linear text classifier.
//!
//! Paper Sec. II: fastText "creates word embeddings using the CBOW model and
//! employs a straightforward linear neural network model with hierarchical
//! softmax" and is the CPU-feasible XMC workhorse at eBay. We reproduce the
//! algorithmic skeleton:
//!
//! * hashed input features: unigrams + adjacent bigrams into a fixed bucket
//!   table (fastText's `-bucket`);
//! * hidden vector = mean of input feature embeddings;
//! * label scores = `hidden · output_matrix` rows, trained with logistic
//!   loss and **negative sampling** (we trade hierarchical softmax for
//!   negative sampling — same asymptotic training cost, simpler inference,
//!   identical tail-bias behaviour because both optimize click likelihood);
//! * training data = (title, clicked query) pairs from the log, which is
//!   exactly how the tail-keyphrase bias of Sec. I-A1 enters the model.
//!
//! Like the original it is cold-start capable and its model size is
//! dominated by the dense input/output matrices (Fig. 6b's "fastText is
//! largest" shape).

use crate::{ItemRef, Rec, Recommender};
use graphex_marketsim::CategoryDataset;
use graphex_textkit::{FxHashMap, Tokenizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct FastTextConfig {
    pub dim: usize,
    /// Hashed feature buckets (vocabulary + collisions live here).
    pub buckets: usize,
    pub epochs: usize,
    pub learning_rate: f32,
    pub negatives: usize,
    pub seed: u64,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        // The simulated click log is far smaller than eBay's, so the epoch
        // count compensates where the original compensates with data volume
        // (training still finishes in seconds; the paper's fastText trains
        // for hours on real logs).
        Self { dim: 48, buckets: 1 << 15, epochs: 20, learning_rate: 0.18, negatives: 5, seed: 42 }
    }
}

/// The trained classifier.
pub struct FastTextLike {
    config: FastTextConfig,
    tokenizer: Tokenizer,
    /// `buckets × dim` input embedding table.
    input: Vec<f32>,
    /// `labels × dim` output matrix.
    output: Vec<f32>,
    /// Label id → query text.
    labels: Vec<String>,
}

impl std::fmt::Debug for FastTextLike {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastTextLike")
            .field("labels", &self.labels.len())
            .field("dim", &self.config.dim)
            .field("buckets", &self.config.buckets)
            .finish()
    }
}

impl FastTextLike {
    /// Trains on the dataset's click log.
    pub fn train(ds: &CategoryDataset, config: FastTextConfig) -> Self {
        let tokenizer = Tokenizer::default();
        // Label space: queries with at least one click (the XMC label set).
        let mut label_of_query: FxHashMap<u32, u32> = FxHashMap::default();
        let mut labels: Vec<String> = Vec::new();
        let mut label_freq: Vec<f64> = Vec::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new(); // (item, label)
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            for &(q, clicks) in assoc {
                let label = *label_of_query.entry(q).or_insert_with(|| {
                    labels.push(ds.queries[q as usize].text.clone());
                    label_freq.push(0.0);
                    (labels.len() - 1) as u32
                });
                label_freq[label as usize] += f64::from(clicks);
                // Repeat pairs by (damped) click count: heavier clicks,
                // more gradient mass.
                let reps = 1 + (f64::from(clicks)).ln().floor() as usize;
                for _ in 0..reps {
                    pairs.push((item_id as u32, label));
                }
            }
        }

        let dim = config.dim;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut input = vec![0.0f32; config.buckets * dim];
        for v in &mut input {
            *v = (rng.gen_range(-0.5..0.5)) / dim as f32;
        }
        let output = vec![0.0f32; labels.len() * dim];

        let mut model = Self { config, tokenizer, input, output, labels };
        if pairs.is_empty() {
            return model;
        }

        // Unigram^0.75 negative-sampling table.
        let neg_table = build_negative_table(&label_freq, 1 << 16);

        // Pre-extract features per item (titles are reused across epochs).
        let mut item_features: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &(item, _) in &pairs {
            item_features
                .entry(item)
                .or_insert_with(|| model.features(&ds.marketplace.items[item as usize].title));
        }

        let mut hidden = vec![0.0f32; dim];
        let mut grad = vec![0.0f32; dim];
        let epochs = model.config.epochs;
        let negatives = model.config.negatives;
        let lr0 = model.config.learning_rate;
        let total_steps = (epochs * pairs.len()) as f32;
        let mut step = 0f32;
        for _ in 0..epochs {
            // In-place shuffle of pair order per epoch.
            for i in (1..pairs.len()).rev() {
                pairs.swap(i, rng.gen_range(0..=i));
            }
            for &(item, label) in &pairs {
                let lr = lr0 * (1.0 - step / total_steps).max(0.05);
                step += 1.0;
                let features = &item_features[&item];
                if features.is_empty() {
                    continue;
                }
                model.forward(features, &mut hidden);
                grad.fill(0.0);
                // positive + negatives
                model.sgd_pair(&hidden, label as usize, 1.0, lr, &mut grad);
                for _ in 0..negatives {
                    let neg = neg_table[rng.gen_range(0..neg_table.len())];
                    if neg != label {
                        model.sgd_pair(&hidden, neg as usize, 0.0, lr, &mut grad);
                    }
                }
                // propagate to input vectors
                let scale = 1.0 / features.len() as f32;
                for &f in features {
                    let row = &mut model.input[f as usize * dim..(f as usize + 1) * dim];
                    for (w, g) in row.iter_mut().zip(&grad) {
                        *w += g * scale;
                    }
                }
            }
        }
        model
    }

    /// Hashed unigram+bigram feature ids of a title.
    fn features(&self, title: &str) -> Vec<u32> {
        let tokens: Vec<String> = self.tokenizer.tokenize(title).collect();
        let mut out = Vec::with_capacity(tokens.len() * 2);
        let mask = (self.config.buckets - 1) as u64;
        for t in &tokens {
            out.push((crate::embedding::token_hash(t) & mask) as u32);
        }
        for pair in tokens.windows(2) {
            let h = crate::embedding::token_hash(&pair[0]) ^ crate::embedding::token_hash(&pair[1]).rotate_left(21);
            out.push((h & mask) as u32);
        }
        out
    }

    /// hidden = mean of feature embeddings.
    fn forward(&self, features: &[u32], hidden: &mut [f32]) {
        let dim = self.config.dim;
        hidden.fill(0.0);
        for &f in features {
            let row = &self.input[f as usize * dim..(f as usize + 1) * dim];
            for (h, w) in hidden.iter_mut().zip(row) {
                *h += w;
            }
        }
        let inv = 1.0 / features.len() as f32;
        for h in hidden.iter_mut() {
            *h *= inv;
        }
    }

    /// One logistic-regression step against `label`; accumulates the hidden
    /// gradient into `grad` and updates the output row in place.
    fn sgd_pair(&mut self, hidden: &[f32], label: usize, target: f32, lr: f32, grad: &mut [f32]) {
        let dim = self.config.dim;
        let row = &mut self.output[label * dim..(label + 1) * dim];
        let mut score = 0.0f32;
        for (h, w) in hidden.iter().zip(row.iter()) {
            score += h * w;
        }
        let pred = sigmoid(score);
        let alpha = lr * (target - pred);
        for ((g, w), h) in grad.iter_mut().zip(row.iter_mut()).zip(hidden) {
            *g += alpha * *w;
            *w += alpha * h;
        }
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Negative-sampling lookup table: label frequency^0.75, as in word2vec.
fn build_negative_table(freq: &[f64], size: usize) -> Vec<u32> {
    if freq.is_empty() {
        return vec![0];
    }
    let powered: Vec<f64> = freq.iter().map(|f| f.max(1.0).powf(0.75)).collect();
    let total: f64 = powered.iter().sum();
    let mut table = Vec::with_capacity(size);
    for (label, p) in powered.iter().enumerate() {
        let count = ((p / total) * size as f64).ceil() as usize;
        for _ in 0..count.max(1) {
            table.push(label as u32);
        }
    }
    table
}

impl Recommender for FastTextLike {
    fn name(&self) -> &'static str {
        "fastText"
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        let features = self.features(item.title);
        if features.is_empty() || self.labels.is_empty() {
            return Vec::new();
        }
        let dim = self.config.dim;
        let mut hidden = vec![0.0f32; dim];
        self.forward(&features, &mut hidden);
        let mut scored: Vec<(usize, f32)> = (0..self.labels.len())
            .map(|l| {
                let row = &self.output[l * dim..(l + 1) * dim];
                let mut s = 0.0;
                for (h, w) in hidden.iter().zip(row) {
                    s += h * w;
                }
                (l, s)
            })
            .collect();
        let m = k.min(scored.len());
        if m == 0 {
            return Vec::new();
        }
        scored.select_nth_unstable_by(m - 1, |a, b| b.1.partial_cmp(&a.1).unwrap());
        scored.truncate(m);
        scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        // Probability cutoff so the prediction count varies with confidence
        // (production taggers threshold rather than pad to the budget).
        scored
            .into_iter()
            .map(|(l, s)| (l, sigmoid(s)))
            .filter(|&(_, p)| p >= 0.3)
            .map(|(l, p)| Rec { text: self.labels[l].clone(), score: f64::from(p) })
            .collect()
    }

    fn size_bytes(&self) -> usize {
        (self.input.len() + self.output.len()) * 4
            + self.labels.iter().map(|t| t.len() + 8).sum::<usize>()
    }

    fn cold_start_capable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::{CategoryDataset, CategorySpec};

    fn quick_config() -> FastTextConfig {
        // The tiny dataset has few click pairs, so give SGD more passes
        // than the production default to converge.
        FastTextConfig { dim: 24, buckets: 1 << 12, epochs: 25, learning_rate: 0.3, ..Default::default() }
    }

    fn setup() -> (CategoryDataset, FastTextLike) {
        let ds = CategoryDataset::generate(CategorySpec::tiny(81));
        let ft = FastTextLike::train(&ds, quick_config());
        (ds, ft)
    }

    #[test]
    fn labels_are_clicked_queries() {
        let (ds, ft) = setup();
        let clicked: std::collections::BTreeSet<u32> = ds
            .train_log
            .query_clicks
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(q, _)| q as u32)
            .collect();
        assert_eq!(ft.num_labels(), clicked.len());
    }

    #[test]
    fn learns_to_rank_clicked_query_high() {
        let (ds, ft) = setup();
        // For items with clicks, the clicked query should usually appear in
        // the top-10 predictions after training. Require a majority — SGD on
        // a tiny dataset won't be perfect.
        let mut hits = 0usize;
        let mut total = 0usize;
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            let Some(&(q, _)) = assoc.first() else { continue };
            total += 1;
            let item = &ds.marketplace.items[item_id];
            let recs = ft.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 10);
            if recs.iter().any(|r| r.text == ds.queries[q as usize].text) {
                hits += 1;
            }
            if total >= 60 {
                break;
            }
        }
        assert!(hits * 2 > total, "train-recall too low: {hits}/{total}");
    }

    #[test]
    fn cold_start_capable_and_scores_sorted() {
        let (ds, ft) = setup();
        assert!(ft.cold_start_capable());
        let recs = ft.recommend(&ItemRef::cold(&ds.marketplace.items[0].title, ds.marketplace.items[0].leaf), 15);
        assert!(!recs.is_empty());
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn empty_title_yields_nothing() {
        let (ds, ft) = setup();
        assert!(ft.recommend(&ItemRef::cold("", ds.marketplace.leaves[0].id), 5).is_empty());
    }

    #[test]
    fn model_size_dominated_by_matrices() {
        let (_, ft) = setup();
        let matrices = (ft.input.len() + ft.output.len()) * 4;
        assert!(ft.size_bytes() >= matrices);
        assert!(matrices > 100_000, "dense model should be big: {matrices}");
    }

    #[test]
    fn deterministic_training() {
        let ds = CategoryDataset::generate(CategorySpec::tiny(82));
        let a = FastTextLike::train(&ds, quick_config());
        let b = FastTextLike::train(&ds, quick_config());
        let item = &ds.marketplace.items[3];
        let ra = a.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 10);
        let rb = b.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 10);
        assert_eq!(ra, rb);
    }
}

//! Deterministic hashed token embeddings.
//!
//! SL-emb and fastText both need dense title vectors. Real systems learn
//! them; for a self-contained reproduction we use *feature hashing*: every
//! token (and adjacent-bigram) deterministically maps to a pseudo-random
//! unit vector derived from its hash (SplitMix64-expanded), and a title
//! embeds as the L2-normalized mean of its feature vectors. Titles sharing
//! product tokens land close in cosine space — exactly the "semantically
//! close items have similar keyphrases" hypothesis SL-emb rests on
//! (fastText additionally *learns* its input vectors; see
//! [`crate::fasttext`]).

use graphex_textkit::Tokenizer;

/// Embedding dimensionality. 32 keeps brute-force ANN fast while leaving
/// enough room that unrelated titles are near-orthogonal w.h.p.
pub const DIM: usize = 32;

/// SplitMix64: expands a seed into a stream of well-mixed u64s.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string (token → seed).
#[inline]
pub fn token_hash(token: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Writes the pseudo-random unit-ish vector of `seed` into `out`,
/// accumulating (`out += v`).
fn accumulate_feature(seed: u64, out: &mut [f32; DIM]) {
    let mut state = seed;
    for slot in out.iter_mut() {
        // Map u64 → approximately N(0,1) via sum of uniforms (CLT, 4 terms).
        let r = splitmix64(&mut state);
        let u1 = (r & 0xFFFF) as f32 / 65535.0;
        let u2 = ((r >> 16) & 0xFFFF) as f32 / 65535.0;
        let u3 = ((r >> 32) & 0xFFFF) as f32 / 65535.0;
        let u4 = ((r >> 48) & 0xFFFF) as f32 / 65535.0;
        *slot += (u1 + u2 + u3 + u4) - 2.0;
    }
}

/// Embeds `text`: tokens + adjacent bigrams, mean-pooled, L2-normalized.
/// Returns the zero vector for token-less input.
pub fn embed(tokenizer: &Tokenizer, text: &str) -> [f32; DIM] {
    let mut out = [0.0f32; DIM];
    let tokens: Vec<String> = tokenizer.tokenize(text).collect();
    if tokens.is_empty() {
        return out;
    }
    let mut features = 0usize;
    for tok in &tokens {
        accumulate_feature(token_hash(tok), &mut out);
        features += 1;
    }
    for pair in tokens.windows(2) {
        let bigram_seed = token_hash(&pair[0]) ^ token_hash(&pair[1]).rotate_left(17);
        accumulate_feature(bigram_seed, &mut out);
        features += 1;
    }
    let inv = 1.0 / features as f32;
    for v in &mut out {
        *v *= inv;
    }
    normalize(&mut out);
    out
}

/// L2-normalizes in place (no-op on the zero vector).
pub fn normalize(v: &mut [f32; DIM]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity of two normalized vectors (plain dot product).
#[inline]
pub fn dot(a: &[f32; DIM], b: &[f32; DIM]) -> f32 {
    let mut acc = 0.0;
    for i in 0..DIM {
        acc += a[i] * b[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::default()
    }

    #[test]
    fn deterministic() {
        let a = embed(&tok(), "audeze maxwell gaming headphones");
        let b = embed(&tok(), "audeze maxwell gaming headphones");
        assert_eq!(a, b);
    }

    #[test]
    fn normalized_output() {
        let v = embed(&tok(), "wireless bluetooth headphones");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_titles_are_closer_than_unrelated() {
        let t = tok();
        let a = embed(&t, "audeze maxwell wireless gaming headphones");
        let b = embed(&t, "audeze maxwell gaming headphones for xbox");
        let c = embed(&t, "vintage porcelain tea set flowers");
        assert!(dot(&a, &b) > dot(&a, &c) + 0.2, "{} vs {}", dot(&a, &b), dot(&a, &c));
    }

    #[test]
    fn empty_title_is_zero_vector() {
        let v = embed(&tok(), "");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn word_order_matters_through_bigrams() {
        let t = tok();
        let a = embed(&t, "red leather case");
        let b = embed(&t, "case leather red");
        assert!(dot(&a, &b) < 0.999, "bigrams should differentiate order");
        assert!(dot(&a, &b) > 0.5, "unigram mass should still dominate");
    }
}

//! # baselines — the production models GraphEx is compared against
//!
//! Faithful-in-kind reimplementations of the five eBay production systems
//! from the paper's Sec. II, trained on the simulated click log (the same
//! data diet the originals have):
//!
//! | Model | Kind | Data | Cold-start? |
//! |-------|------|------|-------------|
//! | [`RulesEngine`] | 100 %-recall click lookup | item→query clicks | no |
//! | [`SlQuery`] | similar listings share queries | co-click graph | no |
//! | [`SlEmb`] | title embeddings + ANN over clicked listings | titles + clicks | yes |
//! | [`FastTextLike`] | hashed bag-of-features linear classifier | titles + clicks | yes |
//! | [`Graphite`] | token→item→label bipartite mapping | titles + clicks | yes |
//!
//! All expose the [`Recommender`] trait so the evaluation harness treats
//! every model (including GraphEx via [`GraphExRecommender`]) uniformly.
//!
//! The implementations intentionally keep the originals' *relationship to
//! the training data*: the click-trained models inherit the click log's
//! exposure/popularity/MNAR biases, which is precisely the phenomenon the
//! paper's evaluation quantifies.

pub mod embedding;
pub mod fasttext;
pub mod graphite;
pub mod graphex_rec;
pub mod rules_engine;
pub mod sl_emb;
pub mod sl_query;

pub use fasttext::FastTextLike;
pub use graphex_rec::{GraphExRecommender, ServiceRecommender};
pub use graphite::Graphite;
pub use rules_engine::RulesEngine;
pub use sl_emb::SlEmb;
pub use sl_query::SlQuery;

use graphex_core::LeafId;

/// A test item as the recommenders see it.
#[derive(Debug, Clone, Copy)]
pub struct ItemRef<'a> {
    /// Item id within the dataset, if the item is a known listing. Cold
    /// (new) items have `None` — only cold-start-capable models can serve
    /// them.
    pub id: Option<u32>,
    pub title: &'a str,
    pub leaf: LeafId,
}

impl<'a> ItemRef<'a> {
    pub fn known(id: u32, title: &'a str, leaf: LeafId) -> Self {
        Self { id: Some(id), title, leaf }
    }

    pub fn cold(title: &'a str, leaf: LeafId) -> Self {
        Self { id: None, title, leaf }
    }
}

/// One recommendation: the keyphrase text and a model-specific score
/// (higher = better; comparable within one model only).
#[derive(Debug, Clone, PartialEq)]
pub struct Rec {
    pub text: String,
    pub score: f64,
}

/// Common interface over every keyphrase recommender in the study.
pub trait Recommender: Send + Sync {
    /// Model name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Up to `k` keyphrases for `item`, best first. Models may return fewer
    /// (RE/SL return nothing for cold items).
    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec>;

    /// Serialized/estimated model size in bytes (Fig. 6b).
    fn size_bytes(&self) -> usize;

    /// Can the model recommend for never-before-seen items?
    fn cold_start_capable(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_ref_constructors() {
        let known = ItemRef::known(7, "a title", LeafId(1));
        assert_eq!(known.id, Some(7));
        let cold = ItemRef::cold("a title", LeafId(1));
        assert_eq!(cold.id, None);
        assert_eq!(cold.title, "a title");
    }
}

//! SL-emb: dense-retrieval recommender over similar listings.
//!
//! Paper Sec. II: "uses embeddings of the item's title to compare and find
//! similar listings, and then recommend the related queries … inference is
//! implemented in two stages, namely, embedding generation and ANN."
//! It is cold-start capable (only the *title* is needed) but its
//! candidates still come from clicked listings, so the click-log biases
//! flow through.
//!
//! Our ANN stage is an exact top-m scan over the clicked-listing corpus —
//! at reproduction scale (≤ ~20 k clicked listings × 32 dims) brute force
//! beats index structures, and exactness removes one confound from the
//! evaluation.

use crate::embedding::{dot, embed, DIM};
use crate::{ItemRef, Rec, Recommender};
use graphex_marketsim::CategoryDataset;
use graphex_textkit::{FxHashMap, FxHashSet, Tokenizer};

/// Embedding + ANN recommender.
#[derive(Debug)]
pub struct SlEmb {
    tokenizer: Tokenizer,
    /// Embeddings of training listings that have click associations.
    corpus: Vec<[f32; DIM]>,
    /// Clicked queries of each corpus listing: (query text index, clicks).
    corpus_queries: Vec<Vec<(u32, u32)>>,
    query_texts: Vec<String>,
    /// Number of nearest listings to aggregate.
    neighbors: usize,
    /// Token-Jaccard threshold between title and candidate keyphrase
    /// (the paper's truncation rule "to ensure relevance").
    jaccard_threshold: f64,
}

impl SlEmb {
    /// Embeds every clicked listing in the training log.
    pub fn train(ds: &CategoryDataset, neighbors: usize, jaccard_threshold: f64) -> Self {
        let tokenizer = Tokenizer::default();
        let mut corpus = Vec::new();
        let mut corpus_queries = Vec::new();
        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            if assoc.is_empty() {
                continue;
            }
            let item = &ds.marketplace.items[item_id];
            corpus.push(embed(&tokenizer, &item.title));
            corpus_queries.push(assoc.clone());
        }
        let query_texts: Vec<String> = ds.queries.iter().map(|q| q.text.clone()).collect();
        Self { tokenizer, corpus, corpus_queries, query_texts, neighbors, jaccard_threshold }
    }

    /// Exact top-m cosine neighbors (indices into the corpus).
    fn top_neighbors(&self, query_vec: &[f32; DIM]) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = self
            .corpus
            .iter()
            .enumerate()
            .map(|(i, v)| (i, dot(query_vec, v)))
            .collect();
        let m = self.neighbors.min(scored.len());
        if m == 0 {
            return Vec::new();
        }
        scored.select_nth_unstable_by(m - 1, |a, b| b.1.partial_cmp(&a.1).unwrap());
        scored.truncate(m);
        scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        scored
    }

    fn token_jaccard(title_tokens: &FxHashSet<String>, phrase: &str, tokenizer: &Tokenizer) -> f64 {
        let phrase_tokens: FxHashSet<String> = tokenizer.tokenize(phrase).collect();
        if phrase_tokens.is_empty() || title_tokens.is_empty() {
            return 0.0;
        }
        let inter = phrase_tokens.intersection(title_tokens).count();
        inter as f64 / (phrase_tokens.len() + title_tokens.len() - inter) as f64
    }

    /// Corpus size (clicked listings embedded).
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }
}

impl Recommender for SlEmb {
    fn name(&self) -> &'static str {
        "SL-emb"
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        let vec = embed(&self.tokenizer, item.title);
        if vec.iter().all(|&x| x == 0.0) {
            return Vec::new();
        }
        let title_tokens: FxHashSet<String> = self.tokenizer.tokenize(item.title).collect();

        // Aggregate neighbor queries, weighted by neighbor similarity and
        // log-damped clicks.
        let mut scores: FxHashMap<u32, f64> = FxHashMap::default();
        for (idx, sim) in self.top_neighbors(&vec) {
            if sim <= 0.0 {
                continue;
            }
            for &(q, clicks) in &self.corpus_queries[idx] {
                *scores.entry(q).or_insert(0.0) += f64::from(sim) * (1.0 + f64::from(clicks)).ln();
            }
        }

        let mut ranked: Vec<(u32, f64)> = scores
            .into_iter()
            .filter(|&(q, _)| {
                Self::token_jaccard(&title_tokens, &self.query_texts[q as usize], &self.tokenizer)
                    >= self.jaccard_threshold
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(k)
            .map(|(q, score)| Rec { text: self.query_texts[q as usize].clone(), score })
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.corpus.len() * DIM * 4
            + self.corpus_queries.iter().map(|v| v.len() * 8 + 16).sum::<usize>()
            + self.query_texts.iter().map(|t| t.len() + 8).sum::<usize>()
    }

    fn cold_start_capable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::CategorySpec;

    fn setup() -> (CategoryDataset, SlEmb) {
        let ds = CategoryDataset::generate(CategorySpec::tiny(71));
        let sl = SlEmb::train(&ds, 10, 0.05);
        (ds, sl)
    }

    #[test]
    fn corpus_is_clicked_listings_only() {
        let (ds, sl) = setup();
        let clicked = ds.train_log.item_clicks.iter().filter(|a| !a.is_empty()).count();
        assert_eq!(sl.corpus_len(), clicked);
    }

    #[test]
    fn cold_start_works_from_title_alone() {
        let (ds, sl) = setup();
        // Take a clicked item's title as a "new" listing: similar listings
        // exist by construction.
        let clicked_item = ds.train_log.item_clicks.iter().position(|a| !a.is_empty()).unwrap();
        let title = &ds.marketplace.items[clicked_item].title;
        let recs = sl.recommend(&ItemRef::cold(title, ds.marketplace.items[clicked_item].leaf), 10);
        assert!(!recs.is_empty(), "no recs for {title:?}");
        assert!(sl.cold_start_capable());
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn empty_title_yields_nothing() {
        let (ds, sl) = setup();
        assert!(sl.recommend(&ItemRef::cold("", ds.marketplace.leaves[0].id), 10).is_empty());
    }

    #[test]
    fn jaccard_threshold_truncates() {
        let ds = CategoryDataset::generate(CategorySpec::tiny(71));
        let loose = SlEmb::train(&ds, 10, 0.0);
        let strict = SlEmb::train(&ds, 10, 0.5);
        let mut loose_total = 0;
        let mut strict_total = 0;
        for item in ds.test_items(60, 3) {
            let r = ItemRef::known(item.id, &item.title, item.leaf);
            loose_total += loose.recommend(&r, 40).len();
            strict_total += strict.recommend(&r, 40).len();
        }
        assert!(strict_total < loose_total, "{strict_total} !< {loose_total}");
    }

    #[test]
    fn recommendations_come_from_neighbor_click_sets() {
        let (ds, sl) = setup();
        let item = ds.test_items(1, 9)[0];
        let recs = sl.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 20);
        let all_clicked: FxHashSet<&str> = ds
            .train_log
            .item_clicks
            .iter()
            .flatten()
            .map(|&(q, _)| ds.queries[q as usize].text.as_str())
            .collect();
        for rec in recs {
            assert!(all_clicked.contains(rec.text.as_str()), "{} not from click log", rec.text);
        }
    }
}

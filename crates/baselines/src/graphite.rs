//! Graphite: the graph-based XMC predecessor of GraphEx (paper ref. \[6\]).
//!
//! Graphite maps words/tokens → training items, then items → the labels
//! (clicked queries) associated with them, both as bipartite graphs; it
//! ranks with the Word Match Ratio (WMR, Sec. IV-F1). Crucially it is
//! *click-trained*: its label space is the clicked-query set, so it
//! inherits the click-log biases — that is exactly the contrast with
//! GraphEx the paper draws.
//!
//! The two-hop structure makes it cold-start capable (any title with known
//! tokens reaches some training items), with inference cost proportional to
//! the token→item fan-out — hence the paper's Fig. 6a showing it slower
//! than GraphEx on the large category.

use crate::{ItemRef, Rec, Recommender};
use graphex_core::Alignment;
use graphex_marketsim::CategoryDataset;
use graphex_textkit::{FxHashMap, Tokenizer, Vocab};

/// Two-hop bipartite recommender.
#[derive(Debug)]
pub struct Graphite {
    tokenizer: Tokenizer,
    /// Global token vocabulary over training titles.
    tokens: Vocab,
    /// token id → training row indices whose title contains the token.
    token_items: Vec<Vec<u32>>,
    /// training row → (label id, clicks).
    item_labels: Vec<Vec<(u32, u32)>>,
    /// training row → distinct title token count.
    item_token_len: Vec<u16>,
    /// label id → (query text, distinct token count).
    labels: Vec<(String, u16)>,
    /// Per-token fan-out cap (keeps very common tokens from exploding the
    /// candidate set; Graphite's implementation prunes similarly).
    max_fanout: usize,
}

impl Graphite {
    /// Trains over the clicked listings of the log.
    pub fn train(ds: &CategoryDataset, max_fanout: usize) -> Self {
        let tokenizer = Tokenizer::default();
        let mut tokens = Vocab::new();
        let mut token_items: Vec<Vec<u32>> = Vec::new();
        let mut item_labels: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut item_token_len: Vec<u16> = Vec::new();
        let mut label_of_query: FxHashMap<u32, u32> = FxHashMap::default();
        let mut labels: Vec<(String, u16)> = Vec::new();
        let mut buf: Vec<String> = Vec::new();

        for (item_id, assoc) in ds.train_log.item_clicks.iter().enumerate() {
            if assoc.is_empty() {
                continue;
            }
            let row = item_labels.len() as u32;
            let item = &ds.marketplace.items[item_id];
            tokenizer.tokenize_into(&item.title, &mut buf);
            buf.sort_unstable();
            buf.dedup();
            item_token_len.push(buf.len().min(u16::MAX as usize) as u16);
            for tok in &buf {
                let id = tokens.intern(tok) as usize;
                if id == token_items.len() {
                    token_items.push(Vec::new());
                }
                token_items[id].push(row);
            }
            let lab: Vec<(u32, u32)> = assoc
                .iter()
                .map(|&(q, clicks)| {
                    let label = *label_of_query.entry(q).or_insert_with(|| {
                        let text = ds.queries[q as usize].text.clone();
                        let len = tokenizer.tokenize(&text).count().min(u16::MAX as usize) as u16;
                        labels.push((text, len));
                        (labels.len() - 1) as u32
                    });
                    (label, clicks)
                })
                .collect();
            item_labels.push(lab);
        }

        Self { tokenizer, tokens, token_items, item_labels, item_token_len, labels, max_fanout }
    }

    /// Number of training rows (clicked listings).
    pub fn num_rows(&self) -> usize {
        self.item_labels.len()
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }
}

impl Recommender for Graphite {
    fn name(&self) -> &'static str {
        "Graphite"
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        // Hop 1: title tokens → training items, counting shared tokens.
        let mut title_tokens: Vec<u32> = self
            .tokenizer
            .tokenize(item.title)
            .filter_map(|t| self.tokens.get(&t))
            .collect();
        title_tokens.sort_unstable();
        title_tokens.dedup();
        if title_tokens.is_empty() {
            return Vec::new();
        }
        let title_len = title_tokens.len() as f64;

        let mut item_hits: FxHashMap<u32, u32> = FxHashMap::default();
        for &tok in &title_tokens {
            let rows = &self.token_items[tok as usize];
            // fan-out cap: common tokens contribute their head rows only
            for &row in rows.iter().take(self.max_fanout) {
                *item_hits.entry(row).or_insert(0) += 1;
            }
        }

        // Keep the most-aligned training items (WMR over the title side).
        let mut ranked_items: Vec<(u32, f64)> = item_hits
            .into_iter()
            .map(|(row, c)| {
                let denom = f64::from(self.item_token_len[row as usize].max(1)) + title_len;
                (row, f64::from(c) * 2.0 / denom) // dice-style match of titles
            })
            .collect();
        ranked_items
            .sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        ranked_items.truncate(32);

        // Hop 2: items → labels, scored by carrier match and clicks, then
        // rank labels by WMR against the input title.
        let mut label_scores: FxHashMap<u32, f64> = FxHashMap::default();
        for &(row, item_score) in &ranked_items {
            for &(label, clicks) in &self.item_labels[row as usize] {
                *label_scores.entry(label).or_insert(0.0) +=
                    item_score * (1.0 + f64::from(clicks)).ln();
            }
        }

        let wmr = Alignment::Wmr;
        let mut out: Vec<(u32, f64, f64)> = label_scores
            .into_iter()
            .filter_map(|(label, carrier)| {
                let (text, len) = &self.labels[label as usize];
                let c = self
                    .tokenizer
                    .tokenize(text)
                    .filter(|t| self.tokens.get(t).is_some_and(|id| title_tokens.binary_search(&id).is_ok()))
                    .count() as u32;
                let score = wmr.score(c.min(u32::from(*len)), u32::from((*len).max(1)), title_len as u32);
                // Relevance truncation: labels sharing under half their
                // tokens with the title are dropped (the production model
                // truncates its candidate set the same way; without this
                // the two-hop expansion floods the output with carrier
                // co-clicks unrelated to the input).
                (score >= 0.5).then_some((label, score, carrier))
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| b.2.partial_cmp(&a.2).unwrap())
                .then_with(|| a.0.cmp(&b.0))
        });
        out.into_iter()
            .take(k)
            .map(|(label, score, _)| Rec { text: self.labels[label as usize].0.clone(), score })
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.token_items.iter().map(|v| v.len() * 4 + 16).sum::<usize>()
            + self.item_labels.iter().map(|v| v.len() * 8 + 16).sum::<usize>()
            + self.item_token_len.len() * 2
            + self.labels.iter().map(|(t, _)| t.len() + 10).sum::<usize>()
            + self.tokens.heap_bytes()
    }

    fn cold_start_capable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_marketsim::{CategoryDataset, CategorySpec};

    fn setup() -> (CategoryDataset, Graphite) {
        let ds = CategoryDataset::generate(CategorySpec::tiny(91));
        let g = Graphite::train(&ds, 256);
        (ds, g)
    }

    #[test]
    fn trains_on_clicked_rows_only() {
        let (ds, g) = setup();
        let clicked = ds.train_log.item_clicks.iter().filter(|a| !a.is_empty()).count();
        assert_eq!(g.num_rows(), clicked);
        assert!(g.num_labels() > 0);
    }

    #[test]
    fn predicts_for_training_item() {
        let (ds, g) = setup();
        let row_item = ds.train_log.item_clicks.iter().position(|a| !a.is_empty()).unwrap();
        let item = &ds.marketplace.items[row_item];
        let recs = g.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 10);
        assert!(!recs.is_empty());
        // Own clicked query should be among candidates (it shares the title
        // tokens of its own carrier row).
        let own: Vec<&str> = ds.train_log.item_clicks[row_item]
            .iter()
            .map(|&(q, _)| ds.queries[q as usize].text.as_str())
            .collect();
        assert!(
            recs.iter().any(|r| own.contains(&r.text.as_str())),
            "own clicked queries {own:?} missing from {recs:?}"
        );
    }

    #[test]
    fn cold_start_via_shared_tokens() {
        let (ds, g) = setup();
        let row_item = ds.train_log.item_clicks.iter().position(|a| !a.is_empty()).unwrap();
        let title = &ds.marketplace.items[row_item].title;
        let recs = g.recommend(&ItemRef::cold(title, ds.marketplace.items[row_item].leaf), 10);
        assert!(!recs.is_empty());
        assert!(g.cold_start_capable());
    }

    #[test]
    fn unknown_tokens_yield_nothing() {
        let (ds, g) = setup();
        assert!(g
            .recommend(&ItemRef::cold("zzzz yyyy xxxx unseen tokens", ds.marketplace.leaves[0].id), 10)
            .is_empty());
    }

    #[test]
    fn labels_are_click_queries_only() {
        let (ds, g) = setup();
        let clicked: std::collections::BTreeSet<&str> = ds
            .train_log
            .query_clicks
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(q, _)| ds.queries[q].text.as_str())
            .collect();
        for item in ds.test_items(40, 5) {
            for rec in g.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 20) {
                assert!(clicked.contains(rec.text.as_str()), "{} not a clicked query", rec.text);
            }
        }
    }

    #[test]
    fn ranking_is_sorted_by_wmr() {
        let (ds, g) = setup();
        let item = ds.test_items(1, 2)[0];
        let recs = g.recommend(&ItemRef::known(item.id, &item.title, item.leaf), 20);
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }
}

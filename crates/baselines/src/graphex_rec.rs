//! [`Recommender`] adapters over the core inference service, so the
//! evaluation harness can treat GraphEx — raw engine or a whole serving
//! stack — exactly like every baseline.

use crate::{ItemRef, Rec, Recommender};
use graphex_core::{Engine, GraphExModel, InferRequest, KeyphraseService};

/// GraphEx wrapped as a [`Recommender`].
///
/// The trait's `&self` signature requires interior scratch management; the
/// core [`Engine`] provides it (a lock-free-enough pooled [`graphex_core::Scratch`]
/// per concurrent caller, reused afterwards).
#[derive(Debug, Clone)]
pub struct GraphExRecommender {
    engine: Engine,
    /// Production prediction budget: the paper generates "a predetermined
    /// number of keyphrases (10–20)" per item (Sec. III-F) even when the
    /// evaluation allows up to 40; requests above this are clamped.
    max_k: usize,
}

impl GraphExRecommender {
    pub fn new(model: GraphExModel) -> Self {
        Self::with_budget(model, 20)
    }

    /// Recommender with an explicit per-item prediction budget.
    pub fn with_budget(model: GraphExModel, max_k: usize) -> Self {
        Self { engine: Engine::from_model(model), max_k: max_k.max(1) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &GraphExModel {
        self.engine.model()
    }

    /// The wrapped engine (shared scratch pool included).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl Recommender for GraphExRecommender {
    fn name(&self) -> &'static str {
        "GraphEx"
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        let request =
            InferRequest::new(item.title, item.leaf).k(k.min(self.max_k)).resolve_texts(true);
        let response = self.engine.infer(&request);
        let alignment = self.engine.model().alignment();
        response
            .texts
            .into_iter()
            .zip(&response.predictions)
            .map(|(text, p)| Rec { text, score: p.score(alignment) })
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.model().size_bytes()
    }

    fn cold_start_capable(&self) -> bool {
        true
    }
}

/// Any [`KeyphraseService`] exposed as a [`Recommender`], so the
/// evaluation harness can score a *serving stack* (e.g. the store-backed
/// `ServingApi`) with the same metrics as the models themselves.
///
/// Known items carry their id into the request (a store-backed service
/// uses it as the KV key); cold items go id-less and are computed
/// directly. By default `Rec::score` is rank-based (descending by
/// construction — a KV-served response carries texts, not per-prediction
/// attributes, and the adapter cannot see the service's default
/// alignment). [`ServiceRecommender::with_alignment`] pins an explicit
/// alignment instead: it rides every request (so the service *ranks* with
/// it) and, **whenever the response carries prediction attributes**
/// (always for an [`graphex_core::Engine`]; only freshly computed answers
/// for a store-backed service), scores them with the same function,
/// making those scores comparable with [`GraphExRecommender`]. KV-served
/// answers hold texts only, so they fall back to rank-based scores —
/// compare scores across recommenders only over attribute-carrying
/// services, or treat them as ordering, not magnitude.
pub struct ServiceRecommender<S> {
    service: S,
    name: &'static str,
    alignment: Option<graphex_core::Alignment>,
}

impl<S: KeyphraseService> ServiceRecommender<S> {
    pub fn new(name: &'static str, service: S) -> Self {
        Self { service, name, alignment: None }
    }

    /// Adapter that ranks *and* scores with an explicit alignment.
    pub fn with_alignment(
        name: &'static str,
        service: S,
        alignment: graphex_core::Alignment,
    ) -> Self {
        Self { service, name, alignment: Some(alignment) }
    }

    /// The wrapped service.
    pub fn service(&self) -> &S {
        &self.service
    }
}

impl<S: KeyphraseService> Recommender for ServiceRecommender<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        let mut request = InferRequest::new(item.title, item.leaf).k(k).resolve_texts(true);
        if let Some(id) = item.id {
            request = request.id(u64::from(id));
        }
        if let Some(alignment) = self.alignment {
            request = request.alignment(alignment);
        }
        let response = self.service.infer(&request);
        match self.alignment {
            // Attributes present and the ranking alignment is known →
            // real scores, consistent with the order the service used.
            Some(alignment) if response.predictions.len() == response.texts.len() => response
                .texts
                .into_iter()
                .zip(&response.predictions)
                .map(|(text, p)| Rec { text, score: p.score(alignment) })
                .collect(),
            // Texts only (store-served) or unknown alignment → rank-based
            // scores, monotonically descending by construction.
            _ => {
                let n = response.texts.len();
                response
                    .texts
                    .into_iter()
                    .enumerate()
                    .map(|(rank, text)| Rec { text, score: (n - rank) as f64 })
                    .collect()
            }
        }
    }

    fn size_bytes(&self) -> usize {
        0 // the service fronts a model measured elsewhere
    }

    fn cold_start_capable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};

    fn recommender() -> GraphExRecommender {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let model = GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
            ])
            .build()
            .unwrap();
        GraphExRecommender::new(model)
    }

    #[test]
    fn adapter_matches_direct_inference() {
        let rec = recommender();
        let item = ItemRef::cold("audeze maxwell gaming headphones xbox", LeafId(7));
        let recs = rec.recommend(&item, 5);
        let direct = rec
            .engine()
            .infer(&InferRequest::new(item.title, item.leaf).k(5).resolve_texts(true));
        assert_eq!(recs.len(), direct.texts.len());
        for (r, text) in recs.iter().zip(&direct.texts) {
            assert_eq!(&r.text, text);
        }
        assert_eq!(rec.name(), "GraphEx");
        assert!(rec.cold_start_capable());
        assert!(rec.size_bytes() > 0);
    }

    #[test]
    fn pool_reuse_is_correct_across_calls() {
        let rec = recommender();
        let item = ItemRef::cold("audeze maxwell gaming headphones xbox", LeafId(7));
        let first = rec.recommend(&item, 5);
        for _ in 0..10 {
            assert_eq!(rec.recommend(&item, 5), first);
        }
    }

    #[test]
    fn concurrent_callers() {
        let rec = std::sync::Arc::new(recommender());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                let item = ItemRef::cold("audeze maxwell gaming headphones xbox", LeafId(7));
                for _ in 0..100 {
                    assert_eq!(rec.recommend(&item, 5).len(), 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn service_recommender_over_an_engine() {
        let rec = recommender();
        let via_service = ServiceRecommender::new("GraphEx(service)", rec.engine().clone());
        let item = ItemRef::known(3, "audeze maxwell gaming headphones xbox", LeafId(7));
        let a = rec.recommend(&item, 5);
        let b = via_service.recommend(&item, 5);
        assert_eq!(
            a.iter().map(|r| &r.text).collect::<Vec<_>>(),
            b.iter().map(|r| &r.text).collect::<Vec<_>>()
        );
        // Rank-based scores are descending by construction.
        for w in b.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(via_service.name(), "GraphEx(service)");
        assert!(via_service.cold_start_capable());
    }

    #[test]
    fn service_recommender_with_alignment_matches_direct_scores() {
        use graphex_core::Alignment;
        let rec = recommender(); // model default alignment is LTA
        let via_service = ServiceRecommender::with_alignment(
            "GraphEx(service)",
            rec.engine().clone(),
            Alignment::Lta,
        );
        let item = ItemRef::known(3, "audeze maxwell gaming headphones xbox", LeafId(7));
        let a = rec.recommend(&item, 5);
        let b = via_service.recommend(&item, 5);
        assert_eq!(a, b, "same alignment → identical texts and scores");
        for w in b.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}

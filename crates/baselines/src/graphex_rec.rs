//! [`Recommender`] adapter over a [`graphex_core::GraphExModel`], so the
//! evaluation harness can treat GraphEx exactly like every baseline.

use crate::{ItemRef, Rec, Recommender};
use graphex_core::{GraphExModel, InferenceParams};
use parking_lot_free_scratch::ScratchPool;

/// GraphEx wrapped as a [`Recommender`].
///
/// The trait's `&self` signature requires interior scratch management; a
/// tiny lock-free pool hands one [`graphex_core::Scratch`] per concurrent
/// caller and reuses them afterwards.
#[derive(Debug)]
pub struct GraphExRecommender {
    model: GraphExModel,
    scratch: ScratchPool,
    /// Production prediction budget: the paper generates "a predetermined
    /// number of keyphrases (10–20)" per item (Sec. III-F) even when the
    /// evaluation allows up to 40; requests above this are clamped.
    max_k: usize,
}

impl GraphExRecommender {
    pub fn new(model: GraphExModel) -> Self {
        Self::with_budget(model, 20)
    }

    /// Recommender with an explicit per-item prediction budget.
    pub fn with_budget(model: GraphExModel, max_k: usize) -> Self {
        Self { model, scratch: ScratchPool::new(), max_k: max_k.max(1) }
    }

    /// The wrapped model.
    pub fn model(&self) -> &GraphExModel {
        &self.model
    }
}

impl Recommender for GraphExRecommender {
    fn name(&self) -> &'static str {
        "GraphEx"
    }

    fn recommend(&self, item: &ItemRef<'_>, k: usize) -> Vec<Rec> {
        let mut scratch = self.scratch.take();
        let k = k.min(self.max_k);
        let preds = self
            .model
            .infer(item.title, item.leaf, &InferenceParams::with_k(k), &mut scratch)
            .unwrap_or_default();
        let alignment = self.model.alignment();
        let out = preds
            .iter()
            .map(|p| Rec {
                text: self.model.keyphrase_text(p.keyphrase).unwrap_or_default().to_string(),
                score: p.score(alignment),
            })
            .collect();
        self.scratch.give(scratch);
        out
    }

    fn size_bytes(&self) -> usize {
        self.model.size_bytes()
    }

    fn cold_start_capable(&self) -> bool {
        true
    }
}

/// Minimal lock-free object pool for `Scratch` reuse under `&self`.
mod parking_lot_free_scratch {
    use graphex_core::Scratch;
    use std::sync::Mutex;

    /// Mutex-guarded stack of scratches. The lock is held only for the
    /// push/pop, never across an inference, so contention is negligible
    /// next to inference work.
    #[derive(Debug, Default)]
    pub struct ScratchPool {
        pool: Mutex<Vec<Scratch>>,
    }

    impl ScratchPool {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn take(&self) -> Scratch {
            self.pool.lock().expect("scratch pool poisoned").pop().unwrap_or_default()
        }

        pub fn give(&self, scratch: Scratch) {
            let mut pool = self.pool.lock().expect("scratch pool poisoned");
            if pool.len() < 64 {
                pool.push(scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};

    fn recommender() -> GraphExRecommender {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let model = GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("audeze maxwell", LeafId(7), 900, 120),
                KeyphraseRecord::new("gaming headphones xbox", LeafId(7), 800, 700),
            ])
            .build()
            .unwrap();
        GraphExRecommender::new(model)
    }

    #[test]
    fn adapter_matches_direct_inference() {
        let rec = recommender();
        let item = ItemRef::cold("audeze maxwell gaming headphones xbox", LeafId(7));
        let recs = rec.recommend(&item, 5);
        let direct = rec.model().infer_simple(item.title, item.leaf, 5);
        assert_eq!(recs.len(), direct.len());
        for (r, p) in recs.iter().zip(&direct) {
            assert_eq!(r.text, rec.model().keyphrase_text(p.keyphrase).unwrap());
        }
        assert_eq!(rec.name(), "GraphEx");
        assert!(rec.cold_start_capable());
        assert!(rec.size_bytes() > 0);
    }

    #[test]
    fn pool_reuse_is_correct_across_calls() {
        let rec = recommender();
        let item = ItemRef::cold("audeze maxwell gaming headphones xbox", LeafId(7));
        let first = rec.recommend(&item, 5);
        for _ in 0..10 {
            assert_eq!(rec.recommend(&item, 5), first);
        }
    }

    #[test]
    fn concurrent_callers() {
        let rec = std::sync::Arc::new(recommender());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                let item = ItemRef::cold("audeze maxwell gaming headphones xbox", LeafId(7));
                for _ in 0..100 {
                    assert_eq!(rec.recommend(&item, 5).len(), 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

//! Churn-driven keyphrase corpus: the build pipeline's synthetic data
//! source.
//!
//! The paper's operational story (Sec. I-A4, IV-G) is a *daily rebuild*
//! against a query universe that churns ~2 % per day. [`ChurnCorpus`]
//! materializes exactly that: a seeded marketplace whose query universe
//! evolves generation over generation via [`crate::churn::evolve_queries`],
//! emitting the keyphrase records a search-log aggregation job would hand
//! the builder each day.
//!
//! Counts are derived deterministically from stable query properties
//! (demand weight and text), **not** from re-simulated sessions, so a
//! query that survives a churn step emits an *identical* record the next
//! generation. That is the property incremental (delta) builds exercise:
//! only the leaves actually touched by churn change fingerprints, and a
//! delta build must reconstruct exactly those.

use crate::catalog::{CategorySpec, Marketplace};
use crate::churn::{evolve_queries, ChurnReport};
use crate::queries::{generate_queries, Query};
use graphex_core::KeyphraseRecord;

/// A query universe evolving by daily churn, emitting per-generation
/// keyphrase records.
#[derive(Debug)]
pub struct ChurnCorpus {
    marketplace: Marketplace,
    queries: Vec<Query>,
    rate: f64,
    generation: u32,
    last_report: Option<ChurnReport>,
}

impl ChurnCorpus {
    /// Generation 0 of a corpus: the spec's full query universe, before
    /// any churn. `rate` is the per-generation churn fraction (the paper
    /// cites 2 % daily; tests often use more to touch more leaves).
    pub fn new(spec: CategorySpec, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "churn rate must be in [0,1]");
        let marketplace = Marketplace::generate(spec);
        let queries = generate_queries(&marketplace);
        Self { marketplace, queries, rate, generation: 0, last_report: None }
    }

    /// The generation this corpus is at (0 = pre-churn).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// What the most recent [`ChurnCorpus::advance`] did.
    pub fn last_report(&self) -> Option<ChurnReport> {
        self.last_report
    }

    /// The backing marketplace (for oracles and serving traffic).
    pub fn marketplace(&self) -> &Marketplace {
        &self.marketplace
    }

    /// Evolves the universe by one generation ("day"). Deterministic: the
    /// churn seed is derived from the marketplace seed and the generation
    /// number, so generation `n` of two identically-specced corpora is
    /// identical.
    pub fn advance(&mut self) -> ChurnReport {
        self.generation += 1;
        let seed = self.marketplace.spec.seed ^ (0x0C0D_u64 << 16) ^ u64::from(self.generation);
        let (evolved, report) = evolve_queries(&self.marketplace, &self.queries, self.rate, seed);
        self.queries = evolved;
        self.last_report = Some(report);
        report
    }

    /// Advances until the corpus reaches `generation` (no-op if already
    /// there or past).
    pub fn advance_to(&mut self, generation: u32) {
        while self.generation < generation {
            self.advance();
        }
    }

    /// The current generation's keyphrase records — what the daily
    /// aggregation job would feed the build pipeline.
    ///
    /// Search counts scale the query's demand weight; recall counts hash
    /// the query text. Both are functions of properties churn preserves
    /// for surviving queries, so an untouched query yields a bit-identical
    /// record every generation.
    pub fn records(&self) -> Vec<KeyphraseRecord> {
        self.queries
            .iter()
            .map(|q| {
                KeyphraseRecord::new(
                    q.text.clone(),
                    q.leaf,
                    search_count_of(q),
                    recall_count_of(&q.text),
                )
            })
            .collect()
    }

    /// Number of queries in the current universe.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

fn search_count_of(q: &Query) -> u32 {
    // Zipf-shaped weights land roughly in (0, 20]; scale into a
    // plausible 6-month search-count range.
    (q.weight * 40.0).ceil().max(1.0) as u32
}

fn recall_count_of(text: &str) -> u32 {
    // FNV-1a of the text: stable across generations and re-ids.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    (hash % 5000) as u32 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_are_deterministic() {
        let mut a = ChurnCorpus::new(CategorySpec::tiny(77), 0.1);
        let mut b = ChurnCorpus::new(CategorySpec::tiny(77), 0.1);
        a.advance_to(3);
        b.advance();
        b.advance();
        b.advance();
        assert_eq!(a.generation(), 3);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn surviving_queries_emit_identical_records() {
        let mut corpus = ChurnCorpus::new(CategorySpec::tiny(78), 0.1);
        let before = corpus.records();
        let report = corpus.advance();
        assert!(report.removed + report.added > 0, "churn did nothing");
        let after = corpus.records();
        let index: std::collections::HashMap<&str, &KeyphraseRecord> =
            before.iter().map(|r| (r.text.as_str(), r)).collect();
        let mut survived = 0usize;
        for rec in &after {
            if let Some(prev) = index.get(rec.text.as_str()) {
                assert_eq!(&rec, prev, "surviving query changed its record");
                survived += 1;
            }
        }
        assert!(survived > 0);
        assert!(survived < after.len(), "no new queries appeared");
    }

    #[test]
    fn records_are_buildable() {
        let corpus = ChurnCorpus::new(CategorySpec::tiny(79), 0.05);
        let mut config = graphex_core::GraphExConfig::default();
        config.curation.min_search_count = 1;
        let model = graphex_core::GraphExBuilder::new(config)
            .add_records(corpus.records())
            .build()
            .unwrap();
        assert!(model.num_keyphrases() > 0);
    }
}

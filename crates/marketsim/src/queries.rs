//! Buyer query universe.
//!
//! Queries derive from the same product archetypes as item titles, in the
//! shapes real e-commerce query logs show: generic type queries
//! ("gaming headphones" — head), branded type queries, product-line queries
//! ("audeze maxwell"), and attribute-qualified variants (tail). Every query
//! carries its generative **constraint**, which is what makes ground-truth
//! relevance decidable later.

use crate::catalog::Marketplace;
use graphex_core::LeafId;
use graphex_textkit::FxHashMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The semantic constraint a query imposes on matching items.
///
/// An item satisfies the constraint iff **all** present components match
/// its product archetype. A `product` pin (the query names the product
/// line) implies brand/type/attrs of that product, so the other fields are
/// left empty in that case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryConstraint {
    /// Query names a specific product line → only that product matches.
    pub product: Option<u32>,
    /// Required product type (leaf-local type index) for non-pinned queries.
    pub type_idx: Option<u32>,
    /// Required brand.
    pub brand: Option<u32>,
    /// Required attribute tokens.
    pub attrs: Vec<String>,
}

/// One buyer query (keyphrase).
#[derive(Debug, Clone)]
pub struct Query {
    pub id: u32,
    pub text: String,
    /// Leaf category Cassini assigns (same as the archetype's leaf).
    pub leaf: LeafId,
    pub constraint: QueryConstraint,
    /// Latent demand weight used to sample sessions; observed search counts
    /// come out of the simulated log, not from this.
    pub weight: f64,
}

/// Generates the query universe for a marketplace. Deterministic given the
/// marketplace (seeded off `spec.seed`). Queries are deduplicated by text.
pub fn generate_queries(mp: &Marketplace) -> Vec<Query> {
    let mut rng = SmallRng::seed_from_u64(mp.spec.seed ^ 0x5EED_0001);
    let mut queries: Vec<Query> = Vec::new();
    let mut by_text: FxHashMap<String, u32> = FxHashMap::default();

    let push = |text: String, leaf: LeafId, constraint: QueryConstraint, weight: f64, by_text: &mut FxHashMap<String, u32>, queries: &mut Vec<Query>| {
        if let Some(&existing) = by_text.get(&text) {
            // Same text can be emitted for several products of one brand;
            // the constraint is identical by construction — just add demand.
            queries[existing as usize].weight += weight;
            return;
        }
        let id = queries.len() as u32;
        by_text.insert(text.clone(), id);
        queries.push(Query { id, text, leaf, constraint, weight });
    };

    // Leaf-level demand skew: some leaves are simply busier.
    let leaf_demand: Vec<f64> = (0..mp.leaves.len()).map(|_| rng.gen_range(0.3..1.0)).collect();

    // Attributes that actually occur on products of each (leaf, type): a
    // curated query always has positive recall, so attribute-qualified
    // queries may only use facets some product carries.
    let mut type_attrs: FxHashMap<(LeafId, u32), std::collections::BTreeSet<String>> =
        FxHashMap::default();
    for product in &mp.products {
        type_attrs
            .entry((product.leaf, product.type_idx))
            .or_default()
            .extend(product.attrs.iter().cloned());
    }

    for (leaf_pos, leaf) in mp.leaves.iter().enumerate() {
        let demand = leaf_demand[leaf_pos];
        // 1. Generic type queries — the head of the distribution. Only for
        //    types some product actually has (zero-recall queries are never
        //    curated).
        for (type_idx, type_tokens) in leaf.type_pool.iter().enumerate() {
            let Some(attrs) = type_attrs.get(&(leaf.id, type_idx as u32)) else { continue };
            push(
                type_tokens.join(" "),
                leaf.id,
                QueryConstraint { product: None, type_idx: Some(type_idx as u32), brand: None, attrs: vec![] },
                60.0 * demand,
                &mut by_text,
                &mut queries,
            );
            // Attribute-qualified type queries over real facets.
            for attr in attrs.iter().take(4) {
                push(
                    format!("{attr} {}", type_tokens.join(" ")),
                    leaf.id,
                    QueryConstraint {
                        product: None,
                        type_idx: Some(type_idx as u32),
                        brand: None,
                        attrs: vec![attr.clone()],
                    },
                    6.0 * demand,
                    &mut by_text,
                    &mut queries,
                );
            }
        }
    }

    for product in &mp.products {
        let leaf_pos = (product.leaf.0 - mp.spec.leaf_id_base) as usize;
        let demand = leaf_demand[leaf_pos] * (0.2 + product.popularity);
        let brand = mp.brand_token(product).to_string();
        let type_tokens = mp.type_tokens(product).join(" ");
        let line = product.line.join(" ");

        // 2. brand + type ("audeze headphones") — head-ish.
        push(
            format!("{brand} {type_tokens}"),
            product.leaf,
            QueryConstraint {
                product: None,
                type_idx: Some(product.type_idx),
                brand: Some(product.brand),
                attrs: vec![],
            },
            14.0 * demand,
            &mut by_text,
            &mut queries,
        );

        // 3. brand + line ("audeze maxwell") — product-pinned.
        push(
            format!("{brand} {line}"),
            product.leaf,
            QueryConstraint { product: Some(product.id), type_idx: None, brand: None, attrs: vec![] },
            8.0 * demand,
            &mut by_text,
            &mut queries,
        );

        // 4. line + type ("maxwell headphones").
        if rng.gen_bool(0.8) {
            push(
                format!("{line} {type_tokens}"),
                product.leaf,
                QueryConstraint { product: Some(product.id), type_idx: None, brand: None, attrs: vec![] },
                4.0 * demand,
                &mut by_text,
                &mut queries,
            );
        }

        // 5. brand + attr + type — tail.
        if let Some(attr) = product.attrs.first() {
            if rng.gen_bool(0.7) {
                push(
                    format!("{brand} {attr} {type_tokens}"),
                    product.leaf,
                    QueryConstraint {
                        product: None,
                        type_idx: Some(product.type_idx),
                        brand: Some(product.brand),
                        attrs: vec![attr.clone()],
                    },
                    1.5 * demand,
                    &mut by_text,
                    &mut queries,
                );
            }
        }

        // 6. full spec: brand + line + type — tail.
        if rng.gen_bool(0.5) {
            push(
                format!("{brand} {line} {type_tokens}"),
                product.leaf,
                QueryConstraint { product: Some(product.id), type_idx: None, brand: None, attrs: vec![] },
                1.0 * demand,
                &mut by_text,
                &mut queries,
            );
        }

        // 7. bare line query ("maxwell") — sparse tail.
        if rng.gen_bool(0.25) {
            push(
                line.clone(),
                product.leaf,
                QueryConstraint { product: Some(product.id), type_idx: None, brand: None, attrs: vec![] },
                0.8 * demand,
                &mut by_text,
                &mut queries,
            );
        }
    }

    queries
}

/// Precomputed retrieval structures: per query, the full matching item set
/// size (recall count) and the top-of-ranking SRP page.
#[derive(Debug)]
pub struct QueryIndex {
    /// Recall count per query (paper Sec. III-B).
    pub recall: Vec<u32>,
    /// SRP page: up to `srp_len` matching items, popularity-ranked. This cap
    /// *is* the exposure bias — items beyond it are never seen.
    pub srp: Vec<Vec<u32>>,
}

/// SRP page length (how many results a buyer can see/scroll).
pub const SRP_LEN: usize = 50;

/// Does `item`'s archetype satisfy `q`'s constraint?
pub fn matches(mp: &Marketplace, q: &Query, item_product: u32) -> bool {
    let product = &mp.products[item_product as usize];
    if product.leaf != q.leaf {
        return false;
    }
    let c = &q.constraint;
    if let Some(pin) = c.product {
        return pin == item_product;
    }
    if let Some(t) = c.type_idx {
        if product.type_idx != t {
            return false;
        }
    }
    if let Some(b) = c.brand {
        if product.brand != b {
            return false;
        }
    }
    c.attrs.iter().all(|a| product.attrs.binary_search(a).is_ok())
}

/// Builds the [`QueryIndex`] by ranking each query's matching items by
/// popularity (the simulated search engine's ranking function — the source
/// of position/popularity bias).
pub fn build_index(mp: &Marketplace, queries: &[Query]) -> QueryIndex {
    // Product → queries it can match is the expensive direction; instead we
    // match at product granularity: constraint checks depend only on the
    // product archetype, so compute matching products per query, then expand
    // to items.
    let mut recall = Vec::with_capacity(queries.len());
    let mut srp = Vec::with_capacity(queries.len());
    // Group products by leaf for cheap candidate enumeration.
    let mut leaf_products: FxHashMap<LeafId, Vec<u32>> = FxHashMap::default();
    for p in &mp.products {
        leaf_products.entry(p.leaf).or_default().push(p.id);
    }

    let mut page: Vec<u32> = Vec::new();
    for q in queries {
        page.clear();
        let mut matched_items = 0u32;
        if let Some(pin) = q.constraint.product {
            matched_items = mp.product_items[pin as usize].len() as u32;
            page.extend_from_slice(&mp.product_items[pin as usize]);
        } else if let Some(candidates) = leaf_products.get(&q.leaf) {
            for &pid in candidates {
                if matches(mp, q, pid) {
                    matched_items += mp.product_items[pid as usize].len() as u32;
                    page.extend_from_slice(&mp.product_items[pid as usize]);
                }
            }
        }
        // Rank by item popularity, keep the visible page.
        page.sort_unstable_by(|&a, &b| {
            mp.items[b as usize]
                .popularity
                .partial_cmp(&mp.items[a as usize].popularity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        page.truncate(SRP_LEN);
        recall.push(matched_items);
        srp.push(page.clone());
    }
    QueryIndex { recall, srp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CategorySpec;

    fn setup() -> (Marketplace, Vec<Query>) {
        let mp = Marketplace::generate(CategorySpec::tiny(11));
        let qs = generate_queries(&mp);
        (mp, qs)
    }

    #[test]
    fn queries_are_unique_by_text() {
        let (_, qs) = setup();
        let mut texts: Vec<&str> = qs.iter().map(|q| q.text.as_str()).collect();
        let before = texts.len();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(before, texts.len());
        assert!(before > 50, "too few queries generated: {before}");
    }

    #[test]
    fn generation_is_deterministic() {
        let mp = Marketplace::generate(CategorySpec::tiny(11));
        let a = generate_queries(&mp);
        let b = generate_queries(&mp);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text && x.weight == y.weight));
    }

    #[test]
    fn pinned_queries_match_only_their_product() {
        let (mp, qs) = setup();
        let pinned = qs.iter().find(|q| q.constraint.product.is_some()).unwrap();
        let pin = pinned.constraint.product.unwrap();
        for p in &mp.products {
            assert_eq!(matches(&mp, pinned, p.id), p.id == pin);
        }
    }

    #[test]
    fn generic_queries_match_all_products_of_type() {
        let (mp, qs) = setup();
        let generic = qs
            .iter()
            .find(|q| q.constraint.product.is_none() && q.constraint.brand.is_none() && q.constraint.attrs.is_empty())
            .unwrap();
        let t = generic.constraint.type_idx.unwrap();
        for p in mp.products.iter().filter(|p| p.leaf == generic.leaf) {
            assert_eq!(matches(&mp, generic, p.id), p.type_idx == t);
        }
    }

    #[test]
    fn index_recall_counts_items_not_products() {
        let (mp, qs) = setup();
        let index = build_index(&mp, &qs);
        for q in &qs {
            let brute: u32 = mp
                .items
                .iter()
                .filter(|item| matches(&mp, q, item.product))
                .count() as u32;
            assert_eq!(index.recall[q.id as usize], brute, "query {:?}", q.text);
        }
    }

    #[test]
    fn srp_is_popularity_ranked_and_capped() {
        let (mp, qs) = setup();
        let index = build_index(&mp, &qs);
        for q in &qs {
            let page = &index.srp[q.id as usize];
            assert!(page.len() <= SRP_LEN);
            for w in page.windows(2) {
                assert!(mp.items[w[0] as usize].popularity >= mp.items[w[1] as usize].popularity);
            }
            for &iid in page {
                assert!(matches(&mp, q, mp.items[iid as usize].product));
            }
        }
    }

    #[test]
    fn head_generic_queries_have_more_weight() {
        let (_, qs) = setup();
        let generic_avg: f64 = {
            let g: Vec<f64> =
                qs.iter().filter(|q| q.constraint.type_idx.is_some() && q.constraint.brand.is_none() && q.constraint.attrs.is_empty()).map(|q| q.weight).collect();
            g.iter().sum::<f64>() / g.len() as f64
        };
        let pinned_avg: f64 = {
            let p: Vec<f64> = qs.iter().filter(|q| q.constraint.product.is_some()).map(|q| q.weight).collect();
            p.iter().sum::<f64>() / p.len() as f64
        };
        assert!(generic_avg > pinned_avg * 2.0, "generic {generic_avg} vs pinned {pinned_avg}");
    }
}

//! Deterministic pronounceable-word generator.
//!
//! Synthetic brands, product lines and attributes need token-shaped words
//! that (a) are reproducible from a seed, (b) rarely collide, and (c) look
//! enough like product vocabulary that tokenization/stemming behave as they
//! would on real titles.

use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashSet;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "k", "kl", "l", "m", "n", "p", "pr",
    "qu", "r", "s", "sh", "st", "t", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ae", "ia", "io"];
const CODAS: &[&str] = &["", "n", "r", "s", "x", "l", "m", "k", "t", "d"];

/// Generates unique pronounceable words from a shared RNG.
#[derive(Debug)]
pub struct WordGen {
    used: HashSet<String>,
}

impl WordGen {
    pub fn new() -> Self {
        Self { used: HashSet::new() }
    }

    /// One random syllable.
    fn syllable(rng: &mut SmallRng) -> String {
        let mut s = String::new();
        s.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        s.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        s.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        s
    }

    /// A fresh word of `syllables` syllables, guaranteed distinct from all
    /// previously generated words (a numeric suffix breaks rare collisions).
    pub fn word(&mut self, rng: &mut SmallRng, syllables: usize) -> String {
        for _ in 0..64 {
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(&Self::syllable(rng));
            }
            if self.used.insert(w.clone()) {
                return w;
            }
        }
        // Pathologically unlucky: disambiguate deterministically.
        let mut w = Self::syllable(rng);
        let mut i = self.used.len();
        loop {
            let candidate = format!("{w}{i}");
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
            i += 1;
            w = Self::syllable(rng);
        }
    }

    /// Number of words handed out.
    pub fn count(&self) -> usize {
        self.used.len()
    }
}

impl Default for WordGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_unique() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut gen = WordGen::new();
        let words: Vec<String> = (0..5000).map(|_| gen.word(&mut rng, 2)).collect();
        let set: HashSet<&String> = words.iter().collect();
        assert_eq!(set.len(), words.len());
        assert_eq!(gen.count(), words.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut gen = WordGen::new();
            (0..50).map(|_| gen.word(&mut rng, 2)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn words_are_lowercase_alpha_mostly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut gen = WordGen::new();
        for _ in 0..200 {
            let w = gen.word(&mut rng, 2);
            assert!(w.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()), "{w}");
            assert!(!w.is_empty());
        }
    }
}

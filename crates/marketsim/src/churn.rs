//! Query-universe churn (paper Sec. I-A4).
//!
//! "The XMC tagging models are required to be regularly updated (preferably
//! daily) to keep up with the churn of new queries (2 % churn every day)."
//! This module evolves a query universe day over day — tail queries fade,
//! fresh variants appear — so daily-refresh behaviour (the reason GraphEx's
//! minutes-long construction matters) can be exercised in tests, examples
//! and benches.

use crate::catalog::Marketplace;
use crate::queries::{Query, QueryConstraint};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What one churn step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnReport {
    pub retained: usize,
    pub removed: usize,
    pub added: usize,
}

/// Evolves the query universe by one "day": roughly `rate` of the queries
/// are replaced — removals biased toward the tail (head demand is stable),
/// additions are fresh attribute/brand variants of existing products.
///
/// Ids are reassigned densely in the returned universe (queries are a
/// snapshot, not an identity), which mirrors the daily re-aggregation of
/// the search logs.
pub fn evolve_queries(
    mp: &Marketplace,
    queries: &[Query],
    rate: f64,
    seed: u64,
) -> (Vec<Query>, ChurnReport) {
    assert!((0.0..=1.0).contains(&rate), "churn rate must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let target_changes = ((queries.len() as f64) * rate).round() as usize;

    // Removal probability inversely proportional to demand weight: the
    // median-weight query is ~2x more likely to fade than a 2x-weight one.
    let mut weights: Vec<f64> = queries.iter().map(|q| q.weight).collect();
    weights.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let median = weights[weights.len() / 2].max(1e-9);

    let mut retained: Vec<Query> = Vec::with_capacity(queries.len());
    let mut removed = 0usize;
    for q in queries {
        let fade = (median / q.weight.max(1e-9)).min(4.0) * rate;
        if removed < target_changes && rng.gen_bool(fade.clamp(0.0, 1.0)) {
            removed += 1;
        } else {
            retained.push(q.clone());
        }
    }

    // Additions: new attribute-qualified variants of random products (the
    // realistic source of new queries: sellers/buyers discover new facets).
    let existing: std::collections::HashSet<String> =
        retained.iter().map(|q| q.text.clone()).collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < target_changes && attempts < target_changes * 20 {
        attempts += 1;
        let product = &mp.products[rng.gen_range(0..mp.products.len())];
        if product.attrs.is_empty() {
            continue;
        }
        let attr = &product.attrs[rng.gen_range(0..product.attrs.len())];
        let brand = mp.brand_token(product);
        let type_tokens = mp.type_tokens(product).join(" ");
        let (text, constraint) = if rng.gen_bool(0.5) {
            (
                format!("{attr} {} {type_tokens}", product.line.join(" ")),
                QueryConstraint {
                    product: Some(product.id),
                    type_idx: None,
                    brand: None,
                    attrs: vec![],
                },
            )
        } else {
            (
                format!("{brand} {attr} {type_tokens}"),
                QueryConstraint {
                    product: None,
                    type_idx: Some(product.type_idx),
                    brand: Some(product.brand),
                    attrs: vec![attr.clone()],
                },
            )
        };
        if existing.contains(&text) || retained.iter().any(|q| q.text == text) {
            continue;
        }
        retained.push(Query {
            id: 0, // reassigned below
            text,
            leaf: product.leaf,
            constraint,
            weight: (0.2 + product.popularity) * rng.gen_range(0.5..2.0),
        });
        added += 1;
    }

    // Dense re-id.
    for (i, q) in retained.iter_mut().enumerate() {
        q.id = i as u32;
    }
    let report = ChurnReport { retained: retained.len() - added, removed, added };
    (retained, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CategorySpec;
    use crate::queries::generate_queries;

    fn setup() -> (Marketplace, Vec<Query>) {
        let mp = Marketplace::generate(CategorySpec::tiny(121));
        let qs = generate_queries(&mp);
        (mp, qs)
    }

    #[test]
    fn churn_rate_is_approximately_respected() {
        let (mp, qs) = setup();
        let (evolved, report) = evolve_queries(&mp, &qs, 0.02, 1);
        let rate = report.removed as f64 / qs.len() as f64;
        assert!(rate <= 0.03, "removed too many: {rate}");
        assert!(report.added <= (qs.len() as f64 * 0.02).round() as usize);
        assert_eq!(report.retained + report.added, evolved.len());
    }

    #[test]
    fn removals_bias_toward_tail() {
        let (mp, qs) = setup();
        let (evolved, _) = evolve_queries(&mp, &qs, 0.2, 2);
        let surviving: std::collections::HashSet<&str> =
            evolved.iter().map(|q| q.text.as_str()).collect();
        let (mut head_removed, mut tail_removed) = (0usize, 0usize);
        let mut weights: Vec<f64> = qs.iter().map(|q| q.weight).collect();
        weights.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = weights[weights.len() / 2];
        for q in &qs {
            if !surviving.contains(q.text.as_str()) {
                if q.weight >= median {
                    head_removed += 1;
                } else {
                    tail_removed += 1;
                }
            }
        }
        assert!(tail_removed > head_removed, "tail {tail_removed} vs head {head_removed}");
    }

    #[test]
    fn ids_stay_dense_and_unique_texts() {
        let (mp, qs) = setup();
        let (evolved, _) = evolve_queries(&mp, &qs, 0.1, 3);
        for (i, q) in evolved.iter().enumerate() {
            assert_eq!(q.id as usize, i);
        }
        let texts: std::collections::HashSet<&str> =
            evolved.iter().map(|q| q.text.as_str()).collect();
        assert_eq!(texts.len(), evolved.len());
    }

    #[test]
    fn zero_rate_is_identity() {
        let (mp, qs) = setup();
        let (evolved, report) = evolve_queries(&mp, &qs, 0.0, 4);
        assert_eq!(evolved.len(), qs.len());
        assert_eq!(report.removed, 0);
        assert_eq!(report.added, 0);
    }

    #[test]
    fn new_queries_are_oracle_decidable() {
        // Added queries must carry valid constraints so the oracle keeps
        // working after churn.
        let (mp, qs) = setup();
        let (evolved, report) = evolve_queries(&mp, &qs, 0.3, 5);
        assert!(report.added > 0);
        let oracle_queries = evolved.clone();
        let oracle = crate::oracle::RelevanceOracle::new(&mp, &oracle_queries);
        // Every query relevant to at least the items of a matching product.
        let mut decidable = 0usize;
        for q in evolved.iter().rev().take(report.added) {
            let any_relevant = mp.items.iter().take(500).any(|i| oracle.is_relevant(i, &q.text));
            if any_relevant {
                decidable += 1;
            }
        }
        assert!(decidable > 0, "no new query matches any item");
    }

    #[test]
    fn daily_refresh_cycle_with_graphex() {
        // Day 0 → churn → Day 1: rebuilding GraphEx picks up the new
        // queries (the paper's daily-refresh story).
        use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord};
        let (mp, qs) = setup();
        let (evolved, report) = evolve_queries(&mp, &qs, 0.25, 6);
        assert!(report.added > 0);
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let records: Vec<KeyphraseRecord> = evolved
            .iter()
            .map(|q| KeyphraseRecord::new(q.text.clone(), q.leaf, q.weight.ceil() as u32, 10))
            .collect();
        let model = GraphExBuilder::new(config).add_records(records).build().unwrap();
        // A brand-new query is recommendable the same day.
        let new_q = &evolved[evolved.len() - 1];
        assert!(model.keyphrase_id(&new_q.text).is_some() || {
            // normalization may alter the text; check via inference instead
            let mut scratch = graphex_core::Scratch::new();
            let req = graphex_core::InferRequest::new(&new_q.text, new_q.leaf).k(5);
            !model.infer_request(&req, &mut scratch).is_empty()
        });
    }
}

//! One fully materialized experiment dataset: catalog + query universe +
//! training-window log + evaluation-window log.
//!
//! This mirrors the paper's setup (Sec. IV-B): GraphEx curates keyphrases
//! from the long training window *without click associations*; the XMC
//! baselines consume the click log; test-time search counts come from a
//! separate short window "different from the one year duration for the
//! training set" to remove training-data bias.

use crate::catalog::{CategorySpec, Item, Marketplace};
use crate::oracle::RelevanceOracle;
use crate::queries::{build_index, generate_queries, Query, QueryIndex};
use crate::sessions::{simulate, SearchLog, SessionConfig};
use graphex_core::{KeyphraseRecord, LeafId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A generated category with everything experiments need.
#[derive(Debug)]
pub struct CategoryDataset {
    pub marketplace: Marketplace,
    pub queries: Vec<Query>,
    pub index: QueryIndex,
    /// Long training window (the paper: 6 months for GraphEx, 1 year for
    /// XMC models — we use one window for both, the distinction the paper
    /// draws is about *what* is consumed, not *how long*).
    pub train_log: SearchLog,
    /// Short evaluation window for unbiased test-time search counts
    /// (the paper's 15-day window).
    pub eval_log: SearchLog,
}

impl CategoryDataset {
    /// Generates a dataset from a spec. The evaluation window simulates
    /// 1/12 of the training sessions (≈ 15 days vs 6 months).
    pub fn generate(spec: CategorySpec) -> Self {
        let marketplace = Marketplace::generate(spec);
        let queries = generate_queries(&marketplace);
        let index = build_index(&marketplace, &queries);
        let config = SessionConfig::default();
        let spec = &marketplace.spec;
        let train_log =
            simulate(&marketplace, &queries, &index, spec.num_sessions as u64, spec.seed ^ 0x11AA, &config);
        let eval_sessions = (spec.num_sessions as u64 / 12).max(100);
        let eval_log =
            simulate(&marketplace, &queries, &index, eval_sessions, spec.seed ^ 0x22BB, &config);
        Self { marketplace, queries, index, train_log, eval_log }
    }

    /// Raw keyphrase rows for GraphEx construction: query text, Cassini
    /// leaf, **observed** search count from the training window, recall
    /// count from the engine. Queries never searched in the window don't
    /// exist in the log and are not emitted.
    pub fn keyphrase_records(&self) -> Vec<KeyphraseRecord> {
        self.queries
            .iter()
            .filter(|q| self.train_log.search_counts[q.id as usize] > 0)
            .map(|q| KeyphraseRecord {
                text: q.text.clone(),
                leaf: q.leaf,
                search_count: self.train_log.search_counts[q.id as usize],
                recall_count: self.train_log.recall_counts[q.id as usize],
            })
            .collect()
    }

    /// The relevance oracle over this dataset.
    pub fn oracle(&self) -> RelevanceOracle<'_> {
        RelevanceOracle::new(&self.marketplace, &self.queries)
    }

    /// Samples `n` test items uniformly (the paper samples 1000/400/200
    /// actively listed items per category).
    pub fn test_items(&self, n: usize, seed: u64) -> Vec<&Item> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ids: Vec<usize> = (0..self.marketplace.items.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(n);
        ids.into_iter().map(|i| &self.marketplace.items[i]).collect()
    }

    /// Evaluation-window search count for a query text (0 if never searched
    /// or unknown). Used for head/tail classification at evaluation time.
    pub fn eval_search_count(&self, text: &str) -> u32 {
        self.oracle()
            .query_by_text(text)
            .map(|q| self.eval_log.search_counts[q.id as usize])
            .unwrap_or(0)
    }

    /// Distinct leaves present in the dataset.
    pub fn leaf_ids(&self) -> Vec<LeafId> {
        self.marketplace.leaves.iter().map(|l| l.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CategoryDataset {
        CategoryDataset::generate(CategorySpec::tiny(41))
    }

    #[test]
    fn keyphrase_records_use_observed_counts() {
        let ds = tiny();
        let records = ds.keyphrase_records();
        assert!(!records.is_empty());
        for rec in &records {
            let q = ds.oracle().query_by_text(&rec.text).expect("record text is a real query");
            assert_eq!(rec.search_count, ds.train_log.search_counts[q.id as usize]);
            assert!(rec.search_count > 0);
            assert_eq!(rec.leaf, q.leaf);
        }
    }

    #[test]
    fn eval_window_differs_from_train_window() {
        let ds = tiny();
        assert_ne!(ds.train_log.search_counts, ds.eval_log.search_counts);
        assert!(ds.eval_log.sessions < ds.train_log.sessions);
    }

    #[test]
    fn test_items_sampling_is_deterministic_and_sized() {
        let ds = tiny();
        let a = ds.test_items(50, 7);
        let b = ds.test_items(50, 7);
        assert_eq!(a.len(), 50);
        assert!(a.iter().zip(&b).all(|(x, y)| x.id == y.id));
        let c = ds.test_items(50, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.id != y.id));
    }

    #[test]
    fn graphex_builds_from_dataset() {
        // End-to-end smoke: the dataset's records feed straight into the
        // builder with a relaxed threshold.
        let ds = tiny();
        let mut config = graphex_core::GraphExConfig::default();
        config.curation.min_search_count = 2;
        let model = graphex_core::GraphExBuilder::new(config)
            .add_records(ds.keyphrase_records())
            .build()
            .unwrap();
        let item = &ds.marketplace.items[0];
        let mut scratch = graphex_core::Scratch::new();
        let response = model.infer_request(
            &graphex_core::InferRequest::new(&item.title, item.leaf).k(10),
            &mut scratch,
        );
        assert!(!response.is_empty(), "no predictions for {:?}", item.title);
    }

    #[test]
    fn eval_search_count_unknown_is_zero() {
        let ds = tiny();
        assert_eq!(ds.eval_search_count("definitely not a query"), 0);
    }
}

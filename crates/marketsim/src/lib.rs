//! # marketsim — synthetic e-commerce marketplace and search-log simulator
//!
//! The GraphEx paper evaluates on proprietary eBay data: one year of search
//! logs over meta categories with up to 200 M items. None of that is
//! publishable, so this crate builds the closest synthetic equivalent that
//! exercises the same code paths end to end:
//!
//! 1. **Catalog** ([`catalog`]): a category tree (meta → leaf), *product
//!    archetypes* per leaf (brand + line + type + attribute tokens), and
//!    items instantiated from archetypes with noisy titles.
//! 2. **Query universe** ([`queries`]): buyer queries generated from the
//!    same archetypes (type-generic, brand+type, brand+line, attribute
//!    variants) with Zipf-shaped search volume — head and tail keyphrases.
//! 3. **Sessions** ([`sessions`]): buyer search sessions with a ranked SRP,
//!    position/exposure bias and popularity-weighted clicks, producing a
//!    Missing-Not-At-Random click log with the paper's Fig. 2 skew
//!    (~96 % of items get no clicks; most clicked items have one query).
//! 4. **Oracle** ([`oracle`]): because the generator *knows* which
//!    constraints every query encodes, ground-truth relevance is exact —
//!    this is what the evaluation crate's AI-judge substitute wraps.
//!
//! Everything is deterministic given a seed, so experiments are exactly
//! reproducible; dataset scales are configurable via [`catalog::CategorySpec`]
//! with presets mirroring the paper's CAT_1/CAT_2/CAT_3 (Table II) at
//! laptop scale.

pub mod catalog;
pub mod churn;
pub mod corpus;
pub mod dataset;
pub mod oracle;
pub mod queries;
pub mod sessions;
pub mod wordgen;

pub use catalog::{CategorySpec, Item, Marketplace, Product};
pub use corpus::ChurnCorpus;
pub use dataset::CategoryDataset;
pub use oracle::RelevanceOracle;
pub use queries::{Query, QueryConstraint};
pub use sessions::{ClickStats, SearchLog};

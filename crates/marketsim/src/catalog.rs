//! Category tree, product archetypes, and item generation.
//!
//! A *product archetype* is the latent entity both item titles and buyer
//! queries derive from: a brand, a product line (model name), a product
//! type (1–2 tokens shared by all products of that kind in the leaf) and a
//! set of attributes. This shared generative root is what makes relevance
//! decidable by the [`crate::oracle`] without any human labels.

use crate::wordgen::WordGen;
use graphex_core::LeafId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Scale parameters of one simulated meta category.
#[derive(Debug, Clone, PartialEq)]
pub struct CategorySpec {
    /// Display name, e.g. "CAT_1".
    pub name: String,
    /// Seed for every RNG in the pipeline; same seed ⇒ identical dataset.
    pub seed: u64,
    /// Leaf categories under this meta category.
    pub num_leaves: usize,
    /// Product archetypes per leaf.
    pub products_per_leaf: usize,
    /// Items listed (instances of archetypes, skewed towards popular ones).
    pub num_items: usize,
    /// Buyer sessions simulated for the *training* log window.
    pub num_sessions: usize,
    /// First leaf id (so different categories never share leaf ids).
    pub leaf_id_base: u32,
}

impl CategorySpec {
    /// Large category: the paper's CAT_1 (200 M items) scaled ×1000 down.
    pub fn cat1() -> Self {
        Self {
            name: "CAT_1".into(),
            seed: 0xC1,
            num_leaves: 48,
            products_per_leaf: 60,
            num_items: 200_000,
            num_sessions: 400_000,
            leaf_id_base: 1_000,
        }
    }

    /// Medium category: CAT_2 (14 M items) scaled ×1000 down.
    pub fn cat2() -> Self {
        Self {
            name: "CAT_2".into(),
            seed: 0xC2,
            num_leaves: 20,
            products_per_leaf: 45,
            num_items: 14_000,
            num_sessions: 60_000,
            leaf_id_base: 2_000,
        }
    }

    /// Small category: CAT_3 (7 M items) scaled ×1000 down.
    pub fn cat3() -> Self {
        Self {
            name: "CAT_3".into(),
            seed: 0xC3,
            num_leaves: 10,
            products_per_leaf: 30,
            num_items: 7_000,
            num_sessions: 25_000,
            leaf_id_base: 3_000,
        }
    }

    /// Miniature category for unit tests (fast to generate).
    pub fn tiny(seed: u64) -> Self {
        Self {
            name: "TINY".into(),
            seed,
            num_leaves: 3,
            products_per_leaf: 8,
            num_items: 400,
            num_sessions: 3_000,
            leaf_id_base: 9_000,
        }
    }
}

/// One leaf category.
#[derive(Debug, Clone)]
pub struct Leaf {
    pub id: LeafId,
    /// Product-type token pairs available in this leaf; every product picks
    /// one. E.g. `["gaming", "headphones"]`.
    pub type_pool: Vec<Vec<String>>,
    /// Attribute token pool for products in this leaf.
    pub attr_pool: Vec<String>,
}

/// A product archetype.
#[derive(Debug, Clone)]
pub struct Product {
    pub id: u32,
    pub leaf: LeafId,
    /// Brand token (index into [`Marketplace::brands`]).
    pub brand: u32,
    /// Product-line tokens, unique to this product ("maxwell").
    pub line: Vec<String>,
    /// Index of the type within the leaf's `type_pool`.
    pub type_idx: u32,
    /// Attribute tokens (subset of the leaf pool).
    pub attrs: Vec<String>,
    /// Latent popularity in (0, 1]; drives listing counts, ranking and
    /// clicks — the source of popularity bias.
    pub popularity: f64,
}

/// One listed item.
#[derive(Debug, Clone)]
pub struct Item {
    pub id: u32,
    pub product: u32,
    pub leaf: LeafId,
    pub title: String,
    /// Item-level popularity (product popularity × listing jitter).
    pub popularity: f64,
}

/// A fully generated meta category.
#[derive(Debug)]
pub struct Marketplace {
    pub spec: CategorySpec,
    pub brands: Vec<String>,
    pub leaves: Vec<Leaf>,
    pub products: Vec<Product>,
    pub items: Vec<Item>,
    /// Items of each product (indices into `items`).
    pub product_items: Vec<Vec<u32>>,
}

/// Filler words sellers pad titles with; never part of any query constraint.
const NOISE_WORDS: &[&str] = &[
    "new", "genuine", "original", "for", "with", "gift", "sale", "premium", "deluxe", "2024",
    "edition", "authentic", "fast", "shipping", "oem", "bundle",
];

impl Marketplace {
    /// Generates the catalog for `spec`. Deterministic in `spec.seed`.
    pub fn generate(spec: CategorySpec) -> Self {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let mut words = WordGen::new();

        // Brand universe: shared across leaves (brands span product kinds).
        let num_brands = (spec.num_leaves * 3).clamp(8, 120);
        let brands: Vec<String> = (0..num_brands).map(|_| words.word(&mut rng, 2)).collect();

        // Leaves with type and attribute pools.
        let mut leaves = Vec::with_capacity(spec.num_leaves);
        for l in 0..spec.num_leaves {
            let num_types = rng.gen_range(2..=4);
            let type_pool: Vec<Vec<String>> = (0..num_types)
                .map(|_| {
                    let qualifier = words.word(&mut rng, 2);
                    let noun = words.word(&mut rng, 2);
                    vec![qualifier, noun]
                })
                .collect();
            let attr_pool: Vec<String> =
                (0..rng.gen_range(8..=14)).map(|_| words.word(&mut rng, 1)).collect();
            leaves.push(Leaf { id: LeafId(spec.leaf_id_base + l as u32), type_pool, attr_pool });
        }

        // Products.
        let mut products = Vec::with_capacity(spec.num_leaves * spec.products_per_leaf);
        for leaf in &leaves {
            for _ in 0..spec.products_per_leaf {
                let id = products.len() as u32;
                let brand = rng.gen_range(0..brands.len()) as u32;
                let line_len = if rng.gen_bool(0.3) { 2 } else { 1 };
                let line: Vec<String> = (0..line_len).map(|_| words.word(&mut rng, 2)).collect();
                let type_idx = rng.gen_range(0..leaf.type_pool.len()) as u32;
                let num_attrs = rng.gen_range(2..=5);
                let mut attrs: Vec<String> =
                    leaf.attr_pool.choose_multiple(&mut rng, num_attrs).cloned().collect();
                attrs.sort_unstable();
                // Pareto-ish popularity: a few hits, a long tail.
                let popularity = rng.gen_range(0.0f64..1.0).powf(3.0).max(1e-4);
                products.push(Product { id, leaf: leaf.id, brand, line, type_idx, attrs, popularity });
            }
        }

        // Items: choose products popularity-weighted, instantiate titles.
        let weights: Vec<f64> = products.iter().map(|p| p.popularity).collect();
        let cumulative = cumsum(&weights);
        let mut items = Vec::with_capacity(spec.num_items);
        let mut product_items = vec![Vec::new(); products.len()];
        for id in 0..spec.num_items as u32 {
            let pick = sample_cumulative(&cumulative, &mut rng);
            let product = &products[pick];
            let leaf = &leaves[(product.leaf.0 - spec.leaf_id_base) as usize];
            let title = compose_title(product, leaf, &brands, &mut rng);
            let popularity = (product.popularity * rng.gen_range(0.2..1.0)).max(1e-6);
            product_items[pick].push(id);
            items.push(Item { id, product: pick as u32, leaf: product.leaf, title, popularity });
        }

        Self { spec, brands, leaves, products, items, product_items }
    }

    /// Leaf struct by id.
    pub fn leaf(&self, id: LeafId) -> Option<&Leaf> {
        self.leaves.iter().find(|l| l.id == id)
    }

    /// The type tokens of a product.
    pub fn type_tokens(&self, product: &Product) -> &[String] {
        let leaf = &self.leaves[(product.leaf.0 - self.spec.leaf_id_base) as usize];
        &leaf.type_pool[product.type_idx as usize]
    }

    /// Brand token of a product.
    pub fn brand_token(&self, product: &Product) -> &str {
        &self.brands[product.brand as usize]
    }
}

/// Builds a plausible title: brand → line → some attrs → type → noise.
fn compose_title(product: &Product, leaf: &Leaf, brands: &[String], rng: &mut SmallRng) -> String {
    let mut parts: Vec<&str> = Vec::with_capacity(12);
    parts.push(&brands[product.brand as usize]);
    for t in &product.line {
        parts.push(t);
    }
    let shown_attrs = rng.gen_range(1..=product.attrs.len().min(3));
    for attr in product.attrs.iter().take(shown_attrs) {
        parts.push(attr);
    }
    for t in &leaf.type_pool[product.type_idx as usize] {
        parts.push(t);
    }
    for _ in 0..rng.gen_range(0..=3) {
        parts.push(NOISE_WORDS[rng.gen_range(0..NOISE_WORDS.len())]);
    }
    parts.join(" ")
}

/// Prefix sums for weighted sampling.
pub(crate) fn cumsum(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w.max(0.0);
            acc
        })
        .collect()
}

/// Samples an index proportional to the weights behind `cumulative`.
pub(crate) fn sample_cumulative(cumulative: &[f64], rng: &mut SmallRng) -> usize {
    let total = *cumulative.last().expect("empty weight vector");
    let x = rng.gen_range(0.0..total);
    cumulative.partition_point(|&c| c <= x).min(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = Marketplace::generate(CategorySpec::tiny(5));
        let b = Marketplace::generate(CategorySpec::tiny(5));
        assert_eq!(a.items.len(), b.items.len());
        assert_eq!(a.items[0].title, b.items[0].title);
        assert_eq!(a.products.len(), b.products.len());
        let c = Marketplace::generate(CategorySpec::tiny(6));
        assert_ne!(a.items[0].title, c.items[0].title);
    }

    #[test]
    fn spec_counts_respected() {
        let spec = CategorySpec::tiny(1);
        let mp = Marketplace::generate(spec.clone());
        assert_eq!(mp.leaves.len(), spec.num_leaves);
        assert_eq!(mp.products.len(), spec.num_leaves * spec.products_per_leaf);
        assert_eq!(mp.items.len(), spec.num_items);
    }

    #[test]
    fn items_reference_valid_products_and_leaves() {
        let mp = Marketplace::generate(CategorySpec::tiny(2));
        for item in &mp.items {
            let product = &mp.products[item.product as usize];
            assert_eq!(product.leaf, item.leaf);
            assert!(mp.leaf(item.leaf).is_some());
            assert!(!item.title.is_empty());
        }
    }

    #[test]
    fn titles_contain_product_tokens() {
        let mp = Marketplace::generate(CategorySpec::tiny(3));
        for item in mp.items.iter().take(50) {
            let product = &mp.products[item.product as usize];
            let brand = mp.brand_token(product);
            assert!(item.title.contains(brand), "title {:?} missing brand {brand}", item.title);
            for t in mp.type_tokens(product) {
                assert!(item.title.contains(t.as_str()));
            }
        }
    }

    #[test]
    fn product_items_index_is_consistent() {
        let mp = Marketplace::generate(CategorySpec::tiny(4));
        let total: usize = mp.product_items.iter().map(Vec::len).sum();
        assert_eq!(total, mp.items.len());
        for (pid, item_ids) in mp.product_items.iter().enumerate() {
            for &iid in item_ids {
                assert_eq!(mp.items[iid as usize].product as usize, pid);
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        // Pareto shape: the top 20% of products should own well over 35% of
        // the items (with cubed-uniform popularity it's typically > 60%).
        let mp = Marketplace::generate(CategorySpec::tiny(7));
        let mut counts: Vec<usize> = mp.product_items.iter().map(Vec::len).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top20: usize = counts.iter().take(counts.len() / 5).sum();
        assert!(top20 * 100 / mp.items.len() > 35, "top-20% share too small: {top20}");
    }

    #[test]
    fn cumulative_sampling_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let cumulative = cumsum(&[0.1, 0.0, 2.0, 0.5]);
        for _ in 0..1000 {
            let idx = sample_cumulative(&cumulative, &mut rng);
            assert!(idx < 4);
            assert_ne!(idx, 1, "zero-weight bucket sampled");
        }
    }

    #[test]
    fn presets_have_distinct_leaf_ranges() {
        let c1 = CategorySpec::cat1();
        let c2 = CategorySpec::cat2();
        let c3 = CategorySpec::cat3();
        assert!(c1.leaf_id_base + (c1.num_leaves as u32) <= c2.leaf_id_base);
        assert!(c2.leaf_id_base + (c2.num_leaves as u32) <= c3.leaf_id_base);
    }
}

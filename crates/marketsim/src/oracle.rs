//! Ground-truth relevance oracle.
//!
//! Because every query in the simulator carries its generative
//! [`crate::QueryConstraint`], relevance between an item and a query is a
//! *decidable fact*, not a judgement: the item's product archetype either
//! satisfies the constraint or it doesn't. The evaluation crate wraps this
//! oracle with configurable noise to play the role of the paper's
//! Mixtral-8x7B judge (which itself agreed with human judgement "more than
//! 90%" of the time).

use crate::catalog::{Item, Marketplace};
use crate::queries::{matches, Query};
use graphex_textkit::FxHashMap;

/// Exact relevance oracle over a marketplace and its query universe.
#[derive(Debug)]
pub struct RelevanceOracle<'a> {
    mp: &'a Marketplace,
    queries: &'a [Query],
    by_text: FxHashMap<&'a str, u32>,
}

impl<'a> RelevanceOracle<'a> {
    pub fn new(mp: &'a Marketplace, queries: &'a [Query]) -> Self {
        let mut by_text = FxHashMap::with_capacity_and_hasher(queries.len(), Default::default());
        for q in queries {
            by_text.insert(q.text.as_str(), q.id);
        }
        Self { mp, queries, by_text }
    }

    /// Looks a query up by its exact text.
    pub fn query_by_text(&self, text: &str) -> Option<&'a Query> {
        self.by_text.get(text).map(|&id| &self.queries[id as usize])
    }

    /// Is `query_id` relevant to `item`?
    pub fn is_relevant_id(&self, item: &Item, query_id: u32) -> bool {
        matches(self.mp, &self.queries[query_id as usize], item.product)
    }

    /// Is the keyphrase `text` relevant to `item`? Unknown texts (not in the
    /// buyer-query universe) are irrelevant by definition — nobody searches
    /// them (this mirrors the paper's "keyphrase should be in the universe
    /// of queries that buyers are searching for").
    pub fn is_relevant(&self, item: &Item, text: &str) -> bool {
        match self.query_by_text(text) {
            Some(q) => matches(self.mp, q, item.product),
            None => false,
        }
    }

    /// All queries relevant to `item` (used by diagnostics and tests; not on
    /// any hot path).
    pub fn relevant_queries(&self, item: &Item) -> Vec<&'a Query> {
        self.queries.iter().filter(|q| matches(self.mp, q, item.product)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CategorySpec, Marketplace};
    use crate::queries::generate_queries;

    fn setup() -> (Marketplace, Vec<Query>) {
        let mp = Marketplace::generate(CategorySpec::tiny(31));
        let qs = generate_queries(&mp);
        (mp, qs)
    }

    #[test]
    fn text_lookup_roundtrip() {
        let (mp, qs) = setup();
        let oracle = RelevanceOracle::new(&mp, &qs);
        for q in qs.iter().take(20) {
            assert_eq!(oracle.query_by_text(&q.text).unwrap().id, q.id);
        }
        assert!(oracle.query_by_text("no such query text").is_none());
    }

    #[test]
    fn unknown_text_is_irrelevant() {
        let (mp, qs) = setup();
        let oracle = RelevanceOracle::new(&mp, &qs);
        assert!(!oracle.is_relevant(&mp.items[0], "completely invented phrase"));
    }

    #[test]
    fn own_product_queries_are_relevant() {
        let (mp, qs) = setup();
        let oracle = RelevanceOracle::new(&mp, &qs);
        // For each pinned query, every item of that product must be relevant.
        for q in qs.iter().filter(|q| q.constraint.product.is_some()).take(20) {
            let pid = q.constraint.product.unwrap();
            for &iid in &mp.product_items[pid as usize] {
                assert!(oracle.is_relevant(&mp.items[iid as usize], &q.text));
            }
        }
    }

    #[test]
    fn cross_product_pinned_queries_are_irrelevant() {
        let (mp, qs) = setup();
        let oracle = RelevanceOracle::new(&mp, &qs);
        let pinned: Vec<&Query> = qs.iter().filter(|q| q.constraint.product.is_some()).collect();
        let qa = pinned[0];
        let qb = pinned
            .iter()
            .find(|q| q.constraint.product != qa.constraint.product)
            .expect("a second pinned product exists");
        let item_of_b = mp
            .items
            .iter()
            .find(|i| Some(i.product) == qb.constraint.product)
            .expect("product with items");
        assert!(!oracle.is_relevant(item_of_b, &qa.text));
    }

    #[test]
    fn relevant_queries_is_consistent_with_is_relevant() {
        let (mp, qs) = setup();
        let oracle = RelevanceOracle::new(&mp, &qs);
        let item = &mp.items[0];
        let rel = oracle.relevant_queries(item);
        assert!(!rel.is_empty(), "every item has at least its generic type query");
        for q in rel {
            assert!(oracle.is_relevant(item, &q.text));
        }
    }
}

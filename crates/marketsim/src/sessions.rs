//! Buyer session simulation and the resulting search log.
//!
//! This is the biased logging pipeline of the paper's Sec. I-A2, built
//! explicitly so its biases are *by construction*, not by accident:
//!
//! * **Exposure bias** — only the top [`crate::queries::SRP_LEN`] ranked
//!   items are ever shown; everything below the fold can't be clicked.
//! * **Position bias** — click probability decays with rank.
//! * **Popularity bias** — the ranker orders by item popularity, and
//!   popular items also convert better.
//! * **MNAR** — an item without clicks for a query is *not* evidence of
//!   irrelevance; it may simply never have been exposed.
//!
//! The output [`SearchLog`] carries observed per-query search counts (what
//! GraphEx curates on) and per-item click associations (what XMC baselines
//! and the Rules Engine train on).

use crate::catalog::{cumsum, sample_cumulative, Marketplace};
use crate::queries::{build_index, Query, QueryIndex};
use graphex_textkit::FxHashMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Aggregated search log over one simulation window.
#[derive(Debug, Clone)]
pub struct SearchLog {
    /// Observed searches per query in this window.
    pub search_counts: Vec<u32>,
    /// Recall count per query (items the engine matches; window-independent).
    pub recall_counts: Vec<u32>,
    /// Clicks per item: `(query_id, clicks)` pairs, item-major.
    pub item_clicks: Vec<Vec<(u32, u32)>>,
    /// Clicks per query: `(item_id, clicks)` pairs, query-major.
    pub query_clicks: Vec<Vec<(u32, u32)>>,
    /// Total sessions simulated.
    pub sessions: u64,
    /// Total clicks recorded.
    pub total_clicks: u64,
}

/// Summary statistics of the click log (drives the Fig. 2 reproduction).
#[derive(Debug, Clone, PartialEq)]
pub struct ClickStats {
    pub num_items: usize,
    pub items_with_clicks: usize,
    /// Fraction of items with at least one click ("item coverage"; the
    /// paper reports ~4 % get clicks / RE covers ~13 %).
    pub coverage: f64,
    /// `histogram[k]` = number of items associated with exactly `k` distinct
    /// queries (k ≥ 1); index 0 unused.
    pub queries_per_item_histogram: Vec<u32>,
    /// Share of clicked items with exactly one associated query (the paper's
    /// "90% of such items" claim in Fig. 2).
    pub single_query_share: f64,
}

/// Tunables of the click model.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Base click-through probability at rank 0 for a perfectly matching,
    /// maximally popular item.
    pub base_ctr: f64,
    /// Position-bias decay exponent (higher = steeper).
    pub position_decay: f64,
    /// Max clicks a single session can produce.
    pub max_clicks_per_session: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        // Tuned so the large presets land near the paper's click sparsity
        // (~96 % of items without clicks, Sec. I-A2) while still producing
        // enough click mass for the XMC baselines to train on.
        Self { base_ctr: 0.18, position_decay: 1.6, max_clicks_per_session: 2 }
    }
}

/// Simulates `num_sessions` buyer sessions over the query universe.
///
/// Each session: sample a query by latent demand weight, walk its SRP page,
/// click with position- and popularity-dependent probability.
pub fn simulate(
    mp: &Marketplace,
    queries: &[Query],
    index: &QueryIndex,
    num_sessions: u64,
    seed: u64,
    config: &SessionConfig,
) -> SearchLog {
    let mut rng = SmallRng::seed_from_u64(seed);
    let weights: Vec<f64> = queries.iter().map(|q| q.weight).collect();
    let cumulative = cumsum(&weights);

    let mut search_counts = vec![0u32; queries.len()];
    let mut click_pairs: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    let mut total_clicks = 0u64;

    for _ in 0..num_sessions {
        let q = sample_cumulative(&cumulative, &mut rng) as u32;
        search_counts[q as usize] += 1;
        let page = &index.srp[q as usize];
        let mut clicks_left = config.max_clicks_per_session;
        for (pos, &item_id) in page.iter().enumerate() {
            if clicks_left == 0 {
                break;
            }
            let item = &mp.items[item_id as usize];
            let position_bias = 1.0 / (1.0 + pos as f64).powf(config.position_decay);
            // Superlinear in popularity: unpopular items convert poorly even
            // when exposed — the popularity bias the paper calls out.
            let quality = 0.05 + 0.95 * item.popularity.powf(1.5);
            let p = config.base_ctr * position_bias * quality;
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                *click_pairs.entry((q, item_id)).or_insert(0) += 1;
                total_clicks += 1;
                clicks_left -= 1;
            }
        }
    }

    // Pivot the click map both ways.
    let mut item_clicks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); mp.items.len()];
    let mut query_clicks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); queries.len()];
    let mut pairs: Vec<((u32, u32), u32)> = click_pairs.into_iter().collect();
    pairs.sort_unstable(); // determinism independent of hash order
    for ((q, item), n) in pairs {
        item_clicks[item as usize].push((q, n));
        query_clicks[q as usize].push((item, n));
    }

    SearchLog {
        search_counts,
        recall_counts: index.recall.clone(),
        item_clicks,
        query_clicks,
        sessions: num_sessions,
        total_clicks,
    }
}

/// Convenience: build the index and simulate in one call.
pub fn simulate_window(
    mp: &Marketplace,
    queries: &[Query],
    num_sessions: u64,
    seed: u64,
) -> SearchLog {
    let index = build_index(mp, queries);
    simulate(mp, queries, &index, num_sessions, seed, &SessionConfig::default())
}

impl SearchLog {
    /// Click statistics (Fig. 2 inputs).
    pub fn click_stats(&self) -> ClickStats {
        let num_items = self.item_clicks.len();
        let mut items_with_clicks = 0usize;
        let mut max_queries = 0usize;
        for assoc in &self.item_clicks {
            if !assoc.is_empty() {
                items_with_clicks += 1;
                max_queries = max_queries.max(assoc.len());
            }
        }
        let mut histogram = vec![0u32; max_queries + 1];
        let mut single = 0usize;
        for assoc in &self.item_clicks {
            if assoc.is_empty() {
                continue;
            }
            histogram[assoc.len()] += 1;
            if assoc.len() == 1 {
                single += 1;
            }
        }
        ClickStats {
            num_items,
            items_with_clicks,
            coverage: if num_items == 0 { 0.0 } else { items_with_clicks as f64 / num_items as f64 },
            queries_per_item_histogram: histogram,
            single_query_share: if items_with_clicks == 0 {
                0.0
            } else {
                single as f64 / items_with_clicks as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CategorySpec;
    use crate::queries::generate_queries;

    fn setup() -> (Marketplace, Vec<Query>, SearchLog) {
        let mp = Marketplace::generate(CategorySpec::tiny(21));
        let qs = generate_queries(&mp);
        let log = simulate_window(&mp, &qs, 3_000, 77);
        (mp, qs, log)
    }

    #[test]
    fn deterministic_given_seed() {
        let mp = Marketplace::generate(CategorySpec::tiny(21));
        let qs = generate_queries(&mp);
        let a = simulate_window(&mp, &qs, 1_000, 5);
        let b = simulate_window(&mp, &qs, 1_000, 5);
        assert_eq!(a.search_counts, b.search_counts);
        assert_eq!(a.total_clicks, b.total_clicks);
        assert_eq!(a.item_clicks, b.item_clicks);
        let c = simulate_window(&mp, &qs, 1_000, 6);
        assert_ne!(a.search_counts, c.search_counts);
    }

    #[test]
    fn search_counts_sum_to_sessions() {
        let (_, _, log) = setup();
        let total: u64 = log.search_counts.iter().map(|&c| u64::from(c)).sum();
        assert_eq!(total, log.sessions);
    }

    #[test]
    fn clicks_only_on_exposed_matching_items() {
        let (mp, qs, log) = setup();
        let index = build_index(&mp, &qs);
        for (q, items) in log.query_clicks.iter().enumerate() {
            for &(item, n) in items {
                assert!(n > 0);
                assert!(
                    index.srp[q].contains(&item),
                    "clicked item {item} was not on query {q}'s SRP page"
                );
            }
        }
    }

    #[test]
    fn pivots_agree() {
        let (_, _, log) = setup();
        let from_items: u64 = log.item_clicks.iter().flatten().map(|&(_, n)| u64::from(n)).sum();
        let from_queries: u64 = log.query_clicks.iter().flatten().map(|&(_, n)| u64::from(n)).sum();
        assert_eq!(from_items, from_queries);
        assert_eq!(from_items, log.total_clicks);
    }

    #[test]
    fn click_sparsity_and_single_query_skew() {
        // The properties Fig. 2 is about: most items get no clicks, and
        // clicked items overwhelmingly have few distinct queries.
        let (_, _, log) = setup();
        let stats = log.click_stats();
        assert!(stats.coverage < 0.45, "coverage too high: {}", stats.coverage);
        assert!(stats.items_with_clicks > 0);
        assert!(
            stats.single_query_share > 0.45,
            "single-query share too low: {}",
            stats.single_query_share
        );
        let total_hist: u32 = stats.queries_per_item_histogram.iter().sum();
        assert_eq!(total_hist as usize, stats.items_with_clicks);
    }

    #[test]
    fn head_queries_get_searched_more() {
        let (_, qs, log) = setup();
        // Correlation check: the top-weight decile should collect far more
        // searches than the bottom decile.
        let mut by_weight: Vec<usize> = (0..qs.len()).collect();
        by_weight.sort_unstable_by(|&a, &b| qs[b].weight.partial_cmp(&qs[a].weight).unwrap());
        let decile = qs.len() / 10;
        let head: u64 = by_weight[..decile].iter().map(|&i| u64::from(log.search_counts[i])).sum();
        let tail: u64 = by_weight[qs.len() - decile..].iter().map(|&i| u64::from(log.search_counts[i])).sum();
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }

    #[test]
    fn empty_simulation() {
        let mp = Marketplace::generate(CategorySpec::tiny(3));
        let qs = generate_queries(&mp);
        let log = simulate_window(&mp, &qs, 0, 1);
        assert_eq!(log.total_clicks, 0);
        assert_eq!(log.click_stats().items_with_clicks, 0);
        assert_eq!(log.click_stats().coverage, 0.0);
    }
}

//! Scale probes: verify the paper-shaped dataset statistics at the real
//! preset scales. Run explicitly (release recommended):
//! `cargo test -p graphex-marketsim --release -- --ignored --nocapture`

use graphex_marketsim::{CategoryDataset, CategorySpec};

#[test]
#[ignore = "slow: generates the full CAT_2 preset"]
fn cat2_click_log_shape_matches_paper() {
    let ds = CategoryDataset::generate(CategorySpec::cat2());
    let stats = ds.train_log.click_stats();
    println!(
        "CAT_2: items={} queries={} coverage={:.2}% single_query_share={:.2}% clicks={}",
        stats.num_items,
        ds.queries.len(),
        stats.coverage * 100.0,
        stats.single_query_share * 100.0,
        ds.train_log.total_clicks
    );
    // Paper Sec. I-A2: ~96 % of items have no clicks; Fig. 2: ~90 % of
    // clicked items have one query. Synthetic scale won't match exactly —
    // we require the same regime.
    assert!(stats.coverage < 0.35, "click coverage too high: {:.3}", stats.coverage);
    assert!(stats.single_query_share > 0.55, "single-query share: {:.3}", stats.single_query_share);
    // Enough signal left for click-trained baselines.
    assert!(ds.train_log.total_clicks > 1_000);

    // Curated keyphrases: observed search counts exist and heads dominate.
    let records = ds.keyphrase_records();
    assert!(records.len() > 1_000, "too few searched keyphrases: {}", records.len());
}

#[test]
#[ignore = "slow: generates the full CAT_1 preset"]
fn cat1_generation_within_budget() {
    let t0 = std::time::Instant::now();
    let ds = CategoryDataset::generate(CategorySpec::cat1());
    let elapsed = t0.elapsed();
    let stats = ds.train_log.click_stats();
    println!(
        "CAT_1: generated in {elapsed:?}; items={} queries={} coverage={:.2}% single={:.2}%",
        stats.num_items,
        ds.queries.len(),
        stats.coverage * 100.0,
        stats.single_query_share * 100.0,
    );
    assert!(stats.coverage < 0.30);
    assert!(elapsed.as_secs() < 120, "generation too slow: {elapsed:?}");
}

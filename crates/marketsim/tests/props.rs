//! Property-based tests for the marketplace simulator.

use graphex_marketsim::catalog::{CategorySpec, Marketplace};
use graphex_marketsim::churn::evolve_queries;
use graphex_marketsim::queries::{build_index, generate_queries, matches};
use graphex_marketsim::sessions::simulate_window;
use proptest::prelude::*;

/// Small random spec: keeps each case fast while varying every dimension.
fn spec_strategy() -> impl Strategy<Value = CategorySpec> {
    (1u64..1000, 1usize..4, 2usize..6, 20usize..120).prop_map(
        |(seed, leaves, products, items)| CategorySpec {
            name: format!("P{seed}"),
            seed,
            num_leaves: leaves,
            products_per_leaf: products,
            num_items: items,
            num_sessions: 400,
            leaf_id_base: 100,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural integrity of any generated marketplace.
    #[test]
    fn marketplace_referential_integrity(spec in spec_strategy()) {
        let mp = Marketplace::generate(spec.clone());
        prop_assert_eq!(mp.items.len(), spec.num_items);
        prop_assert_eq!(mp.leaves.len(), spec.num_leaves);
        for item in &mp.items {
            let product = &mp.products[item.product as usize];
            prop_assert_eq!(product.leaf, item.leaf);
            prop_assert!(!item.title.is_empty());
            prop_assert!(item.popularity > 0.0);
        }
        // product_items partition covers all items exactly once.
        let covered: usize = mp.product_items.iter().map(Vec::len).sum();
        prop_assert_eq!(covered, mp.items.len());
    }

    /// Every query matches at least one product archetype of its own leaf
    /// (queries derive from products, so a matchless query is a generator
    /// bug), and SRP pages contain only matching items.
    #[test]
    fn queries_match_their_origin(spec in spec_strategy()) {
        let mp = Marketplace::generate(spec);
        let queries = generate_queries(&mp);
        prop_assert!(!queries.is_empty());
        let index = build_index(&mp, &queries);
        for q in &queries {
            let any_product = mp.products.iter().any(|p| matches(&mp, q, p.id));
            prop_assert!(any_product, "query {:?} matches nothing", q.text);
            for &item in &index.srp[q.id as usize] {
                prop_assert!(matches(&mp, q, mp.items[item as usize].product));
            }
        }
    }

    /// Search-count conservation and click provenance hold for any seed.
    #[test]
    fn log_conservation(spec in spec_strategy(), sessions in 50u64..500, seed in 0u64..50) {
        let mp = Marketplace::generate(spec);
        let queries = generate_queries(&mp);
        let log = simulate_window(&mp, &queries, sessions, seed);
        let total: u64 = log.search_counts.iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(total, sessions);
        let item_sum: u64 = log.item_clicks.iter().flatten().map(|&(_, n)| u64::from(n)).sum();
        prop_assert_eq!(item_sum, log.total_clicks);
    }

    /// Churn never loses constraint validity and respects the rate bound.
    #[test]
    fn churn_bounds(spec in spec_strategy(), rate in 0.0f64..0.5, seed in 0u64..50) {
        let mp = Marketplace::generate(spec);
        let queries = generate_queries(&mp);
        let (evolved, report) = evolve_queries(&mp, &queries, rate, seed);
        let budget = ((queries.len() as f64) * rate).round() as usize;
        prop_assert!(report.removed <= budget);
        prop_assert!(report.added <= budget);
        prop_assert_eq!(report.retained + report.added, evolved.len());
        // Every evolved query still matches some product.
        for q in &evolved {
            prop_assert!(mp.products.iter().any(|p| matches(&mp, q, p.id)));
        }
    }
}

//! Record TSV I/O: `text<TAB>leaf_id<TAB>search_count<TAB>recall_count`.

use graphex_core::{KeyphraseRecord, LeafId};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Reads keyphrase records from a TSV file. Empty lines and `#` comments
/// are skipped; malformed lines fail with their line number.
pub fn read_tsv(path: impl AsRef<Path>) -> Result<Vec<KeyphraseRecord>, String> {
    let file = std::fs::File::open(&path)
        .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
    let reader = std::io::BufReader::new(file);
    let mut records = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read error at line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        records.push(parse_line(trimmed).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(records)
}

/// Parses one TSV line.
pub fn parse_line(line: &str) -> Result<KeyphraseRecord, String> {
    let mut cols = line.split('\t');
    let text = cols.next().filter(|t| !t.is_empty()).ok_or("empty keyphrase text")?;
    let leaf: u32 = cols
        .next()
        .ok_or("missing leaf id")?
        .parse()
        .map_err(|_| "leaf id is not a number".to_string())?;
    let search: u32 = cols
        .next()
        .ok_or("missing search count")?
        .parse()
        .map_err(|_| "search count is not a number".to_string())?;
    let recall: u32 = cols
        .next()
        .ok_or("missing recall count")?
        .parse()
        .map_err(|_| "recall count is not a number".to_string())?;
    if cols.next().is_some() {
        return Err("too many columns".into());
    }
    Ok(KeyphraseRecord::new(text, LeafId(leaf), search, recall))
}

/// Writes records to a TSV file (buffered).
pub fn write_tsv(path: impl AsRef<Path>, records: &[KeyphraseRecord]) -> Result<(), String> {
    let file = std::fs::File::create(&path)
        .map_err(|e| format!("create {}: {e}", path.as_ref().display()))?;
    let mut out = BufWriter::new(file);
    for rec in records {
        writeln!(out, "{}\t{}\t{}\t{}", rec.text, rec.leaf.0, rec.search_count, rec.recall_count)
            .map_err(|e| format!("write: {e}"))?;
    }
    out.flush().map_err(|e| format!("flush: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_valid_line() {
        let rec = parse_line("gaming headphones\t42\t800\t700").unwrap();
        assert_eq!(rec.text, "gaming headphones");
        assert_eq!(rec.leaf, LeafId(42));
        assert_eq!((rec.search_count, rec.recall_count), (800, 700));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_line("").is_err());
        assert!(parse_line("text only").is_err());
        assert!(parse_line("text\tnotanumber\t1\t2").is_err());
        assert!(parse_line("text\t1\t2\t3\t4").is_err());
        assert!(parse_line("\t1\t2\t3").is_err());
    }

    #[test]
    fn tsv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("graphex-records-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.tsv");
        let records = vec![
            KeyphraseRecord::new("a b", LeafId(1), 10, 2),
            KeyphraseRecord::new("c d e", LeafId(2), 30, 4),
        ];
        write_tsv(&path, &records).unwrap();
        let back = read_tsv(&path).unwrap();
        assert_eq!(back, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let dir = std::env::temp_dir().join(format!("graphex-records2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.tsv");
        std::fs::write(&path, "# header\n\nx y\t1\t5\t6\n").unwrap();
        let records = read_tsv(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_path() {
        let err = read_tsv("/nonexistent/gx.tsv").unwrap_err();
        assert!(err.contains("/nonexistent/gx.tsv"));
    }
}

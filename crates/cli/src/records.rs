//! Record TSV output: `text<TAB>leaf_id<TAB>search_count<TAB>recall_count`.
//!
//! Reading lives in the build pipeline (`graphex_pipeline::source`,
//! streaming with per-source error accounting) — the TSV grammar exists
//! exactly once; [`parse_line`] re-exports it for CLI callers.

use graphex_core::KeyphraseRecord;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Parses one TSV record line (the single source of truth is
/// [`graphex_pipeline::source::parse_tsv_line`]).
pub fn parse_line(line: &str) -> Result<KeyphraseRecord, String> {
    graphex_pipeline::source::parse_tsv_line(line)
}

/// Writes records to a TSV file (buffered).
pub fn write_tsv(path: impl AsRef<Path>, records: &[KeyphraseRecord]) -> Result<(), String> {
    let file = std::fs::File::create(&path)
        .map_err(|e| format!("create {}: {e}", path.as_ref().display()))?;
    let mut out = BufWriter::new(file);
    for rec in records {
        writeln!(out, "{}\t{}\t{}\t{}", rec.text, rec.leaf.0, rec.search_count, rec.recall_count)
            .map_err(|e| format!("write: {e}"))?;
    }
    out.flush().map_err(|e| format!("flush: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::LeafId;
    use graphex_pipeline::{RecordSource, TsvFileSource};

    #[test]
    fn parse_valid_line() {
        let rec = parse_line("gaming headphones\t42\t800\t700").unwrap();
        assert_eq!(rec.text, "gaming headphones");
        assert_eq!(rec.leaf, LeafId(42));
        assert_eq!((rec.search_count, rec.recall_count), (800, 700));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_line("").is_err());
        assert!(parse_line("text only").is_err());
        assert!(parse_line("text\tnotanumber\t1\t2").is_err());
        assert!(parse_line("text\t1\t2\t3\t4").is_err());
        assert!(parse_line("\t1\t2\t3").is_err());
    }

    #[test]
    fn tsv_roundtrip_through_pipeline_source() {
        let dir = std::env::temp_dir().join(format!("graphex-records-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.tsv");
        let records = vec![
            KeyphraseRecord::new("a b", LeafId(1), 10, 2),
            KeyphraseRecord::new("c d e", LeafId(2), 30, 4),
        ];
        write_tsv(&path, &records).unwrap();
        let mut source = TsvFileSource::open(&path).unwrap();
        let mut back = Vec::new();
        source.next_batch(16, &mut back).unwrap();
        assert_eq!(back, records);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Minimal flag parser: `--key value` pairs and boolean `--key` switches.
//! Hand-rolled to keep the dependency set at zero (the allowed workspace
//! crates include no argument parser).

use std::collections::BTreeMap;

/// Parsed `--key value` / `--switch` arguments.
#[derive(Debug, Default)]
pub struct ParsedArgs {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "no-stemming",
    "no-fallback",
    "stdin",
    "outcome",
    "invalidate-on-swap",
    "smoke",
    "json",
    "strict",
    "heap",
    "overlay",
    "no-trace",
    "no-history",
    "no-live",
    "no-eval",
    "slow",
];

impl ParsedArgs {
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = ParsedArgs::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {arg:?}"))?;
            if SWITCHES.contains(&key) {
                out.switches.push(key.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                if out.values.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("duplicate flag --{key}"));
                }
                i += 2;
            }
        }
        Ok(out)
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.values.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
    }

    /// Optional string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Optional parsed number with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("--{key}: cannot parse {raw:?}")),
        }
    }

    /// Boolean switch present?
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let p = ParsedArgs::parse(&argv(&["--input", "a.tsv", "--no-stemming", "--k", "7"])).unwrap();
        assert_eq!(p.require("input").unwrap(), "a.tsv");
        assert!(p.switch("no-stemming"));
        assert!(!p.switch("no-fallback"));
        assert_eq!(p.get_num::<usize>("k", 20).unwrap(), 7);
        assert_eq!(p.get_num::<usize>("absent", 20).unwrap(), 20);
    }

    #[test]
    fn rejects_malformed() {
        assert!(ParsedArgs::parse(&argv(&["input"])).is_err());
        assert!(ParsedArgs::parse(&argv(&["--input"])).is_err());
        assert!(ParsedArgs::parse(&argv(&["--k", "1", "--k", "2"])).is_err());
        let p = ParsedArgs::parse(&argv(&["--k", "x"])).unwrap();
        assert!(p.get_num::<usize>("k", 1).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let p = ParsedArgs::parse(&argv(&[])).unwrap();
        assert_eq!(p.require("model").unwrap_err(), "missing --model");
    }
}

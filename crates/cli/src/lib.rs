//! Library backing the `graphex` binary. Every command is a pure function
//! from parsed arguments to an output string, so the whole surface is unit-
//! and integration-testable without spawning processes.

pub mod args;
pub mod commands;
pub mod records;

use args::ParsedArgs;

/// Top-level usage text.
pub fn usage() -> &'static str {
    "usage:
  graphex simulate --preset <cat1|cat2|cat3|tiny> --output <records.tsv> [--seed N]
  graphex build    (--input <f.tsv|f.ndjson[,more…]> | --marketsim <preset>)
                   (--output <model.gexm> and/or --publish <registry root>)
                   [--jobs N] [--delta <prev snapshot|registry root>]
                   [--overlay-journal <journal.txt>]
                   [--min-search N] [--alignment <lta|wmr|jac>]
                   [--no-stemming] [--no-fallback] [--strict] [--json]
                   [--note <text>] [--batch N]
                   [--seed N] [--generations N] [--churn-rate R]
  graphex infer    --model <model.gexm> --leaf <id> (--title <text> | --stdin)
                   [--k N] [--alignment <lta|wmr|jac>] [--outcome]
  graphex explain  --model <model.gexm> --leaf <id> --title <text> [--k N]
  graphex stats    (--model <model.gexm> | --server <host:port[,more…]>
                    | --map <shard map file>)
  graphex diff     --old <a.gexm> --new <b.gexm> [--max-listed N]
  graphex model    publish  --root <dir> --input <model.gexm> [--note <text>]
  graphex model    list     --root <dir>
  graphex model    rollback --root <dir>
  graphex model    inspect  (--root <dir> [--version N] | --model <file>)
  graphex model    verify   (--root <dir> [--version N] | --model <file>)
  graphex model    gc       --root <dir> [--keep N]
  graphex serve    (--model <model.gexm> | --root <dir> | --tenants <dir>)
                   [--resident N] [--default-tenant <name>] [--heap]
                   [--addr host:port] [--workers N] [--queue N] [--k N]
                   [--deadline-ms N] [--max-body BYTES] [--poll-ms N]
                   [--invalidate-on-swap] [--smoke]
                   [--overlay [--overlay-cap-bytes N]]
                   [--no-trace] [--trace-ring N] [--trace-slow-ms N]
  graphex overlay  status  --server <host:port> [--name <tenant>]
  graphex overlay  apply   --server <host:port> --input <records.tsv[,more…]>
                           [--name <tenant>] [--batch N]
  graphex overlay  compact --server <host:port> --input <records.tsv[,more…]>
                           --publish <registry root> [--name <tenant>]
                           [--jobs N] [--min-search N] [--note <text>]
  graphex tenant   list    --tenants <dir>
  graphex tenant   publish --tenants <dir> --name <tenant> --input <model.gexm>
                           [--note <text>]
  graphex tenant   evict   --tenants <dir> --name <tenant>
  graphex tenant   stats   (--server <host:port> [--name <tenant>]
                            | --tenants <dir> --name <tenant>)
  graphex route    (--map <file> | --backends <addr,addr,…>)
                   [--addr host:port] [--workers N] [--queue N]
                   [--backend-timeout-ms N] [--retries N] [--eject-after N]
  graphex trace    --server <host:port> [--slow] [--limit N] [--min-us N]
  graphex report   [--out <report.html>] [--bench-dir <dir>]
                   [--server <host:port> | --no-live]
                   [--no-eval] [--eval-items N] [--eval-seed N]
  graphex cluster  up    --root <cluster dir> [--addr host:port] [--k N]
                         [--workers N] [--poll-ms N]
  graphex cluster  smoke [--shards N] [--clients N] [--seed N]

build --shards N + --publish <dir> emits per-shard registries under
<dir>/shard-<i> for `graphex cluster up` / `graphex route`.

record TSV line: text<TAB>leaf_id<TAB>search_count<TAB>recall_count"
}

/// Parses and runs a command line (without the binary name).
pub fn dispatch(argv: &[String]) -> Result<String, String> {
    let (command, rest) = argv.split_first().ok_or_else(|| "missing command".to_string())?;
    if command == "model" {
        // `model` takes a positional verb before its flags.
        return commands::model::run(rest);
    }
    if command == "cluster" {
        // `cluster` too (up|smoke).
        return commands::cluster::run(rest);
    }
    if command == "tenant" {
        // `tenant` too (list|publish|evict|stats).
        return commands::tenant::run(rest);
    }
    if command == "overlay" {
        // `overlay` too (status|apply|compact).
        return commands::overlay::run(rest);
    }
    let parsed = ParsedArgs::parse(rest)?;
    match command.as_str() {
        "simulate" => commands::simulate::run(&parsed),
        "build" => commands::build::run(&parsed),
        "infer" => commands::infer::run(&parsed),
        "explain" => commands::explain::run(&parsed),
        "stats" => commands::stats::run(&parsed),
        "serve" => commands::serve::run(&parsed),
        "route" => commands::route::run(&parsed),
        "trace" => commands::trace::run(&parsed),
        "report" => commands::report::run(&parsed),
        "diff" => commands::diff::run(&parsed),
        "help" | "--help" | "-h" => Ok(format!("{}\n", usage())),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&argv(&[])).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = dispatch(&argv(&["help"])).unwrap();
        assert!(out.contains("graphex build"));
    }

    #[test]
    fn full_cli_roundtrip_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("graphex-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let records = dir.join("records.tsv");
        let model = dir.join("model.gexm");

        // simulate → build → stats → infer → explain
        let out = dispatch(&argv(&[
            "simulate", "--preset", "tiny", "--seed", "9", "--output",
            records.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("records"));

        let out = dispatch(&argv(&[
            "build", "--input", records.to_str().unwrap(), "--output", model.to_str().unwrap(),
            "--min-search", "2",
        ]))
        .unwrap();
        assert!(out.contains("keyphrases"), "{out}");

        let stats = dispatch(&argv(&["stats", "--model", model.to_str().unwrap()])).unwrap();
        assert!(stats.contains("leaves"));
        // The pipeline-written BUILDINFO sidecar surfaces curation stats.
        assert!(stats.contains("curation ("), "{stats}");

        // Find a leaf + phrase to test inference with, straight from the TSV.
        let tsv = std::fs::read_to_string(&records).unwrap();
        let first = tsv.lines().next().unwrap();
        let mut cols = first.split('\t');
        let text = cols.next().unwrap().to_string();
        let leaf = cols.next().unwrap().to_string();

        let inferred = dispatch(&argv(&[
            "infer", "--model", model.to_str().unwrap(), "--leaf", &leaf, "--title", &text, "--k",
            "5",
        ]))
        .unwrap();
        assert!(!inferred.trim().is_empty(), "no predictions for {text:?}");

        let explained = dispatch(&argv(&[
            "explain", "--model", model.to_str().unwrap(), "--leaf", &leaf, "--title", &text,
        ]))
        .unwrap();
        assert!(explained.contains("tokens"), "{explained}");

        // diff against a stricter rebuild of the same records
        let model2 = dir.join("model2.gexm");
        dispatch(&argv(&[
            "build", "--input", records.to_str().unwrap(), "--output", model2.to_str().unwrap(),
            "--min-search", "6",
        ]))
        .unwrap();
        let diffed = dispatch(&argv(&[
            "diff", "--old", model.to_str().unwrap(), "--new", model2.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(diffed.contains("removed"), "{diffed}");

        std::fs::remove_dir_all(&dir).ok();
    }
}

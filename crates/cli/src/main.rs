//! `graphex` — the GraphEx command-line tool.
//!
//! ```text
//! graphex simulate --preset cat3 --output records.tsv
//! graphex build    --input records.tsv --output model.gexm --min-search 10
//! graphex infer    --model model.gexm --leaf 3001 --title "audeze maxwell headphones"
//! graphex explain  --model model.gexm --leaf 3001 --title "audeze maxwell headphones"
//! graphex stats    --model model.gexm
//! ```
//!
//! Record TSV format (one keyphrase per line):
//! `text<TAB>leaf_id<TAB>search_count<TAB>recall_count`

use graphex_cli::{dispatch, usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            use std::io::Write;
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let _ = lock.write_all(output.as_bytes());
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            std::process::exit(1);
        }
    }
}

//! `graphex tenant <verb>` — fleet operations against a multi-tenant
//! root (`<root>/tenants/<name>/`, each a full [`ModelRegistry`] root).
//!
//! ```text
//! graphex tenant list    --tenants <root>
//! graphex tenant publish --tenants <root> --name <tenant> --input <model.gexm> [--note <text>]
//! graphex tenant evict   --tenants <root> --name <tenant>
//! graphex tenant stats   (--server <host:port> [--name <tenant>]
//!                         | --tenants <root> --name <tenant>)
//! ```
//!
//! Residency (which tenants are loaded, LRU order, serve counters) lives
//! in the serving process, so `stats --server` asks a running
//! `graphex serve --tenants` for its fleet table; the `--tenants` forms
//! operate on the on-disk layout (publish creates the tenant directory
//! if needed and is picked up by a live server's poll loop).

use crate::args::ParsedArgs;
use graphex_serving::{FleetConfig, ModelRegistry, TenantFleet};
use std::fmt::Write as _;

/// Dispatches a `tenant` sub-verb. Receives the raw argv after `tenant`
/// because the verb itself is positional, not a `--flag`.
pub fn run(argv: &[String]) -> Result<String, String> {
    let (verb, rest) = argv
        .split_first()
        .ok_or_else(|| "tenant: missing verb (list|publish|evict|stats)".to_string())?;
    let args = ParsedArgs::parse(rest)?;
    match verb.as_str() {
        "list" => list(&args),
        "publish" => publish(&args),
        "evict" => evict(&args),
        "stats" => stats(&args),
        other => Err(format!("tenant: unknown verb {other:?} (list|publish|evict|stats)")),
    }
}

fn open_fleet(args: &ParsedArgs) -> Result<TenantFleet, String> {
    let root = args.require("tenants")?;
    TenantFleet::open(root, FleetConfig::default())
        .map_err(|e| format!("open fleet {root}: {e}"))
}

/// On-disk view: names plus each tenant's registry manifest (a fresh CLI
/// process holds no residents, so the interesting columns are versions).
fn list(args: &ParsedArgs) -> Result<String, String> {
    let fleet = open_fleet(args)?;
    let names = fleet.names();
    if names.is_empty() {
        return Ok(format!("no tenants under {}\n", fleet.tenants_root().display()));
    }
    let mut out = String::from("tenant\tactive\tsnapshots\tbytes\tnote\n");
    for name in names {
        let root = fleet.tenants_root().join(&name);
        match ModelRegistry::attach(&root) {
            Ok(registry) => {
                let active = registry.pinned_version();
                let snapshots = registry.list().map_err(|e| format!("{name}: list: {e}"))?;
                let current =
                    active.and_then(|v| snapshots.iter().find(|m| m.version == v));
                let _ = writeln!(
                    out,
                    "{name}\t{}\t{}\t{}\t{}",
                    active.map_or_else(|| "-".into(), |v| v.to_string()),
                    snapshots.len(),
                    current.map_or(0, |m| m.size_bytes),
                    current.map_or("", |m| m.note.as_str()),
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{name}\t[unreadable: {e}]");
            }
        }
    }
    Ok(out)
}

fn publish(args: &ParsedArgs) -> Result<String, String> {
    let fleet = open_fleet(args)?;
    let name = args.require("name")?;
    let input = args.require("input")?;
    let note = args.get("note").unwrap_or("");
    let meta = fleet
        .publish_file(name, input, note)
        .map_err(|e| format!("publish {input}: {e}"))?;
    Ok(format!(
        "tenant {name}: published version {} ({} leaves, {} keyphrases, {} bytes, checksum {:016x})\n",
        meta.version, meta.leaves, meta.keyphrases, meta.size_bytes, meta.checksum,
    ))
}

/// Validates the tenant and drops any resident handles in *this*
/// process. A serving process manages its own residency (LRU + its own
/// `evict`); this verb is the scripted/test-harness form.
fn evict(args: &ParsedArgs) -> Result<String, String> {
    let fleet = open_fleet(args)?;
    let name = args.require("name")?;
    let was_resident = fleet.evict(name).map_err(|e| e.to_string())?;
    Ok(if was_resident {
        format!("tenant {name}: evicted\n")
    } else {
        format!("tenant {name}: already cold\n")
    })
}

fn stats(args: &ParsedArgs) -> Result<String, String> {
    if let Some(addr) = args.get("server") {
        return server_stats(addr, args.get("name"));
    }
    let fleet = open_fleet(args)?;
    let name = args.require("name")?;
    let status = fleet
        .status(name)
        .ok_or_else(|| format!("unknown tenant {name:?}"))?;
    let registry = ModelRegistry::attach(fleet.tenants_root().join(name))
        .map_err(|e| format!("attach {name}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "tenant: {name}");
    let _ = writeln!(out, "root: {}", registry.root().display());
    let _ = writeln!(
        out,
        "active version: {}",
        registry.pinned_version().map_or_else(|| "-".into(), |v| v.to_string())
    );
    let _ = writeln!(out, "snapshots: {}", registry.versions().map_err(|e| e.to_string())?.len());
    let _ = writeln!(out, "resident (this process): {}", status.resident);
    let _ = writeln!(out, "note: serve counters live in the serving process; use --server\n");
    Ok(out)
}

/// Fleet table from a running `graphex serve --tenants` (its `/statusz`).
fn server_stats(addr: &str, name: Option<&str>) -> Result<String, String> {
    let mut client = graphex_server::HttpClient::connect(addr)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client.get("/statusz").map_err(|e| format!("GET /statusz: {e}"))?;
    if response.status != 200 {
        return Err(format!("GET /statusz: HTTP {}", response.status));
    }
    let status = graphex_server::json::parse(&response.text())
        .map_err(|e| format!("statusz is not JSON: {e}"))?;
    if status.get("mode").and_then(|m| m.as_str()) != Some("fleet") {
        return Err(format!("{addr} is not a fleet server (single-tenant /statusz)"));
    }
    let tenants = status
        .get("tenants")
        .and_then(|t| t.as_arr())
        .ok_or_else(|| "statusz missing tenants table".to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet on http://{addr}: {} resident / cap {}, {} bytes resident",
        status.get("resident").and_then(|v| v.as_u64()).unwrap_or(0),
        status.get("resident_cap").and_then(|v| v.as_u64()).unwrap_or(0),
        status.get("resident_bytes").and_then(|v| v.as_u64()).unwrap_or(0),
    );
    let _ = writeln!(out, "tenant\tresident\tversion\tmode\tbytes\trequests\tadmissions\tevictions");
    let mut matched = false;
    for row in tenants {
        let row_name = row.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        if let Some(wanted) = name {
            if row_name != wanted {
                continue;
            }
        }
        matched = true;
        let field = |key: &str| row.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(
            out,
            "{row_name}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            row.get("resident").and_then(|v| v.as_bool()).unwrap_or(false),
            field("snapshot_version"),
            row.get("load_mode").and_then(|v| v.as_str()).unwrap_or("cold"),
            field("resident_bytes"),
            field("requests"),
            field("admissions"),
            field("evictions"),
        );
    }
    if !matched {
        return Err(match name {
            Some(wanted) => format!("server knows no tenant {wanted:?}"),
            None => "server reported an empty fleet".into(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn write_model(path: &std::path::Path, tag: u32) {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let model = GraphExBuilder::new(config)
            .add_records((0..5u32).map(|i| {
                KeyphraseRecord::new(format!("tenant{tag} gadget v{i}"), LeafId(i % 2), 50, 5)
            }))
            .build()
            .unwrap();
        graphex_core::serialize::save_to(&model, path).unwrap();
    }

    #[test]
    fn publish_list_evict_stats_cycle() {
        let dir = std::env::temp_dir().join(format!("graphex-cli-tenant-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let root = dir.join("fleet");
        let gexm = dir.join("m.gexm");
        write_model(&gexm, 1);
        let root_s = root.to_str().unwrap();
        let gexm_s = gexm.to_str().unwrap();

        let out = run(&argv(&[
            "publish", "--tenants", root_s, "--name", "alpha", "--input", gexm_s, "--note", "seed",
        ]))
        .unwrap();
        assert!(out.contains("tenant alpha: published version 1"), "{out}");
        write_model(&gexm, 2);
        run(&argv(&["publish", "--tenants", root_s, "--name", "beta", "--input", gexm_s])).unwrap();

        let out = run(&argv(&["list", "--tenants", root_s])).unwrap();
        assert!(out.contains("alpha\t1\t1\t"), "{out}");
        assert!(out.contains("beta\t1\t1\t"), "{out}");
        assert!(out.contains("seed"), "{out}");

        let out = run(&argv(&["evict", "--tenants", root_s, "--name", "alpha"])).unwrap();
        assert!(out.contains("already cold"), "{out}");

        let out = run(&argv(&["stats", "--tenants", root_s, "--name", "alpha"])).unwrap();
        assert!(out.contains("active version: 1"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(&argv(&[])).is_err());
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&["publish", "--tenants", "/tmp/x"])).is_err()); // missing --name
        let dir =
            std::env::temp_dir().join(format!("graphex-cli-tenant-err-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let root_s = dir.to_str().unwrap();
        assert!(run(&argv(&["evict", "--tenants", root_s, "--name", "ghost"])).is_err());
        assert!(run(&argv(&["stats", "--tenants", root_s, "--name", "../up"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! `graphex route` — boot the scatter-gather router edge over a shard
//! map (`--map <file>` in the `graphex-shardmap` text format, or
//! `--backends host:port,host:port,…` with shard i = position i).
//!
//! The router holds no model: it hashes each request's `leaf` to a
//! backend (`leaf % shards`), fans batches out concurrently, and merges
//! the answers. Backend failures degrade the affected requests to
//! `backend_unavailable` entries — the edge itself keeps answering 200.

use crate::args::ParsedArgs;
use graphex_server::{start_router, RouterConfig, ShardMap};
use std::time::Duration;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let map = map_from(args)?;
    let config = config_from(args)?;
    let router = start_router(config, map)
        .map_err(|e| format!("bind {}: {e}", args.get("addr").unwrap_or("127.0.0.1:7800")))?;
    println!(
        "graphex-router listening on http://{} ({} shard(s))",
        router.addr(),
        router.map().shards()
    );
    for (shard, backend) in router.map().backends().iter().enumerate() {
        println!("  shard {shard} -> {backend}");
    }
    println!("endpoints: POST /v1/infer  GET /healthz  GET /statusz  GET /metrics");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Shared with `graphex stats`: a shard map from `--map` or `--backends`.
pub(crate) fn map_from(args: &ParsedArgs) -> Result<ShardMap, String> {
    match (args.get("map"), args.get("backends")) {
        (Some(_), Some(_)) => Err("pass --map or --backends, not both".into()),
        (Some(path), None) => ShardMap::load(path),
        (None, Some(list)) => ShardMap::from_backends(
            list.split(',').filter(|a| !a.is_empty()).map(str::to_string).collect(),
        ),
        (None, None) => Err("missing --map <file> or --backends <addr,addr,…>".into()),
    }
}

pub(crate) fn config_from(args: &ParsedArgs) -> Result<RouterConfig, String> {
    let defaults = RouterConfig::default();
    Ok(RouterConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7800").to_string(),
        workers: args.get_num::<usize>("workers", defaults.workers)?.max(1),
        queue_depth: args.get_num::<usize>("queue", defaults.queue_depth)?.max(1),
        max_body_bytes: args.get_num::<usize>("max-body", defaults.max_body_bytes)?,
        backend_timeout: Duration::from_millis(
            args.get_num::<u64>("backend-timeout-ms", 2000)?.max(1),
        ),
        retries: args.get_num::<u32>("retries", defaults.retries)?,
        eject_after: args.get_num::<u32>("eject-after", defaults.eject_after)?.max(1),
        ..defaults
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(s: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn backends_flag_builds_a_map() {
        let map = map_from(&parsed(&["--backends", "a:1,b:2,c:3"])).unwrap();
        assert_eq!(map.shards(), 3);
        assert_eq!(map.backend_for_leaf(4), "b:2");
        assert!(map_from(&parsed(&[])).is_err());
        assert!(map_from(&parsed(&["--map", "x", "--backends", "a:1"])).is_err());
    }

    #[test]
    fn config_flags_override_defaults() {
        let config = config_from(&parsed(&[
            "--addr",
            "127.0.0.1:0",
            "--backend-timeout-ms",
            "250",
            "--retries",
            "0",
            "--eject-after",
            "5",
        ]))
        .unwrap();
        assert_eq!(config.backend_timeout, Duration::from_millis(250));
        assert_eq!(config.retries, 0);
        assert_eq!(config.eject_after, 5);
    }
}

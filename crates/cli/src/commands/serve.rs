//! `graphex serve` — boot the HTTP/1.1 network frontend over a model
//! file (`--model`, fixed snapshot), a registry root (`--root`,
//! hot-swap: the server polls `CURRENT` and activates republished
//! snapshots under live traffic, so `graphex model publish`/`rollback`
//! from another process propagates without restart), or a multi-tenant
//! fleet root (`--tenants`, path-multiplexed: `POST /v1/t/<name>/infer`
//! per tenant, `--resident N` caps how many are loaded at once, and one
//! poll loop hot-swaps every resident tenant).
//!
//! `--smoke` boots on an ephemeral port with a built-in demo model, runs
//! a client against all four endpoints (including malformed-request
//! probes), shuts down gracefully, and reports — the self-contained CI
//! gate behind `make serve-smoke`.

use crate::args::ParsedArgs;
use graphex_core::serialize::LoadMode;
use graphex_core::{Engine, GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};
use graphex_serving::{
    FleetConfig, KvStore, ModelRegistry, ModelWatch, OverlayStore, ServingApi, SwapPolicy,
    TenantFleet, DEFAULT_OVERLAY_CAP_BYTES,
};
use graphex_server::{HistoryConfig, HttpClient, ServerConfig, TraceConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    if args.switch("smoke") {
        return smoke();
    }

    let config = config_from(args)?;
    let default_k = args.get_num::<usize>("k", 10)?;
    let policy = if args.switch("invalidate-on-swap") {
        SwapPolicy::Invalidate
    } else {
        SwapPolicy::Serve
    };

    if let Some(tenants_root) = args.get("tenants") {
        if args.get("model").is_some() || args.get("root").is_some() {
            return Err("pass --tenants, --root, or --model — not a combination".into());
        }
        return serve_fleet(args, config, tenants_root, default_k, policy);
    }

    let (watch, registry) = match (args.get("model"), args.get("root")) {
        (Some(_), Some(_)) => return Err("pass --model or --root, not both".into()),
        (Some(path), None) => {
            let model = graphex_core::serialize::load_from(path)
                .map_err(|e| format!("load {path}: {e}"))?;
            (ModelWatch::fixed(Engine::from_model(model)), None)
        }
        (None, Some(root)) => {
            let registry =
                Arc::new(ModelRegistry::open(root).map_err(|e| format!("open {root}: {e}"))?);
            let watch = registry
                .watch()
                .map_err(|e| format!("registry {root} holds no servable snapshot: {e}"))?;
            (watch, Some(registry))
        }
        (None, None) => return Err("missing --model <file> or --root <dir>".into()),
    };

    let mut api =
        ServingApi::with_watch(watch, Arc::new(KvStore::new()), default_k).swap_policy(policy);
    let overlay = args.switch("overlay");
    if overlay {
        let cap = args.get_num::<usize>("overlay-cap-bytes", DEFAULT_OVERLAY_CAP_BYTES)?;
        api = api.with_overlay(Arc::new(OverlayStore::with_cap(cap)));
    }
    let api = Arc::new(api);
    let server = graphex_server::start(config, Arc::clone(&api))
        .map_err(|e| format!("bind {}: {e}", args.get("addr").unwrap_or("127.0.0.1:7878")))?;
    println!(
        "graphex-server listening on http://{} (snapshot_version {})",
        server.addr(),
        api.stats().snapshot_version
    );
    println!("endpoints: POST /v1/infer  GET /healthz  GET /statusz  GET /metrics");
    if overlay {
        println!(
            "overlay (NRT writes): POST /v1/upsert  GET /v1/overlay/journal  POST /v1/overlay/drain"
        );
    }

    // Registry mode: poll CURRENT so cross-process publishes/rollbacks
    // hot-swap this server. The poll thread is the process's only
    // activation driver; the watch inside the api observes each swap.
    if let Some(registry) = registry {
        let poll = Duration::from_millis(args.get_num::<u64>("poll-ms", 2000)?.max(100));
        loop {
            std::thread::sleep(poll);
            let pinned = registry.pinned_version();
            if pinned != registry.current_version() {
                if let Some(version) = pinned {
                    match registry.activate(version) {
                        Ok(_) => println!("hot-swapped to snapshot_version {version}"),
                        Err(e) => eprintln!("activation of {version} failed: {e} (still serving)"),
                    }
                }
            }
        }
    }
    // Fixed-model mode: serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `--tenants <root>`: boot the path-multiplexed fleet frontend. One
/// poll loop drives hot swaps for every resident tenant.
fn serve_fleet(
    args: &ParsedArgs,
    config: ServerConfig,
    tenants_root: &str,
    default_k: usize,
    policy: SwapPolicy,
) -> Result<String, String> {
    let fleet_config = FleetConfig {
        resident_cap: args.get_num::<usize>("resident", 4)?,
        default_k,
        load_mode: if args.switch("heap") { LoadMode::Heap } else { LoadMode::Mmap },
        swap_policy: policy,
        default_tenant: args.get("default-tenant").unwrap_or("default").to_string(),
        overlay: args.switch("overlay"),
        overlay_cap_bytes: args
            .get_num::<usize>("overlay-cap-bytes", DEFAULT_OVERLAY_CAP_BYTES)?,
    };
    let fleet = Arc::new(
        TenantFleet::open(tenants_root, fleet_config)
            .map_err(|e| format!("open fleet {tenants_root}: {e}"))?,
    );
    let names = fleet.names();
    let server = graphex_server::start_fleet(config, Arc::clone(&fleet))
        .map_err(|e| format!("bind {}: {e}", args.get("addr").unwrap_or("127.0.0.1:7878")))?;
    println!(
        "graphex-server (fleet) listening on http://{} — {} tenants, resident cap {}, {} backend",
        server.addr(),
        names.len(),
        fleet.config().resident_cap,
        fleet.config().load_mode,
    );
    println!("tenants: {}", if names.is_empty() { "(none yet)".into() } else { names.join(", ") });
    println!(
        "endpoints: POST /v1/t/<tenant>/infer  POST /v1/infer (tenant {:?})  GET /healthz  GET /statusz  GET /metrics",
        fleet.default_tenant()
    );
    if fleet.config().overlay {
        println!(
            "overlay (NRT writes): POST /v1/t/<tenant>/upsert  GET /v1/t/<tenant>/overlay/journal  POST /v1/t/<tenant>/overlay/drain"
        );
    }

    let poll = Duration::from_millis(args.get_num::<u64>("poll-ms", 2000)?.max(100));
    loop {
        std::thread::sleep(poll);
        for (tenant, result) in fleet.poll_publishes() {
            match result {
                Ok(version) => println!("tenant {tenant}: hot-swapped to snapshot_version {version}"),
                Err(e) => eprintln!("tenant {tenant}: activation failed: {e} (still serving)"),
            }
        }
    }
}

fn config_from(args: &ParsedArgs) -> Result<ServerConfig, String> {
    let deadline_ms = args.get_num::<u64>("deadline-ms", 2000)?;
    let trace_defaults = TraceConfig::default();
    let trace = TraceConfig {
        enabled: !args.switch("no-trace"),
        ring: args.get_num::<usize>("trace-ring", trace_defaults.ring)?.max(1),
        slow_ring: trace_defaults.slow_ring,
        slow_threshold: Duration::from_millis(
            args.get_num::<u64>(
                "trace-slow-ms",
                trace_defaults.slow_threshold.as_millis() as u64,
            )?
            .max(1),
        ),
    };
    let history_defaults = HistoryConfig::default();
    let history = HistoryConfig {
        enabled: !args.switch("no-history"),
        interval: Duration::from_millis(
            args.get_num::<u64>(
                "history-interval-ms",
                history_defaults.interval.as_millis() as u64,
            )?
            .max(10),
        ),
        ring: args.get_num::<usize>("history-ring", history_defaults.ring)?.max(1),
    };
    Ok(ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.get_num::<usize>("workers", 4)?.max(1),
        queue_depth: args.get_num::<usize>("queue", 64)?.max(1),
        max_body_bytes: args.get_num::<usize>("max-body", 1 << 20)?,
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        keep_alive_timeout: Duration::from_secs(5),
        trace,
        history,
    })
}

/// A small servable model for the smoke check (no files needed). The
/// overlay is attached so the smoke run exercises the NRT write path.
/// `graphex report` reuses it to capture live history/trace sections
/// without a running deployment.
pub(crate) fn demo_api() -> Result<Arc<ServingApi>, String> {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    let model = GraphExBuilder::new(config)
        .add_records((0..8u32).map(|i| {
            KeyphraseRecord::new(format!("acme widget model{i}"), LeafId(i % 2), 50 + i, 5)
        }))
        .build()
        .map_err(|e| format!("demo model: {e}"))?;
    Ok(Arc::new(
        ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10)
            .with_overlay(Arc::new(OverlayStore::new())),
    ))
}

/// Boot → probe all endpoints → graceful shutdown. Any failed probe is a
/// hard error (non-zero exit through `dispatch`). Runs twice: once over
/// a single-api backend, once over a temp-dir tenant fleet, so the
/// history/trace surfaces are proven in both backend modes.
fn smoke() -> Result<String, String> {
    let api = demo_api()?;
    let config = ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() };
    let server = graphex_server::start(config, api).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let mut out = String::new();
    let _ = writeln!(out, "smoke server on http://{addr}");

    let result = smoke_probes(addr, &mut out).and_then(|()| {
        // The traffic above is in the counters; force a sample so the
        // history probes don't wait out the 1s interval.
        server.sample_history_now();
        history_probes(addr, &mut out)
    });
    server.shutdown();
    let _ = writeln!(out, "graceful shutdown: ok");
    result?;

    smoke_fleet(&mut out)?;
    let _ = writeln!(out, "serve smoke: all probes passed");
    Ok(out)
}

/// Fleet-mode smoke: a temp-dir fleet with one tenant, probed for the
/// same history surfaces the single-mode server answers.
fn smoke_fleet(out: &mut String) -> Result<(), String> {
    let root = std::env::temp_dir()
        .join(format!("graphex-serve-smoke-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let fleet = TenantFleet::open(&root, FleetConfig::default())
        .map_err(|e| format!("smoke fleet open: {e}"))?;
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 0;
    let model = GraphExBuilder::new(config)
        .add_records(
            (0..4u32).map(|i| KeyphraseRecord::new(format!("fleet widget {i}"), LeafId(1), 50, 5)),
        )
        .build()
        .map_err(|e| format!("smoke fleet model: {e}"))?;
    fleet
        .publish_model("default", &model, "smoke")
        .map_err(|e| format!("smoke fleet publish: {e}"))?;
    let server = graphex_server::start_fleet(
        ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        Arc::new(fleet),
    )
    .map_err(|e| format!("smoke fleet bind: {e}"))?;
    let addr = server.addr();
    let _ = writeln!(out, "smoke fleet server on http://{addr}");

    let io = |e: std::io::Error| format!("smoke fleet client: {e}");
    let mut client = HttpClient::connect(addr).map_err(io)?;
    let infer = client
        .post_json("/v1/t/default/infer", r#"{"title":"fleet widget 1","leaf":1,"k":3}"#)
        .map_err(io)?;
    expect(out, "POST /v1/t/default/infer (fleet)", infer.status, 200)?;
    drop(client);
    server.sample_history_now();
    let result = history_probes(addr, out).and_then(|()| {
        // Fleet samples must carry per-tenant series.
        let mut client = HttpClient::connect(addr).map_err(io)?;
        let history = client.get("/debug/history?series=tenant/default").map_err(io)?;
        let parsed = graphex_server::json::parse(&history.text())
            .map_err(|e| format!("fleet debug/history is not JSON: {e}"))?;
        let has_tenant_series = parsed
            .get("series")
            .and_then(|s| s.get("tenant/default/serve/requests"))
            .is_some();
        if !has_tenant_series {
            return Err(format!(
                "fleet history missing per-tenant series: {}",
                history.text()
            ));
        }
        let _ = writeln!(out, "fleet per-tenant history series: ok");
        Ok(())
    });
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
    result
}

/// Probes `GET /debug/history` and the `/statusz` history block; the
/// caller has already driven traffic and forced a sample.
fn history_probes(addr: std::net::SocketAddr, out: &mut String) -> Result<(), String> {
    let io = |e: std::io::Error| format!("smoke client: {e}");
    let mut client = HttpClient::connect(addr).map_err(io)?;
    let history = client.get("/debug/history").map_err(io)?;
    expect(out, "GET /debug/history", history.status, 200)?;
    if history.header("content-type") != Some("application/json") {
        return Err(format!(
            "debug/history content-type: {:?}",
            history.header("content-type")
        ));
    }
    let parsed = graphex_server::json::parse(&history.text())
        .map_err(|e| format!("debug/history is not JSON: {e}"))?;
    let samples = parsed.get("samples").and_then(|v| v.as_u64()).unwrap_or(0);
    if samples == 0 {
        return Err(format!("debug/history holds no samples: {}", history.text()));
    }
    if parsed.get("series").and_then(|s| s.get("http/requests")).is_none() {
        return Err(format!("debug/history missing http/requests series: {}", history.text()));
    }

    let status = client.get("/statusz").map_err(io)?;
    expect(out, "GET /statusz (history block)", status.status, 200)?;
    let stats = graphex_server::json::parse(&status.text())
        .map_err(|e| format!("statusz is not JSON: {e}"))?;
    let block = stats.get("history").ok_or("statusz missing history block")?;
    if block.get("sparklines").is_none() {
        return Err(format!("statusz history block missing sparklines: {}", status.text()));
    }
    Ok(())
}

fn smoke_probes(addr: std::net::SocketAddr, out: &mut String) -> Result<(), String> {
    let io = |e: std::io::Error| format!("smoke client: {e}");
    let mut client = HttpClient::connect(addr).map_err(io)?;

    let health = client.get("/healthz").map_err(io)?;
    expect(out, "GET /healthz", health.status, 200)?;

    let single = client
        .post_json("/v1/infer", r#"{"title":"acme widget model3","leaf":1,"k":5,"id":42}"#)
        .map_err(io)?;
    expect(out, "POST /v1/infer (single)", single.status, 200)?;
    if single.header("x-graphex-trace").is_none() {
        return Err("infer response missing x-graphex-trace header".into());
    }
    let body = graphex_server::json::parse(&single.text())
        .map_err(|e| format!("infer response is not JSON: {e}"))?;
    match body.get("keyphrases").and_then(|k| k.as_arr()) {
        Some(keyphrases) if !keyphrases.is_empty() => {}
        _ => return Err(format!("infer returned no keyphrases: {}", single.text())),
    }
    if body.get("trace_id").and_then(|v| v.as_str()).is_none() {
        return Err(format!("infer response missing trace_id: {}", single.text()));
    }

    let batch = client
        .post_json(
            "/v1/infer",
            r#"{"requests":[{"title":"acme widget model0","leaf":0},{"title":"acme widget model1","leaf":1}]}"#,
        )
        .map_err(io)?;
    expect(out, "POST /v1/infer (batch)", batch.status, 200)?;

    let status = client.get("/statusz").map_err(io)?;
    expect(out, "GET /statusz", status.status, 200)?;
    let stats = graphex_server::json::parse(&status.text())
        .map_err(|e| format!("statusz is not JSON: {e}"))?;
    for key in ["snapshot_version", "in_flight", "shed", "deadline_exceeded"] {
        if stats.get(key).and_then(|v| v.as_u64()).is_none() {
            return Err(format!("statusz missing {key:?}: {}", status.text()));
        }
    }
    for key in ["latency", "trace"] {
        if stats.get(key).is_none() {
            return Err(format!("statusz missing {key:?} block: {}", status.text()));
        }
    }
    let recorded = stats
        .get("trace")
        .and_then(|t| t.get("recorded"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if recorded == 0 {
        return Err(format!("statusz trace block recorded nothing: {}", status.text()));
    }

    // The flight recorder: the traced requests above must be retrievable.
    let traces = client.get("/debug/traces").map_err(io)?;
    expect(out, "GET /debug/traces", traces.status, 200)?;
    let recorder = graphex_server::json::parse(&traces.text())
        .map_err(|e| format!("debug/traces is not JSON: {e}"))?;
    match recorder.get("traces").and_then(|t| t.as_arr()) {
        Some(records) if !records.is_empty() => {
            for record in records {
                if record.get("id").and_then(|v| v.as_str()).is_none()
                    || record.get("spans").and_then(|s| s.as_arr()).is_none()
                {
                    return Err(format!("malformed trace record: {}", record.render()));
                }
            }
        }
        _ => return Err(format!("debug/traces holds no records: {}", traces.text())),
    }

    // The NRT write path: upsert a brand-new leaf, serve it on the very
    // next request, export the journal, drain it.
    let upsert = client
        .post_json("/v1/upsert", r#"{"text":"acme overlay onboard","leaf":99,"search":70,"recall":5}"#)
        .map_err(io)?;
    expect(out, "POST /v1/upsert", upsert.status, 200)?;
    let served = client
        .post_json("/v1/infer", r#"{"title":"acme overlay onboard","leaf":99,"k":3}"#)
        .map_err(io)?;
    expect(out, "POST /v1/infer (upserted leaf)", served.status, 200)?;
    let body = graphex_server::json::parse(&served.text())
        .map_err(|e| format!("infer response is not JSON: {e}"))?;
    let servable = body
        .get("keyphrases")
        .and_then(|k| k.as_arr())
        .is_some_and(|k| k.iter().any(|p| p.as_str() == Some("acme overlay onboard")));
    if !servable {
        return Err(format!("upserted phrase not servable: {}", served.text()));
    }
    let journal = client.get("/v1/overlay/journal").map_err(io)?;
    expect(out, "GET /v1/overlay/journal", journal.status, 200)?;
    if !journal.text().contains("acme overlay onboard") {
        return Err("journal export missing the upserted record".into());
    }
    let drained = client.post_json("/v1/overlay/drain", r#"{"upto":1}"#).map_err(io)?;
    expect(out, "POST /v1/overlay/drain", drained.status, 200)?;

    let metrics = client.get("/metrics").map_err(io)?;
    expect(out, "GET /metrics", metrics.status, 200)?;
    if !metrics.text().contains("graphex_http_requests_total") {
        return Err("metrics missing graphex_http_requests_total".into());
    }
    if !metrics.text().contains("graphex_overlay_depth") {
        return Err("metrics missing graphex_overlay_depth".into());
    }
    if !metrics.text().contains("graphex_stage_latency_seconds") {
        return Err("metrics missing graphex_stage_latency_seconds".into());
    }

    // Malformed traffic must map to 4xx, not a hang or panic. Each probe
    // uses a fresh connection (the server closes after an error).
    for (label, expected, probe) in [
        ("bad JSON", 400, ("/v1/infer", Some("not json"))),
        ("unknown path", 404, ("/nope", None)),
        ("wrong method", 405, ("/healthz", Some("{}"))),
    ] {
        let mut c = HttpClient::connect(addr).map_err(io)?;
        let response = match probe {
            (path, Some(body)) => c.post_json(path, body).map_err(io)?,
            (path, None) => c.get(path).map_err(io)?,
        };
        expect(out, label, response.status, expected)?;
    }
    Ok(())
}

fn expect(out: &mut String, what: &str, got: u16, want: u16) -> Result<(), String> {
    if got != want {
        return Err(format!("{what}: expected HTTP {want}, got {got}"));
    }
    let _ = writeln!(out, "{what}: {got} ok");
    Ok(())
}

//! `graphex trace` — fetch the flight recorder of a running server or
//! router (`GET /debug/traces`) and render each trace as an aligned
//! waterfall: one row per stage span, positioned and scaled against the
//! request's end-to-end time. `--slow` reads the slow ring instead of
//! the recent ring; router traces additionally show the per-backend
//! breakdowns the router parsed out of its sub-responses.

use crate::args::ParsedArgs;
use graphex_server::Json;
use std::fmt::Write as _;

/// Width of the waterfall bar, in characters.
const BAR_WIDTH: usize = 40;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let addr = args.require("server")?;
    let mut query = Vec::new();
    if args.switch("slow") {
        query.push("slow=1".to_string());
    }
    if let Some(min_us) = args.get("min-us") {
        query.push(format!("min_us={min_us}"));
    }
    query.push(format!("limit={}", args.get_num::<usize>("limit", 8)?));
    let path = format!("/debug/traces?{}", query.join("&"));

    let mut client = graphex_server::HttpClient::connect(addr)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client.get(&path).map_err(|e| format!("GET {path}: {e}"))?;
    if response.status == 404 {
        return Err(format!("tracing is disabled on {addr}"));
    }
    if response.status != 200 {
        return Err(format!("GET {path}: HTTP {}", response.status));
    }
    let doc = graphex_server::json::parse(&response.text())
        .map_err(|e| format!("debug/traces payload: {e}"))?;
    Ok(render(addr, &doc))
}

fn render(addr: &str, doc: &Json) -> String {
    let num = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder on {addr}: ring {}  recorded {:.0}  slow {:.0} (threshold {:.0}\u{b5}s)",
        doc.get("ring").and_then(Json::as_str).unwrap_or("recent"),
        num("recorded"),
        num("slow"),
        num("slow_threshold_us"),
    );
    let Some(traces) = doc.get("traces").and_then(Json::as_arr) else {
        let _ = writeln!(out, "(malformed payload: no traces array)");
        return out;
    };
    if traces.is_empty() {
        let _ = writeln!(out, "(no traces on this ring yet)");
        return out;
    }
    for trace in traces {
        let _ = writeln!(out);
        render_one(&mut out, trace);
    }
    out
}

/// One trace: a header line, the stage waterfall, and (router traces)
/// each backend's embedded breakdown scaled against the same axis.
fn render_one(out: &mut String, trace: &Json) {
    let total_us = trace.get("total_us").and_then(Json::as_f64).unwrap_or(0.0);
    let _ = write!(
        out,
        "trace {}  status {}  entries {}",
        trace.get("id").and_then(Json::as_str).unwrap_or("?"),
        trace.get("status").and_then(Json::as_u64).unwrap_or(0),
        trace.get("entries").and_then(Json::as_u64).unwrap_or(0),
    );
    if let Some(tenant) = trace.get("tenant").and_then(Json::as_str) {
        let _ = write!(out, "  tenant {tenant}");
    }
    let _ = writeln!(out, "  total {total_us:.1}\u{b5}s");
    if let Some(spans) = trace.get("spans").and_then(Json::as_arr) {
        for span in spans {
            span_row(out, "  ", span, total_us);
        }
    }
    let Some(backends) = trace.get("backends").and_then(Json::as_arr) else {
        return;
    };
    for backend in backends {
        let _ = writeln!(
            out,
            "  backend shard={} {}  total {:.1}\u{b5}s",
            backend.get("shard").and_then(Json::as_u64).unwrap_or(0),
            backend.get("addr").and_then(Json::as_str).unwrap_or("?"),
            backend.get("total_us").and_then(Json::as_f64).unwrap_or(0.0),
        );
        if let Some(spans) = backend.get("spans").and_then(Json::as_arr) {
            for span in spans {
                // Backend spans are offsets from the *backend's* origin;
                // the shared axis still orders them usefully because the
                // fanout dominates the router's timeline.
                span_row(out, "    ", span, total_us);
            }
        }
    }
}

/// One aligned span row: stage, start offset, duration, waterfall bar.
fn span_row(out: &mut String, indent: &str, span: &Json, total_us: f64) {
    let stage = span.get("stage").and_then(Json::as_str).unwrap_or("?");
    let start_us = span.get("start_us").and_then(Json::as_f64).unwrap_or(0.0);
    let us = span.get("us").and_then(Json::as_f64).unwrap_or(0.0);
    let detail = span.get("detail").and_then(Json::as_u64).unwrap_or(0);
    let _ = write!(
        out,
        "{indent}{stage:<18} @{start_us:>9.1}\u{b5}s  +{us:>9.1}\u{b5}s  |{}|",
        bar(start_us, us, total_us),
    );
    if detail != 0 {
        let _ = write!(out, "  detail={detail}");
    }
    let _ = writeln!(out);
}

/// The waterfall bar: `·` padding, `#` for the span's extent (always at
/// least one cell so instantaneous spans stay visible).
fn bar(start_us: f64, us: f64, total_us: f64) -> String {
    let scale = |v: f64| {
        if total_us <= 0.0 {
            0
        } else {
            ((v / total_us) * BAR_WIDTH as f64).round() as usize
        }
    };
    let lead = scale(start_us).min(BAR_WIDTH.saturating_sub(1));
    let body = scale(us).clamp(1, BAR_WIDTH - lead);
    let mut cells = String::with_capacity(BAR_WIDTH);
    for _ in 0..lead {
        cells.push('\u{b7}');
    }
    for _ in 0..body {
        cells.push('#');
    }
    while cells.chars().count() < BAR_WIDTH {
        cells.push('\u{b7}');
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_positions_and_clamps() {
        // Span covering the whole request fills the bar.
        assert_eq!(bar(0.0, 100.0, 100.0), "#".repeat(BAR_WIDTH));
        // Zero-length spans still paint one cell.
        let b = bar(50.0, 0.0, 100.0);
        assert_eq!(b.chars().count(), BAR_WIDTH);
        assert_eq!(b.chars().filter(|&c| c == '#').count(), 1);
        // Degenerate totals never panic or divide by zero.
        assert_eq!(bar(10.0, 10.0, 0.0).chars().count(), BAR_WIDTH);
        // A span that extends past the end (clock skew) clamps in-bar.
        assert_eq!(bar(90.0, 50.0, 100.0).chars().count(), BAR_WIDTH);
    }

    #[test]
    fn renders_waterfall_with_backends() {
        let doc = graphex_server::json::parse(
            r#"{"ring":"recent","recorded":1,"slow":0,"slow_threshold_us":25000,
                "traces":[{"id":"00000000deadbeef","status":200,"entries":2,"total_us":100.0,
                  "spans":[{"stage":"parse","start_us":1.0,"us":5.0,"detail":0},
                           {"stage":"fanout","start_us":10.0,"us":80.0,"detail":1}],
                  "backends":[{"shard":1,"addr":"127.0.0.1:9","total_us":60.0,
                    "spans":[{"stage":"traversal","start_us":2.0,"us":40.0,"detail":0}]}]}]}"#,
        )
        .unwrap();
        let text = render("127.0.0.1:0", &doc);
        assert!(text.contains("trace 00000000deadbeef"), "{text}");
        assert!(text.contains("parse"), "{text}");
        assert!(text.contains("backend shard=1"), "{text}");
        assert!(text.contains("detail=1"), "{text}");
        // Every span row carries a bar of the fixed width.
        for line in text.lines().filter(|l| l.contains('|')) {
            let bar: String =
                line.chars().skip_while(|&c| c != '|').skip(1).take_while(|&c| c != '|').collect();
            assert_eq!(bar.chars().count(), BAR_WIDTH, "{line}");
        }
    }

    #[test]
    fn empty_ring_reports_cleanly() {
        let doc = graphex_server::json::parse(
            r#"{"ring":"slow","recorded":0,"slow":0,"slow_threshold_us":25000,"traces":[]}"#,
        )
        .unwrap();
        assert!(render("x", &doc).contains("no traces"));
    }
}

//! `graphex model <verb>` — snapshot lifecycle operations against a
//! [`ModelRegistry`] directory (or a bare `.gexm` file for
//! `inspect`/`verify`).
//!
//! ```text
//! graphex model publish  --root <dir> --input <model.gexm> [--note <text>]
//! graphex model list     --root <dir>
//! graphex model rollback --root <dir>
//! graphex model inspect  (--root <dir> [--version N] | --model <file.gexm>)
//! graphex model verify   (--root <dir> [--version N] | --model <file.gexm>)
//! graphex model gc       --root <dir> [--keep N]
//! ```

use crate::args::ParsedArgs;
use graphex_core::serialize::{self, SnapshotInfo};
use graphex_serving::ModelRegistry;
use std::fmt::Write as _;

/// Dispatches a `model` sub-verb. Receives the raw argv after `model`
/// because the verb itself is positional, not a `--flag`.
pub fn run(argv: &[String]) -> Result<String, String> {
    let (verb, rest) = argv
        .split_first()
        .ok_or_else(|| "model: missing verb (publish|list|rollback|inspect|verify|gc)".to_string())?;
    let args = ParsedArgs::parse(rest)?;
    match verb.as_str() {
        "publish" => publish(&args),
        "list" => list(&args),
        "rollback" => rollback(&args),
        "inspect" => inspect(&args),
        "verify" => verify(&args),
        "gc" => gc(&args),
        other => Err(format!("model: unknown verb {other:?} (publish|list|rollback|inspect|verify|gc)")),
    }
}

/// Full open: runs admission and activates — only for verbs that are
/// supposed to change (or rely on) the active model.
fn open_registry(args: &ParsedArgs) -> Result<ModelRegistry, String> {
    let root = args.require("root")?;
    ModelRegistry::open(root).map_err(|e| format!("open registry {root}: {e}"))
}

/// Read-only attach: no model load, no warm-up, `CURRENT` untouched —
/// for `list`/`inspect`/`verify`/`gc`, which must not re-run admission
/// (or rewrite state) on a registry another process serves from.
fn attach_registry(args: &ParsedArgs) -> Result<ModelRegistry, String> {
    let root = args.require("root")?;
    ModelRegistry::attach(root).map_err(|e| format!("attach registry {root}: {e}"))
}

fn publish(args: &ParsedArgs) -> Result<String, String> {
    let registry = open_registry(args)?;
    let input = args.require("input")?;
    let note = args.get("note").unwrap_or("");
    let meta = registry
        .publish_file(input, note)
        .map_err(|e| format!("publish {input}: {e}"))?;
    Ok(format!(
        "published version {} (format v{}, {} leaves, {} keyphrases, {} bytes, checksum {:016x})\nactive: {}\n",
        meta.version,
        meta.format,
        meta.leaves,
        meta.keyphrases,
        meta.size_bytes,
        meta.checksum,
        registry.current_version().unwrap_or_default(),
    ))
}

fn list(args: &ParsedArgs) -> Result<String, String> {
    let registry = attach_registry(args)?;
    let current = registry.pinned_version();
    let snapshots = registry.list().map_err(|e| format!("list: {e}"))?;
    if snapshots.is_empty() {
        return Ok("no snapshots published\n".into());
    }
    let mut out = String::from("version\tformat\tleaves\tkeyphrases\tbytes\tchecksum\tnote\n");
    for meta in snapshots {
        let marker = if Some(meta.version) == current { "*" } else { " " };
        let _ = writeln!(
            out,
            "{marker}{}\tv{}\t{}\t{}\t{}\t{:016x}\t{}",
            meta.version, meta.format, meta.leaves, meta.keyphrases, meta.size_bytes,
            meta.checksum, meta.note,
        );
    }
    Ok(out)
}

fn rollback(args: &ParsedArgs) -> Result<String, String> {
    let registry = open_registry(args)?;
    let (from, to) = registry.rollback().map_err(|e| format!("rollback: {e}"))?;
    Ok(format!("rolled back: version {from} -> {to}\n"))
}

fn gc(args: &ParsedArgs) -> Result<String, String> {
    let registry = attach_registry(args)?;
    let keep = args.get_num::<usize>("keep", 3)?;
    let removed = registry.gc(keep).map_err(|e| format!("gc: {e}"))?;
    if removed.is_empty() {
        Ok(format!("nothing to remove (keeping {keep})\n"))
    } else {
        let ids: Vec<String> = removed.iter().map(u64::to_string).collect();
        Ok(format!("removed versions: {}\n", ids.join(", ")))
    }
}

/// Resolves the snapshot bytes named by `--model <file>` or
/// `--root <dir> [--version N]` (default: the active version).
fn snapshot_bytes(args: &ParsedArgs) -> Result<(String, Vec<u8>), String> {
    if let Some(path) = args.get("model") {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        return Ok((path.to_string(), bytes));
    }
    let registry = attach_registry(args)?;
    let version = match args.get("version") {
        Some(raw) => raw.parse::<u64>().map_err(|_| format!("--version: cannot parse {raw:?}"))?,
        None => registry
            .pinned_version()
            .ok_or_else(|| "registry holds no snapshots (and no --version given)".to_string())?,
    };
    let path = registry.root().join(version.to_string()).join("model.gexm");
    let bytes =
        std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok((path.display().to_string(), bytes))
}

fn render_info(source: &str, info: &SnapshotInfo) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "snapshot: {source}");
    let _ = writeln!(out, "format: GEXM v{}", info.version);
    let _ = writeln!(out, "alignment: {}", info.alignment);
    let _ = writeln!(out, "stemming: {}", info.stemming);
    let _ = writeln!(out, "meta fallback: {}", info.has_fallback);
    let _ = writeln!(out, "leaves: {}", info.num_leaves);
    let _ = writeln!(out, "tokens: {}", info.num_tokens);
    let _ = writeln!(out, "keyphrases: {}", info.num_keyphrases);
    if let Some(sections) = info.num_sections {
        let _ = writeln!(out, "sections: {sections} (zero-copy loadable)");
    }
    let _ = writeln!(out, "size: {} bytes", info.size_bytes);
    // The format's own integrity trailer (FNV-1a over the payload);
    // manifests additionally record an FNV-1a over the whole file.
    let _ = writeln!(out, "trailer checksum: {:016x}", info.checksum);
    out
}

fn inspect(args: &ParsedArgs) -> Result<String, String> {
    let (source, bytes) = snapshot_bytes(args)?;
    let info = serialize::inspect(&bytes).map_err(|e| format!("inspect {source}: {e}"))?;
    let mut out = render_info(&source, &info);
    render_buildinfo_check(&source, &bytes, &mut out)?;
    Ok(out)
}

/// Cross-checks a pipeline-built snapshot against its `BUILDINFO`: the
/// manifest records the whole-file checksum of the snapshot it was built
/// with, so a mismatch means the sidecar describes a *different* build
/// (stale copy, mixed-up files) — exactly what an operator inspecting a
/// registry wants to catch.
fn render_buildinfo_check(source: &str, bytes: &[u8], out: &mut String) -> Result<(), String> {
    let info_path = graphex_pipeline::buildinfo_path_for(std::path::Path::new(source));
    if !info_path.is_file() {
        return Ok(());
    }
    let manifest = graphex_pipeline::BuildManifest::load(&info_path)
        .map_err(|e| format!("buildinfo: {e}"))?;
    let actual = serialize::checksum(bytes);
    if manifest.snapshot_checksum == actual {
        let _ = writeln!(
            out,
            "buildinfo: checksum cross-check OK ({actual:016x}); {} leaves fingerprinted, \
             {} records in",
            manifest.leaves.len(),
            manifest.records_in,
        );
        Ok(())
    } else {
        Err(format!(
            "buildinfo MISMATCH: {} records snapshot checksum {:016x} but {source} hashes to \
             {actual:016x} — the sidecar describes a different build",
            info_path.display(),
            manifest.snapshot_checksum,
        ))
    }
}

fn verify(args: &ParsedArgs) -> Result<String, String> {
    let (source, bytes) = snapshot_bytes(args)?;
    // One full structural parse; the info view derives from it.
    let model = serialize::from_bytes(&bytes).map_err(|e| format!("verify {source}: {e}"))?;
    let info = serialize::inspect_model(&model, &bytes);
    Ok(format!(
        "OK: {source}\n{}model loads: {} leaves, {} keyphrases\n",
        render_info(&source, &info),
        model.leaf_ids().count(),
        model.num_keyphrases(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn write_model(path: &std::path::Path, tag: u32) {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let model = GraphExBuilder::new(config)
            .add_records((0..5u32).map(|i| {
                KeyphraseRecord::new(format!("brand{tag} gadget v{i}"), LeafId(i % 2), 50, 5)
            }))
            .build()
            .unwrap();
        graphex_core::serialize::save_to(&model, path).unwrap();
    }

    #[test]
    fn publish_list_rollback_verify_cycle() {
        let dir = std::env::temp_dir().join(format!("graphex-cli-model-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let root = dir.join("registry");
        let gexm = dir.join("m.gexm");
        write_model(&gexm, 1);

        let root_s = root.to_str().unwrap();
        let gexm_s = gexm.to_str().unwrap();

        let out = run(&argv(&["publish", "--root", root_s, "--input", gexm_s, "--note", "first"]))
            .unwrap();
        assert!(out.contains("published version 1"), "{out}");

        write_model(&gexm, 2);
        let out = run(&argv(&["publish", "--root", root_s, "--input", gexm_s])).unwrap();
        assert!(out.contains("published version 2"), "{out}");

        let out = run(&argv(&["list", "--root", root_s])).unwrap();
        assert!(out.contains("*2"), "active marker missing: {out}");
        assert!(out.contains("first"), "{out}");

        let out = run(&argv(&["inspect", "--root", root_s])).unwrap();
        assert!(out.contains("GEXM v2"), "{out}");
        assert!(out.contains("zero-copy"), "{out}");

        let out = run(&argv(&["verify", "--root", root_s, "--version", "1"])).unwrap();
        assert!(out.starts_with("OK:"), "{out}");

        let out = run(&argv(&["rollback", "--root", root_s])).unwrap();
        assert!(out.contains("version 2 -> 1"), "{out}");
        let out = run(&argv(&["list", "--root", root_s])).unwrap();
        assert!(out.contains("*1"), "{out}");

        // Verify a bare file too.
        let out = run(&argv(&["verify", "--model", gexm_s])).unwrap();
        assert!(out.starts_with("OK:"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_prunes_old_versions() {
        let dir = std::env::temp_dir().join(format!("graphex-cli-model-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let root = dir.join("registry");
        let gexm = dir.join("m.gexm");
        let root_s = root.to_str().unwrap();
        let gexm_s = gexm.to_str().unwrap();
        for tag in 1..=3 {
            write_model(&gexm, tag);
            run(&argv(&["publish", "--root", root_s, "--input", gexm_s])).unwrap();
        }
        let out = run(&argv(&["gc", "--root", root_s, "--keep", "1"])).unwrap();
        assert!(out.contains("removed versions: 1, 2"), "{out}");
        let out = run(&argv(&["gc", "--root", root_s, "--keep", "1"])).unwrap();
        assert!(out.contains("nothing to remove"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_cross_checks_pipeline_buildinfo() {
        let dir = std::env::temp_dir()
            .join(format!("graphex-cli-model-buildinfo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("model.gexm");

        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        let records: Vec<KeyphraseRecord> = (0..6u32)
            .map(|i| KeyphraseRecord::new(format!("acme gadget v{i}"), LeafId(i % 2), 50, 5))
            .collect();
        let plan = graphex_pipeline::BuildPlan::new(config).jobs(2);
        let output = graphex_pipeline::build(
            &plan,
            vec![Box::new(graphex_pipeline::VecSource::new("test", records))],
        )
        .unwrap();
        let info_path = output.write_to(&snapshot).unwrap();

        let out = run(&argv(&["inspect", "--model", snapshot.to_str().unwrap()])).unwrap();
        assert!(out.contains("checksum cross-check OK"), "{out}");

        // A BUILDINFO describing different bytes must fail loudly.
        let mut manifest = output.manifest.clone();
        manifest.snapshot_checksum ^= 1;
        std::fs::write(&info_path, manifest.render()).unwrap();
        let err = run(&argv(&["inspect", "--model", snapshot.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("MISMATCH"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(&argv(&[])).is_err());
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&["publish", "--root", "/tmp/x"])).is_err()); // missing --input
        assert!(run(&argv(&["verify", "--model", "/nonexistent.gexm"])).is_err());
        let dir = std::env::temp_dir().join(format!("graphex-cli-model-err-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Empty registry: rollback and inspect fail cleanly.
        let root_s = dir.to_str().unwrap();
        assert!(run(&argv(&["rollback", "--root", root_s])).is_err());
        assert!(run(&argv(&["inspect", "--root", root_s])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

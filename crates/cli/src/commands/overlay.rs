//! `graphex overlay <verb>` — NRT overlay operations against a running
//! server started with `graphex serve --overlay`.
//!
//! ```text
//! graphex overlay status  --server <host:port> [--name <tenant>]
//! graphex overlay apply   --server <host:port> --input <records.tsv[,more…]>
//!                         [--name <tenant>] [--batch N]
//! graphex overlay compact --server <host:port> --input <records.tsv[,more…]>
//!                         --publish <registry root> [--name <tenant>]
//!                         [--jobs N] [--min-search N] [--note <text>]
//! ```
//!
//! `apply` streams TSV records through `POST /v1/upsert` in batches —
//! each acked batch is servable before the next is sent. `compact`
//! closes the overlay lifecycle: export the journal, rebuild the union
//! corpus (base inputs + journal) as a delta build against the registry
//! the server watches, publish, then drain the absorbed journal prefix.
//! The running server hot-swaps to the compacted snapshot on its next
//! poll; the drained entries are already inside it, so answers never
//! regress mid-handoff.

use crate::args::ParsedArgs;
use crate::records;
use graphex_server::{HttpClient, Json};
use graphex_serving::OverlayJournal;
use std::fmt::Write as _;

/// Dispatches an `overlay` sub-verb (positional, like `tenant`).
pub fn run(argv: &[String]) -> Result<String, String> {
    let (verb, rest) = argv
        .split_first()
        .ok_or_else(|| "overlay: missing verb (status|apply|compact)".to_string())?;
    let args = ParsedArgs::parse(rest)?;
    match verb.as_str() {
        "status" => status(&args),
        "apply" => apply(&args),
        "compact" => compact(&args),
        other => Err(format!("overlay: unknown verb {other:?} (status|apply|compact)")),
    }
}

fn connect(args: &ParsedArgs) -> Result<HttpClient, String> {
    let addr = args.require("server")?;
    HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

/// `/v1/...` or `/v1/t/<tenant>/...` depending on `--name`.
fn action_path(name: Option<&str>, action: &str) -> String {
    match name {
        Some(tenant) => format!("/v1/t/{tenant}/{action}"),
        None => format!("/v1/{action}"),
    }
}

fn render_overlay_row(out: &mut String, overlay: &Json) {
    let field = |key: &str| overlay.get(key).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "depth {} ({} leaves), journal {} / {} bytes, seq {} (drained to {})",
        field("depth"),
        field("leaves"),
        field("journal_bytes"),
        field("cap_bytes"),
        field("seq"),
        field("drained_upto"),
    );
    let _ = writeln!(
        out,
        "lifetime: {} upserts ({} records) applied, {} shed, {} drains",
        field("upserts_applied"),
        field("records_applied"),
        field("upserts_shed"),
        field("drains"),
    );
}

/// Overlay accounting from a live server's `/statusz` (single-tenant
/// object or the fleet table, optionally filtered by `--name`).
fn status(args: &ParsedArgs) -> Result<String, String> {
    let mut client = connect(args)?;
    let response = client.get("/statusz").map_err(|e| format!("GET /statusz: {e}"))?;
    if response.status != 200 {
        return Err(format!("GET /statusz: HTTP {}", response.status));
    }
    let statusz = graphex_server::json::parse(&response.text())
        .map_err(|e| format!("statusz is not JSON: {e}"))?;
    let mut out = String::new();
    if statusz.get("mode").and_then(Json::as_str) == Some("fleet") {
        let tenants = statusz
            .get("tenants")
            .and_then(Json::as_arr)
            .ok_or_else(|| "statusz missing tenants table".to_string())?;
        let mut matched = false;
        for row in tenants {
            let row_name = row.get("name").and_then(Json::as_str).unwrap_or("?");
            if let Some(wanted) = args.get("name") {
                if row_name != wanted {
                    continue;
                }
            }
            matched = true;
            match row.get("overlay") {
                Some(overlay @ Json::Obj(_)) => {
                    let _ = writeln!(out, "tenant {row_name}:");
                    render_overlay_row(&mut out, overlay);
                }
                _ => {
                    let _ = writeln!(out, "tenant {row_name}: overlay not enabled");
                }
            }
        }
        if !matched {
            return Err(match args.get("name") {
                Some(wanted) => format!("server knows no tenant {wanted:?}"),
                None => "server reported an empty fleet".into(),
            });
        }
    } else {
        match statusz.get("overlay") {
            Some(overlay @ Json::Obj(_)) => render_overlay_row(&mut out, overlay),
            _ => return Err("overlay serving is not enabled on this server".into()),
        }
    }
    Ok(out)
}

fn records_from_inputs(args: &ParsedArgs) -> Result<Vec<graphex_core::KeyphraseRecord>, String> {
    let inputs = args.require("input")?;
    let mut out = Vec::new();
    for path in inputs.split(',').filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record =
                records::parse_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
            out.push(record);
        }
    }
    if out.is_empty() {
        return Err(format!("no records in {inputs}"));
    }
    Ok(out)
}

fn upsert_envelope(records: &[graphex_core::KeyphraseRecord]) -> String {
    Json::obj(vec![(
        "records",
        Json::Arr(
            records
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("text", Json::str(r.text.clone())),
                        ("leaf", Json::uint(u64::from(r.leaf.0))),
                        ("search", Json::uint(u64::from(r.search_count))),
                        ("recall", Json::uint(u64::from(r.recall_count))),
                    ])
                })
                .collect(),
        ),
    )])
    .render()
}

/// Streams TSV records through the live upsert path in batches.
fn apply(args: &ParsedArgs) -> Result<String, String> {
    let records = records_from_inputs(args)?;
    let batch = args.get_num::<usize>("batch", 256)?.clamp(1, 1024);
    let path = action_path(args.get("name"), "upsert");
    let mut client = connect(args)?;
    let mut applied = 0u64;
    let mut last = None;
    for chunk in records.chunks(batch) {
        let response = client
            .post_json(&path, &upsert_envelope(chunk))
            .map_err(|e| format!("POST {path}: {e}"))?;
        if response.status != 200 {
            return Err(format!(
                "POST {path}: HTTP {} after {applied} records applied: {}",
                response.status,
                response.text().trim(),
            ));
        }
        let ack = graphex_server::json::parse(&response.text())
            .map_err(|e| format!("upsert ack is not JSON: {e}"))?;
        applied += ack.get("applied").and_then(Json::as_u64).unwrap_or(0);
        last = Some(ack);
    }
    let last = last.expect("records is non-empty");
    Ok(format!(
        "applied {applied} records (seq {}, overlay depth {}, journal {} bytes) — servable now\n",
        last.get("seq").and_then(Json::as_u64).unwrap_or(0),
        last.get("depth").and_then(Json::as_u64).unwrap_or(0),
        last.get("journal_bytes").and_then(Json::as_u64).unwrap_or(0),
    ))
}

/// Journal export → union rebuild → publish → drain.
fn compact(args: &ParsedArgs) -> Result<String, String> {
    let publish_root = args.require("publish")?;
    let journal_path = action_path(args.get("name"), "overlay/journal");
    let drain_path = action_path(args.get("name"), "overlay/drain");

    let mut client = connect(args)?;
    let response =
        client.get(&journal_path).map_err(|e| format!("GET {journal_path}: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "GET {journal_path}: HTTP {}: {}",
            response.status,
            response.text().trim()
        ));
    }
    let text = response.text();
    let journal =
        OverlayJournal::parse(&text).map_err(|e| format!("exported journal: {e}"))?;

    // Rebuild the union corpus through the pipeline: base inputs plus the
    // journal, as a delta against the registry the server watches so
    // unchanged leaves are borrowed byte-for-byte.
    let dir = std::env::temp_dir()
        .join(format!("graphex-overlay-compact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let journal_file = dir.join("journal.txt");
    std::fs::write(&journal_file, &text)
        .map_err(|e| format!("write {}: {e}", journal_file.display()))?;

    let mut build_argv: Vec<String> = vec![
        "--input".into(),
        args.require("input")?.into(),
        "--overlay-journal".into(),
        journal_file.to_string_lossy().into_owned(),
        "--publish".into(),
        publish_root.into(),
        "--note".into(),
        args.get("note").unwrap_or("overlay compaction").into(),
    ];
    let delta_base = args.get("delta").map(str::to_string).or_else(|| {
        std::path::Path::new(publish_root)
            .join("CURRENT")
            .exists()
            .then(|| publish_root.to_string())
    });
    if let Some(base) = delta_base {
        build_argv.extend(["--delta".into(), base]);
    }
    for flag in ["jobs", "min-search", "alignment"] {
        if let Some(value) = args.get(flag) {
            build_argv.extend([format!("--{flag}"), value.to_string()]);
        }
    }
    for switch in ["no-stemming", "no-fallback", "strict"] {
        if args.switch(switch) {
            build_argv.push(format!("--{switch}"));
        }
    }
    let build_out = super::build::run(&ParsedArgs::parse(&build_argv)?)
        .map_err(|e| format!("compaction build: {e}"))?;

    // The snapshot with the journal absorbed is published; drop the
    // absorbed prefix. Entries upserted after the export survive.
    let drained = client
        .post_json(&drain_path, &format!(r#"{{"upto":{}}}"#, journal.upto))
        .map_err(|e| format!("POST {drain_path}: {e}"))?;
    if drained.status != 200 {
        return Err(format!(
            "compaction published but drain failed: HTTP {}: {}",
            drained.status,
            drained.text().trim()
        ));
    }
    let report = graphex_server::json::parse(&drained.text())
        .map_err(|e| format!("drain report is not JSON: {e}"))?;
    std::fs::remove_dir_all(&dir).ok();

    let mut out = build_out;
    let _ = writeln!(
        out,
        "compacted {} journal entries (drained {}, {} arrived since export and keep serving)",
        journal.entries.len(),
        report.get("drained").and_then(Json::as_u64).unwrap_or(0),
        report.get("remaining").and_then(Json::as_u64).unwrap_or(0),
    );
    let _ = writeln!(out, "the server hot-swaps to the compacted snapshot on its next poll");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn verbs_and_required_flags_are_validated() {
        assert!(run(&argv(&[])).is_err());
        assert!(run(&argv(&["frobnicate"])).is_err());
        // Missing --server.
        assert!(run(&argv(&["status"])).is_err());
        // Missing --input.
        assert!(run(&argv(&["apply", "--server", "127.0.0.1:1"])).is_err());
        // Missing --publish.
        assert!(run(&argv(&["compact", "--server", "127.0.0.1:1", "--input", "x.tsv"]))
            .is_err());
    }

    #[test]
    fn tenant_paths_are_prefixed() {
        assert_eq!(action_path(None, "upsert"), "/v1/upsert");
        assert_eq!(action_path(Some("acme"), "upsert"), "/v1/t/acme/upsert");
        assert_eq!(
            action_path(Some("acme"), "overlay/journal"),
            "/v1/t/acme/overlay/journal"
        );
    }

    #[test]
    fn envelope_renders_all_record_fields() {
        let records = vec![graphex_core::KeyphraseRecord::new(
            "usb c \"hub\"",
            graphex_core::LeafId(7),
            120,
            9,
        )];
        let envelope = upsert_envelope(&records);
        let parsed = graphex_server::json::parse(&envelope).unwrap();
        let rows = parsed.get("records").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("text").unwrap().as_str(), Some("usb c \"hub\""));
        assert_eq!(rows[0].get("leaf").unwrap().as_u64(), Some(7));
        assert_eq!(rows[0].get("search").unwrap().as_u64(), Some(120));
        assert_eq!(rows[0].get("recall").unwrap().as_u64(), Some(9));
    }
}

//! CLI subcommands. Each `run` takes parsed args and returns the stdout
//! payload, so tests exercise commands as plain functions.

pub mod build;
pub mod cluster;
pub mod diff;
pub mod explain;
pub mod infer;
pub mod model;
pub mod overlay;
pub mod report;
pub mod route;
pub mod serve;
pub mod simulate;
pub mod stats;
pub mod tenant;
pub mod trace;

use crate::args::ParsedArgs;
use graphex_core::{GraphExModel, LeafId};

/// Loads a model from `--model`.
pub(crate) fn load_model(args: &ParsedArgs) -> Result<GraphExModel, String> {
    let path = args.require("model")?;
    graphex_core::serialize::load_from(path).map_err(|e| format!("load {path}: {e}"))
}

/// Parses `--leaf`.
pub(crate) fn parse_leaf(args: &ParsedArgs) -> Result<LeafId, String> {
    Ok(LeafId(args.get_num::<u32>("leaf", 0).and_then(|v| {
        if args.get("leaf").is_none() {
            Err("missing --leaf".to_string())
        } else {
            Ok(v)
        }
    })?))
}

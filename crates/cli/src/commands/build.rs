//! `graphex build` — construct a model from a record TSV and persist it.

use crate::args::ParsedArgs;
use crate::records::read_tsv;
use graphex_core::{serialize, Alignment, GraphExBuilder, GraphExConfig};

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let input = args.require("input")?;
    let output = args.require("output")?;

    let mut config = GraphExConfig::default();
    config.curation.min_search_count = args.get_num::<u32>("min-search", 180)?;
    config.stemming = !args.switch("no-stemming");
    config.build_meta_fallback = !args.switch("no-fallback");
    config.alignment = match args.get("alignment").unwrap_or("lta") {
        "lta" | "LTA" => Alignment::Lta,
        "wmr" | "WMR" => Alignment::Wmr,
        "jac" | "JAC" => Alignment::Jac,
        other => return Err(format!("unknown alignment {other:?} (lta|wmr|jac)")),
    };

    let records = read_tsv(input)?;
    let input_count = records.len();
    let start = std::time::Instant::now();
    let (model, stats) = GraphExBuilder::new(config)
        .add_records(records)
        .build_with_stats()
        .map_err(|e| format!("build: {e}"))?;
    let elapsed = start.elapsed();
    serialize::save_to(&model, output).map_err(|e| format!("save {output}: {e}"))?;

    let mstats = model.stats();
    Ok(format!(
        "built in {elapsed:?}: {input_count} input records → {} curated ({} below threshold) → \
         {} keyphrases / {} tokens / {} edges across {} leaves\nsaved {} bytes to {output}\n",
        stats.kept,
        stats.dropped_low_search,
        mstats.num_keyphrases,
        mstats.num_tokens,
        mstats.total_edges,
        mstats.num_leaves,
        model.size_bytes(),
    ))
}

//! `graphex build` — construct a model through the build pipeline:
//! streaming ingestion (TSV/NDJSON files or a marketsim corpus),
//! parallel sharded construction (`--jobs`), incremental delta builds
//! (`--delta`), and optional publication straight into a model registry
//! (`--publish`, admission + `CURRENT` flip included).
//!
//! ```text
//! graphex build (--input <f[,f…]> | --marketsim <preset>) \
//!               [--output <model.gexm>] [--publish <registry root>] …
//! ```
//!
//! Prints the [`BuildReport`] as text, or as JSON with `--json`.

use crate::args::ParsedArgs;
use graphex_core::{Alignment, GraphExConfig};
use graphex_pipeline::{
    build, open_file_source, open_overlay_journal_source, BuildPlan, BuildReport, DeltaBase,
    MarketsimSource, RecordSource,
};
use graphex_server::Json;
use graphex_serving::ModelRegistry;
use std::fmt::Write as _;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let output_path = args.get("output");
    let publish_root = args.get("publish");
    if output_path.is_none() && publish_root.is_none() {
        return Err("missing --output <model.gexm> and/or --publish <registry root>".into());
    }
    let shards = args.get_num::<u32>("shards", 0)?;
    if shards > 0 && publish_root.is_none() {
        return Err("--shards needs --publish <cluster root> (per-shard registries)".into());
    }

    let config = config_from(args)?;
    let mut plan = BuildPlan::new(config)
        .jobs(args.get_num::<usize>("jobs", 0)?)
        .strict(args.switch("strict"));
    plan.batch = args.get_num::<usize>("batch", 4096)?.max(1);
    if let Some(base) = args.get("delta") {
        plan = plan.delta(DeltaBase::load(base).map_err(|e| format!("--delta {base}: {e}"))?);
    }

    let sources = sources_from(args)?;
    let mut output = build(&plan, sources).map_err(|e| format!("build: {e}"))?;

    let mut tail = String::new();
    if let Some(path) = output_path {
        let info = output.write_to(path).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(tail, "wrote {path} (+ {})", info.display());
    }
    if let Some(root) = publish_root {
        let note = args.get("note").unwrap_or("graphex build");
        if shards > 0 {
            // Scale-out publish: partition by `leaf % shards` and publish
            // each shard into its own registry under `<root>/shard-<i>`.
            let snapshots = output.emit_shards(shards).map_err(|e| format!("--shards: {e}"))?;
            let metas = graphex_pipeline::publish_shards(&snapshots, root, note)
                .map_err(|e| format!("publish shards into {root}: {e}"))?;
            for (snapshot, meta) in snapshots.iter().zip(&metas) {
                let _ = writeln!(
                    tail,
                    "published shard {}/{} version {} to {} ({} leaves)",
                    snapshot.index,
                    shards,
                    meta.version,
                    graphex_pipeline::shard_root(root, snapshot.index).display(),
                    meta.leaves,
                );
            }
        } else {
            let registry =
                ModelRegistry::open(root).map_err(|e| format!("open registry {root}: {e}"))?;
            let meta = output
                .publish(&registry, note)
                .map_err(|e| format!("publish into {root}: {e}"))?;
            let _ = writeln!(
                tail,
                "published version {} to {root} (active: {})",
                meta.version,
                registry.current_version().unwrap_or_default()
            );
        }
    }

    if args.switch("json") {
        Ok(format!("{}\n", render_json(&output.report).render()))
    } else {
        Ok(format!("{}{tail}", render_text(&output.report)))
    }
}

/// Shared with the pipeline-aware commands: curation/alignment flags.
fn config_from(args: &ParsedArgs) -> Result<GraphExConfig, String> {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = args.get_num::<u32>("min-search", 180)?;
    config.stemming = !args.switch("no-stemming");
    config.build_meta_fallback = !args.switch("no-fallback");
    config.alignment = match args.get("alignment").unwrap_or("lta") {
        "lta" | "LTA" => Alignment::Lta,
        "wmr" | "WMR" => Alignment::Wmr,
        "jac" | "JAC" => Alignment::Jac,
        other => return Err(format!("unknown alignment {other:?} (lta|wmr|jac)")),
    };
    Ok(config)
}

/// Resolves `--input` (comma-separated files, format by extension),
/// `--overlay-journal` (an exported NRT overlay journal, compacted into
/// this build), and/or `--marketsim` (preset corpus, optionally churned
/// with `--generations`).
fn sources_from(args: &ParsedArgs) -> Result<Vec<Box<dyn RecordSource>>, String> {
    let mut sources: Vec<Box<dyn RecordSource>> = Vec::new();
    if let Some(inputs) = args.get("input") {
        for path in inputs.split(',').filter(|p| !p.is_empty()) {
            sources.push(open_file_source(path)?);
        }
    }
    if let Some(path) = args.get("overlay-journal") {
        let (source, _upto) =
            open_overlay_journal_source(path).map_err(|e| format!("--overlay-journal: {e}"))?;
        sources.push(source);
    }
    if let Some(preset) = args.get("marketsim") {
        let seed = args.get_num::<u64>("seed", 7)?;
        let mut spec = match preset {
            "cat1" => graphex_marketsim::CategorySpec::cat1(),
            "cat2" => graphex_marketsim::CategorySpec::cat2(),
            "cat3" => graphex_marketsim::CategorySpec::cat3(),
            "tiny" => graphex_marketsim::CategorySpec::tiny(seed),
            other => return Err(format!("unknown preset {other:?} (cat1|cat2|cat3|tiny)")),
        };
        if preset != "tiny" {
            spec.seed = seed;
        }
        let rate = args.get_num::<f64>("churn-rate", 0.02)?;
        let mut corpus = graphex_marketsim::ChurnCorpus::new(spec, rate);
        corpus.advance_to(args.get_num::<u32>("generations", 0)?);
        sources.push(Box::new(MarketsimSource::new(&corpus)));
    }
    if sources.is_empty() {
        return Err(
            "missing --input <records.tsv[,more…]>, --overlay-journal <file>, or --marketsim <preset>"
                .into(),
        );
    }
    Ok(sources)
}

fn render_text(report: &BuildReport) -> String {
    let mut out = String::new();
    let c = &report.curation;
    let _ = writeln!(
        out,
        "built in {} ms with {} job(s): {} records in ({} parse errors) → {} curated \
         ({} below threshold, {} token bounds, {} duplicates merged, {} over leaf cap)",
        report.wall_ms,
        report.jobs,
        report.records_in,
        report.parse_errors,
        c.kept,
        c.dropped_low_search,
        c.dropped_token_bounds,
        c.merged_duplicates,
        c.dropped_leaf_cap,
    );
    let fallback = if report.fallback_reused { ", fallback reused" } else { "" };
    match report.delta_base {
        Some(base) => {
            let _ = writeln!(
                out,
                "leaves: {} total — {} built, {} reused from delta base {:016x}{}",
                report.leaves_total, report.leaves_built, report.leaves_reused, base, fallback,
            );
        }
        None => {
            let _ = writeln!(out, "leaves: {} total, all built", report.leaves_total);
        }
    }
    if let Some(why) = &report.delta_discarded {
        let _ = writeln!(out, "delta base ignored: {why}");
    }
    for src in &report.sources {
        if src.parse_errors > 0 {
            let _ = writeln!(
                out,
                "  {}: {} records, {} parse errors (first: {})",
                src.name,
                src.records,
                src.parse_errors,
                src.error_sample.first().map(String::as_str).unwrap_or("<unavailable>"),
            );
        }
    }
    let _ = writeln!(
        out,
        "model: {} keyphrases / {} tokens; snapshot {} bytes, checksum {:016x}",
        report.keyphrases, report.tokens, report.snapshot_bytes, report.snapshot_checksum,
    );
    out
}

fn render_json(report: &BuildReport) -> Json {
    let c = &report.curation;
    let sources: Vec<Json> = report
        .sources
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("name", Json::str(s.name.clone())),
                ("records", Json::uint(s.records)),
                ("skipped", Json::uint(s.skipped)),
                ("parse_errors", Json::uint(s.parse_errors)),
                (
                    "error_sample",
                    Json::Arr(s.error_sample.iter().map(|e| Json::str(e.clone())).collect()),
                ),
            ])
        })
        .collect();
    let mut members = vec![
        ("records_in", Json::uint(report.records_in)),
        ("parse_errors", Json::uint(report.parse_errors)),
        ("sources", Json::Arr(sources)),
        (
            "curation",
            Json::obj(vec![
                ("input", Json::uint(c.input as u64)),
                ("kept", Json::uint(c.kept as u64)),
                ("dropped_low_search", Json::uint(c.dropped_low_search as u64)),
                ("dropped_token_bounds", Json::uint(c.dropped_token_bounds as u64)),
                ("dropped_leaf_cap", Json::uint(c.dropped_leaf_cap as u64)),
                ("merged_duplicates", Json::uint(c.merged_duplicates as u64)),
            ]),
        ),
        ("leaves_total", Json::uint(report.leaves_total as u64)),
        ("leaves_built", Json::uint(report.leaves_built as u64)),
        ("leaves_reused", Json::uint(report.leaves_reused as u64)),
        ("fallback_reused", Json::Bool(report.fallback_reused)),
        ("jobs", Json::uint(report.jobs as u64)),
        ("keyphrases", Json::uint(report.keyphrases as u64)),
        ("tokens", Json::uint(report.tokens as u64)),
        ("snapshot_bytes", Json::uint(report.snapshot_bytes as u64)),
        ("snapshot_checksum", Json::str(format!("{:016x}", report.snapshot_checksum))),
        ("wall_ms", Json::uint(report.wall_ms)),
    ];
    if let Some(base) = report.delta_base {
        members.push(("delta_base", Json::str(format!("{base:016x}"))));
    }
    if let Some(why) = &report.delta_discarded {
        members.push(("delta_discarded", Json::str(why.clone())));
    }
    if let Some(version) = report.published_version {
        members.push(("published_version", Json::uint(version)));
    }
    Json::obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tempdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("graphex-cli-build-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn marketsim_build_publish_delta_cycle() {
        let dir = tempdir("cycle");
        let model = dir.join("model.gexm");
        let root = dir.join("registry");
        let model_s = model.to_str().unwrap();
        let root_s = root.to_str().unwrap();

        // Full build from a marketsim corpus → file + registry.
        let out = dispatch(&argv(&[
            "build", "--marketsim", "tiny", "--seed", "3", "--min-search", "2", "--jobs", "2",
            "--output", model_s, "--publish", root_s, "--note", "gen0",
        ]))
        .unwrap();
        assert!(out.contains("keyphrases"), "{out}");
        assert!(out.contains("published version 1"), "{out}");
        assert!(model.with_file_name("model.gexm.buildinfo").is_file());
        assert!(root.join("1").join("BUILDINFO").is_file());

        // Delta rebuild of the identical corpus: everything reused, and
        // the registry gains version 2 with identical model bytes.
        let out = dispatch(&argv(&[
            "build", "--marketsim", "tiny", "--seed", "3", "--min-search", "2", "--jobs", "2",
            "--delta", root_s, "--publish", root_s, "--json",
        ]))
        .unwrap();
        let parsed = graphex_server::json::parse(&out).unwrap();
        assert_eq!(parsed.get("leaves_built").and_then(Json::as_u64), Some(0), "{out}");
        assert!(parsed.get("leaves_reused").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(parsed.get("published_version").and_then(Json::as_u64), Some(2));
        assert_eq!(
            std::fs::read(root.join("1").join("model.gexm")).unwrap(),
            std::fs::read(root.join("2").join("model.gexm")).unwrap(),
            "identical corpus must republish identical bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_missing_destination_and_sources() {
        assert!(dispatch(&argv(&["build", "--marketsim", "tiny"])).is_err());
        assert!(dispatch(&argv(&["build", "--output", "/tmp/x.gexm"])).is_err());
    }

    #[test]
    fn sharded_publish_creates_per_shard_registries() {
        let dir = tempdir("shards");
        let root = dir.join("cluster");
        let root_s = root.to_str().unwrap();
        let out = dispatch(&argv(&[
            "build", "--marketsim", "tiny", "--seed", "3", "--min-search", "2", "--publish",
            root_s, "--shards", "2", "--note", "gen0",
        ]))
        .unwrap();
        assert!(out.contains("published shard 0/2"), "{out}");
        assert!(out.contains("published shard 1/2"), "{out}");
        for shard in 0..2 {
            let info = root.join(format!("shard-{shard}")).join("1").join("BUILDINFO");
            let text = std::fs::read_to_string(&info).unwrap();
            assert!(text.contains(&format!("shard {shard} 2")), "{text}");
        }

        // --shards is a publish topology, not a file format.
        let err = dispatch(&argv(&[
            "build", "--marketsim", "tiny", "--output", "/tmp/x.gexm", "--shards", "2",
        ]))
        .unwrap_err();
        assert!(err.contains("--publish"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_fails_on_parse_errors_lenient_counts() {
        let dir = tempdir("strict");
        let tsv = dir.join("records.tsv");
        std::fs::write(&tsv, "a b\t1\t50\t5\nbroken\nc d\t2\t60\t6\n").unwrap();
        let model = dir.join("model.gexm");
        let base = [
            "build", "--input", tsv.to_str().unwrap(), "--min-search", "1", "--output",
            model.to_str().unwrap(),
        ];

        let mut strict: Vec<&str> = base.to_vec();
        strict.push("--strict");
        let err = dispatch(&argv(&strict)).unwrap_err();
        assert!(err.contains("unparsable"), "{err}");
        assert!(!model.exists(), "strict failure must not write output");

        let out = dispatch(&argv(&base)).unwrap();
        assert!(out.contains("1 parse errors"), "{out}");
        assert!(model.is_file());
        std::fs::remove_dir_all(&dir).ok();
    }
}

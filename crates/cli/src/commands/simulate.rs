//! `graphex simulate` — generate a synthetic category and dump its curated
//! keyphrase records as TSV (so the CLI is usable without proprietary data).

use crate::args::ParsedArgs;
use crate::records::write_tsv;
use graphex_marketsim::{CategoryDataset, CategorySpec};

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let preset = args.require("preset")?;
    let output = args.require("output")?;
    let seed = args.get_num::<u64>("seed", 7)?;
    let mut spec = match preset {
        "cat1" => CategorySpec::cat1(),
        "cat2" => CategorySpec::cat2(),
        "cat3" => CategorySpec::cat3(),
        "tiny" => CategorySpec::tiny(seed),
        other => return Err(format!("unknown preset {other:?} (cat1|cat2|cat3|tiny)")),
    };
    if preset != "tiny" {
        spec.seed = seed;
    }
    let ds = CategoryDataset::generate(spec);
    let records = ds.keyphrase_records();
    write_tsv(output, &records)?;
    Ok(format!(
        "wrote {} records to {output} ({} items simulated, {} sessions)\n",
        records.len(),
        ds.marketplace.items.len(),
        ds.train_log.sessions,
    ))
}

//! `graphex report` — compile every observability artifact into one
//! self-contained `report.html`: the repo's recorded `BENCH_*.json`
//! datapoints, a live server's `/debug/history` ring and `/debug/traces`
//! flight recorder, and a judged evaluation run (RP/HP + top-k
//! diversity). With `--server` the live sections come from a running
//! deployment; without it the command boots the same in-process demo
//! server the serve smoke uses, drives traffic, and samples it — so CI
//! produces a page with real sparklines and waterfalls on every run.

use crate::args::ParsedArgs;
use graphex_report::{run_eval, BenchDoc, ReportInputs};
use graphex_server::json::Json;
use graphex_server::{HttpClient, ServerConfig};
use std::path::Path;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let out_path = args.get("out").unwrap_or("report.html").to_string();
    let bench_dir = args.get("bench-dir").unwrap_or(".");

    let mut benches = Vec::new();
    for path in graphex_report::discover_bench_files(Path::new(bench_dir)) {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("BENCH").to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        benches.push(BenchDoc::parse(&name, &text)?);
    }

    let (history, traces, source) = if let Some(addr) = args.get("server") {
        let (history, traces) = capture_from(addr)?;
        (history, traces, addr.to_string())
    } else if args.switch("no-live") {
        (None, None, String::new())
    } else {
        let (history, traces) = capture_in_process()?;
        (history, traces, "in-process demo server".to_string())
    };

    let eval = if args.switch("no-eval") {
        None
    } else {
        Some(run_eval(args.get_num("eval-seed", 0x9E)?, args.get_num("eval-items", 12)?))
    };

    let inputs = ReportInputs { generated: today(), source, benches, history, traces, eval };
    let page = graphex_report::render(&inputs);
    std::fs::write(&out_path, &page).map_err(|e| format!("write {out_path}: {e}"))?;
    Ok(format!(
        "wrote {out_path}: {} bytes, {} bench docs, live telemetry: {}, eval: {}\n",
        page.len(),
        inputs.benches.len(),
        if inputs.history.is_some() { "captured" } else { "none" },
        if inputs.eval.is_some() { "run" } else { "skipped" },
    ))
}

/// Fetches `/debug/history` and `/debug/traces` from a running server or
/// router. A 404 (surface disabled) yields `None` for that section, not
/// an error — the rest of the report is still worth producing.
fn capture_from(addr: &str) -> Result<(Option<Json>, Option<Json>), String> {
    let mut client =
        HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut fetch = |path: &str| -> Result<Option<Json>, String> {
        let response = client.get(path).map_err(|e| format!("GET {path}: {e}"))?;
        match response.status {
            200 => graphex_server::json::parse(&response.text())
                .map(Some)
                .map_err(|e| format!("{path} payload: {e}")),
            404 => Ok(None),
            other => Err(format!("GET {path}: HTTP {other}")),
        }
    };
    let history = fetch("/debug/history")?;
    let traces = fetch("/debug/traces?limit=8")?;
    Ok((history, traces))
}

/// Boots the demo server on an ephemeral port, drives a few batches of
/// infer traffic with a forced history sample between batches (so the
/// sparklines have a real trajectory), captures both debug surfaces,
/// and shuts down.
fn capture_in_process() -> Result<(Option<Json>, Option<Json>), String> {
    let api = super::serve::demo_api()?;
    let config = ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() };
    let server = graphex_server::start(config, api).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr().to_string();
    let io = |e: std::io::Error| format!("report client: {e}");

    let result = (|| {
        let mut client = HttpClient::connect(&addr).map_err(io)?;
        for batch in 0..6u32 {
            for i in 0..10u32 {
                let title = format!("acme widget model{}", (batch + i) % 8);
                let body =
                    format!(r#"{{"title":{:?},"leaf":{},"k":5}}"#, title, (batch + i) % 2);
                let response = client.post_json("/v1/infer", &body).map_err(io)?;
                if response.status != 200 {
                    return Err(format!("demo infer: HTTP {}", response.status));
                }
            }
            // One ring sample per batch → a multi-point trajectory.
            server.sample_history_now();
        }
        drop(client);
        capture_from(&addr)
    })();
    server.shutdown();
    result
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Gregorian).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn today_is_plausible_iso_date() {
        let date = today();
        assert_eq!(date.len(), 10, "{date}");
        let parts: Vec<&str> = date.split('-').collect();
        assert_eq!(parts.len(), 3, "{date}");
        let year: i64 = parts[0].parse().unwrap();
        let month: u32 = parts[1].parse().unwrap();
        let day: u32 = parts[2].parse().unwrap();
        assert!((2024..3000).contains(&year), "{date}");
        assert!((1..=12).contains(&month), "{date}");
        assert!((1..=31).contains(&day), "{date}");
    }

    #[test]
    fn report_end_to_end_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("graphex-report-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_demo.json"),
            r#"{"bench": "demo", "description": "x", "date": "2026-08-07",
                "machine": {"os": "linux"}, "config": {"n": 1},
                "results": {"elapsed": "3.5ms"}}"#,
        )
        .unwrap();
        let out = dir.join("report.html");
        let args = crate::args::ParsedArgs::parse(&[
            "--out".into(),
            out.to_str().unwrap().to_string(),
            "--bench-dir".into(),
            dir.to_str().unwrap().to_string(),
            "--eval-items".into(),
            "4".into(),
        ])
        .unwrap();
        let summary = run(&args).unwrap();
        assert!(summary.contains("live telemetry: captured"), "{summary}");
        let page = std::fs::read_to_string(&out).unwrap();
        // Real live sections: the in-process server's series and at
        // least one trace waterfall made it into the page.
        assert!(page.contains("http/requests"), "missing history series");
        assert!(page.contains("Trace waterfalls"));
        assert!(page.contains("BENCH_demo.json"));
        assert!(page.contains("GraphEx"), "missing eval section");
        for forbidden in ["http://", "https://", "<script", "src="] {
            assert!(!page.contains(forbidden), "page contains {forbidden:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! `graphex cluster <verb>` — local scale-out cluster operations.
//!
//! ```text
//! graphex cluster up    --root <cluster dir> [--addr host:port] [--k N]
//!                       [--workers N] [--poll-ms N]
//! graphex cluster smoke [--shards N] [--clients N]
//! ```
//!
//! `up` boots one backend per `<root>/shard-<i>` registry (as produced by
//! `graphex build --shards N --publish <root>`) plus the scatter-gather
//! router, then polls each registry's `CURRENT` so cross-process
//! publishes roll through the cluster one shard at a time.
//!
//! `smoke` is the self-contained CI gate: build a corpus, emit per-shard
//! snapshots, boot backends + router on ephemeral ports, check that the
//! sharded cluster answers **identically to the monolith**, then replay
//! the zero-5xx hot-swap gate cluster-wide — a rolling publish of the
//! next corpus generation under concurrent keep-alive traffic.

use crate::args::ParsedArgs;
use graphex_core::{Engine, GraphExConfig, InferRequest};
use graphex_marketsim::{CategorySpec, ChurnCorpus};
use graphex_pipeline::{build, BuildOutput, BuildPlan, MarketsimSource, BUILDINFO_FILE};
use graphex_server::{ClusterConfig, HttpClient, LocalCluster, RouterConfig, ServerConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Dispatches a `cluster` sub-verb (positional, like `model`).
pub fn run(argv: &[String]) -> Result<String, String> {
    let (verb, rest) =
        argv.split_first().ok_or_else(|| "cluster: missing verb (up|smoke)".to_string())?;
    let args = ParsedArgs::parse(rest)?;
    match verb.as_str() {
        "up" => up(&args),
        "smoke" => smoke(&args),
        other => Err(format!("cluster: unknown verb {other:?} (up|smoke)")),
    }
}

/// The `shard-0..shard-N` roots under a cluster directory, in order; the
/// sequence must be contiguous from 0.
fn shard_roots(root: &str) -> Result<Vec<PathBuf>, String> {
    let mut roots = Vec::new();
    loop {
        let dir = graphex_pipeline::shard_root(root, roots.len() as u32);
        if !dir.is_dir() {
            break;
        }
        roots.push(dir);
    }
    if roots.is_empty() {
        return Err(format!(
            "{root} holds no shard-0 registry — produce one with \
             `graphex build --shards N --publish {root}`"
        ));
    }
    Ok(roots)
}

fn up(args: &ParsedArgs) -> Result<String, String> {
    let root = args.require("root")?;
    let roots = shard_roots(root)?;
    let config = ClusterConfig {
        backend: ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: args.get_num::<usize>("workers", 4)?.max(1),
            ..Default::default()
        },
        router: RouterConfig {
            addr: args.get("addr").unwrap_or("127.0.0.1:7800").to_string(),
            ..Default::default()
        },
        default_k: args.get_num::<usize>("k", 10)?,
    };
    let cluster =
        LocalCluster::boot(&roots, &config).map_err(|e| format!("cluster boot: {e}"))?;
    println!(
        "graphex-cluster: router on http://{} over {} backend(s)",
        cluster.router_addr(),
        cluster.backends().len()
    );
    for backend in cluster.backends() {
        println!(
            "  shard {} -> http://{} ({}, snapshot_version {})",
            backend.shard,
            backend.addr(),
            roots[backend.shard as usize].display(),
            backend.api.snapshot_version()
        );
    }

    // Roll cross-process publishes through the cluster: poll each
    // registry's CURRENT and activate pinned-but-inactive versions, one
    // backend at a time per sweep (same contract as `serve --root`).
    let poll = Duration::from_millis(args.get_num::<u64>("poll-ms", 2000)?.max(100));
    loop {
        std::thread::sleep(poll);
        for backend in cluster.backends() {
            let pinned = backend.registry.pinned_version();
            if pinned != backend.registry.current_version() {
                if let Some(version) = pinned {
                    match backend.registry.activate(version) {
                        Ok(_) => println!(
                            "shard {}: hot-swapped to snapshot_version {version}",
                            backend.shard
                        ),
                        Err(e) => eprintln!(
                            "shard {}: activation of {version} failed: {e} (still serving)",
                            backend.shard
                        ),
                    }
                }
            }
        }
    }
}

/// Builds generation `generation` of the smoke corpus.
fn smoke_build(corpus: &ChurnCorpus) -> Result<BuildOutput, String> {
    let mut config = GraphExConfig::default();
    config.curation.min_search_count = 2;
    let plan = BuildPlan::new(config).jobs(2);
    build(&plan, vec![Box::new(MarketsimSource::new(corpus))]).map_err(|e| format!("build: {e}"))
}

fn smoke(args: &ParsedArgs) -> Result<String, String> {
    let shards = args.get_num::<u32>("shards", 3)?.max(1);
    let clients = args.get_num::<usize>("clients", 3)?.max(1);
    let dir =
        std::env::temp_dir().join(format!("graphex-cluster-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut out = String::new();

    // Generation 0: monolith build → per-shard snapshots → registries.
    let spec = CategorySpec {
        name: "CLUSTER".into(),
        seed: args.get_num::<u64>("seed", 11)?,
        num_leaves: 24,
        products_per_leaf: 8,
        num_items: 400,
        num_sessions: 2_500,
        leaf_id_base: 5_000,
    };
    let mut corpus = ChurnCorpus::new(spec, 0.05);
    let output = smoke_build(&corpus)?;
    let snapshots = output.emit_shards(shards).map_err(|e| format!("emit shards: {e}"))?;
    graphex_pipeline::publish_shards(&snapshots, &dir, "smoke gen0")
        .map_err(|e| format!("publish shards: {e}"))?;
    let _ = writeln!(
        out,
        "gen0: {} leaves across {shards} shard(s) under {}",
        output.model.leaf_ids().count(),
        dir.display()
    );

    let roots: Vec<PathBuf> =
        (0..shards).map(|i| graphex_pipeline::shard_root(&dir, i)).collect();
    let config = ClusterConfig {
        router: RouterConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        ..Default::default()
    };
    let cluster =
        LocalCluster::boot(&roots, &config).map_err(|e| format!("cluster boot: {e}"))?;
    let addr = cluster.router_addr();
    let _ = writeln!(out, "router on http://{addr}, {} backend(s)", cluster.backends().len());

    let result = smoke_gates(&cluster, &mut corpus, &output, clients, &mut out);
    let errors = cluster.server_errors();
    let degraded = cluster.router().degraded();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    result?;
    if errors > 0 {
        return Err(format!("zero-5xx gate failed: {errors} server error(s) during the roll"));
    }
    if degraded > 0 {
        return Err(format!("roll degraded {degraded} request(s) to backend_unavailable"));
    }
    let _ = writeln!(out, "zero-5xx gate: ok (0 server errors, 0 degraded)");
    let _ = writeln!(out, "cluster smoke: all gates passed");
    Ok(out)
}

fn smoke_gates(
    cluster: &LocalCluster,
    corpus: &mut ChurnCorpus,
    gen0: &BuildOutput,
    clients: usize,
    out: &mut String,
) -> Result<(), String> {
    let addr = cluster.router_addr();
    let io = |e: std::io::Error| format!("smoke client: {e}");

    // Gate 1: sharded ≡ monolith. Every probed item must come back from
    // the cluster with exactly the keyphrases the monolithic engine
    // produces (compared as texts — keyphrase ids are vocab-local).
    let engine = Engine::new(Arc::new(gen0.model.clone()));
    let mut client = HttpClient::connect(addr).map_err(io)?;
    let mut checked = 0usize;
    for item in corpus.marketplace().items.iter().take(60) {
        let request = InferRequest::new(&item.title, item.leaf).k(10);
        let want: Vec<String> = engine
            .infer(&request)
            .predictions
            .iter()
            .map(|p| engine.model().keyphrase_text(p.keyphrase).unwrap().to_string())
            .collect();
        let body = graphex_server::Json::obj(vec![
            ("title", graphex_server::Json::str(item.title.clone())),
            ("leaf", graphex_server::Json::uint(u64::from(item.leaf.0))),
            ("k", graphex_server::Json::uint(10)),
        ])
        .render();
        let response = client.post_json("/v1/infer", &body).map_err(io)?;
        if response.status != 200 {
            return Err(format!("router answered HTTP {} for {:?}", response.status, item.title));
        }
        let parsed = graphex_server::json::parse(&response.text())
            .map_err(|e| format!("router payload: {e}"))?;
        let got: Vec<String> = parsed
            .get("keyphrases")
            .and_then(|k| k.as_arr())
            .map(|arr| {
                arr.iter().filter_map(|k| k.as_str().map(str::to_string)).collect()
            })
            .unwrap_or_default();
        if got != want {
            return Err(format!(
                "sharded ≠ monolith for {:?} (leaf {}): cluster {got:?}, monolith {want:?}",
                item.title, item.leaf.0
            ));
        }
        checked += 1;
    }
    let _ = writeln!(out, "sharded ≡ monolith: {checked} items identical");

    // Gate 2: rolling hot-swap under concurrent keep-alive traffic.
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicU64::new(0));
    let titles: Vec<(String, u32)> = corpus
        .marketplace()
        .items
        .iter()
        .take(40)
        .map(|item| (item.title.clone(), item.leaf.0))
        .collect();
    let workers: Vec<_> = (0..clients)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            let sent = Arc::clone(&sent);
            let titles = titles.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = None;
                let mut i = worker;
                while !stop.load(Ordering::Relaxed) {
                    let connected = match client.take() {
                        Some(c) => c,
                        None => HttpClient::connect(addr).map_err(|e| e.to_string())?,
                    };
                    let mut c = connected;
                    let (title, leaf) = &titles[i % titles.len()];
                    let body = format!(r#"{{"title":{:?},"leaf":{leaf},"k":5}}"#, title);
                    let response = c.post_json("/v1/infer", &body).map_err(|e| e.to_string())?;
                    if response.status >= 500 {
                        return Err(format!("HTTP {} during the roll", response.status));
                    }
                    // The edge closes keep-alive at its cap; reconnect then.
                    let closed = response
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    if !closed {
                        client = Some(c);
                    }
                    sent.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                Ok(())
            })
        })
        .collect();

    corpus.advance_to(1);
    let gen1 = smoke_build(corpus)?;
    let shards = cluster.backends().len() as u32;
    let next = gen1.emit_shards(shards).map_err(|e| format!("emit gen1: {e}"))?;
    let payloads: Vec<graphex_server::ShardPayload> = next
        .iter()
        .map(|s| {
            (
                s.bytes.to_vec(),
                vec![(BUILDINFO_FILE.to_string(), s.manifest.render().into_bytes())],
            )
        })
        .collect();
    let rolled = cluster
        .rolling_publish(&payloads, "smoke gen1", Duration::from_secs(10))
        .map_err(|e| format!("rolling publish: {e}"));
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let mut failures = Vec::new();
    for worker in workers {
        if let Err(e) = worker.join().map_err(|_| "client panicked".to_string())? {
            failures.push(e);
        }
    }
    rolled?;
    if let Some(first) = failures.first() {
        return Err(format!("{} client(s) failed during the roll (first: {first})", failures.len()));
    }
    let _ = writeln!(
        out,
        "rolling swap: {} requests served across the roll, every backend on gen1",
        sent.load(Ordering::Relaxed)
    );

    // Gate 3: the router's own /statusz sees every backend healthy.
    let mut client = HttpClient::connect(addr).map_err(io)?;
    let status = client.get("/statusz").map_err(io)?;
    if status.status != 200 {
        return Err(format!("GET /statusz: HTTP {}", status.status));
    }
    let parsed = graphex_server::json::parse(&status.text())
        .map_err(|e| format!("statusz payload: {e}"))?;
    let backends = parsed
        .get("backends")
        .and_then(|b| b.as_arr())
        .ok_or("statusz missing backends table")?;
    for backend in backends {
        if backend.get("state").and_then(|s| s.as_str()) != Some("healthy") {
            return Err(format!("unhealthy backend after the roll: {}", backend.render()));
        }
    }
    let _ = writeln!(out, "router /statusz: {} backend(s) healthy", backends.len());

    // Gate 4: the telemetry-history ring is live on every node. Force a
    // sample cluster-wide, then probe `/debug/history` on the router
    // (router-shaped series) and on each backend (serving series).
    cluster.sample_history_now();
    let history = client.get("/debug/history").map_err(io)?;
    if history.status != 200 {
        return Err(format!("router GET /debug/history: HTTP {}", history.status));
    }
    let parsed = graphex_server::json::parse(&history.text())
        .map_err(|e| format!("router debug/history payload: {e}"))?;
    if parsed.get("samples").and_then(|v| v.as_u64()).unwrap_or(0) == 0 {
        return Err(format!("router history holds no samples: {}", history.text()));
    }
    for key in ["router/requests_in", "router/backends_healthy"] {
        if parsed.get("series").and_then(|s| s.get(key)).is_none() {
            return Err(format!("router history missing {key} series: {}", history.text()));
        }
    }
    for backend in cluster.backends() {
        let mut client = HttpClient::connect(backend.addr()).map_err(io)?;
        let history = client.get("/debug/history").map_err(io)?;
        if history.status != 200 {
            return Err(format!(
                "shard {} GET /debug/history: HTTP {}",
                backend.shard, history.status
            ));
        }
        let parsed = graphex_server::json::parse(&history.text())
            .map_err(|e| format!("shard {} debug/history payload: {e}", backend.shard))?;
        if parsed.get("series").and_then(|s| s.get("serve/requests")).is_none() {
            return Err(format!(
                "shard {} history missing serve/requests series: {}",
                backend.shard,
                history.text()
            ));
        }
    }
    let _ = writeln!(
        out,
        "telemetry history: router + {} backend(s) sampling",
        cluster.backends().len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_verb_and_missing_root_error() {
        assert!(run(&["sideways".to_string()]).is_err());
        assert!(run(&[]).is_err());
        let missing = std::env::temp_dir().join("graphex-no-such-cluster");
        let err = shard_roots(missing.to_str().unwrap()).unwrap_err();
        assert!(err.contains("shard-0"), "{err}");
    }
}

//! `graphex explain` — inference with full token-level provenance
//! (Sec. III-G interpretability) rendered one rationale per line.

use super::{load_model, parse_leaf};
use crate::args::ParsedArgs;
use graphex_core::{InferenceParams, Scratch};
use std::fmt::Write as _;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let model = load_model(args)?;
    let leaf = parse_leaf(args)?;
    let title = args.require("title")?;
    let k = args.get_num::<usize>("k", 10)?;
    let mut scratch = Scratch::new();
    let explained = model
        .explain(title, leaf, &InferenceParams::with_k(k), &mut scratch)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "title: {title:?} ({leaf}, {} candidates)", explained.len());
    for (rank, e) in explained.iter().enumerate() {
        let _ = writeln!(out, "{:>3}. {}", rank + 1, e.rationale());
    }
    Ok(out)
}

//! `graphex stats` — model inventory: global stats plus a per-leaf table.
//! With `--server <addr>` it instead queries a running `graphex serve`
//! frontend's `/statusz` and renders the live serving counters, including
//! the admission-control gauges (shed / deadline-exceeded / in-flight).

use super::load_model;
use crate::args::ParsedArgs;
use std::fmt::Write as _;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    if let Some(addr) = args.get("server") {
        return server_stats(addr);
    }
    let model = load_model(args)?;
    let stats = model.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "alignment: {}  stemming: {}  fallback: {}",
        model.alignment(),
        model.stemming(),
        model.has_fallback()
    );
    let _ = writeln!(
        out,
        "leaves: {}  keyphrases: {}  tokens: {}  labels: {}  edges: {}  avg degree: {:.2}",
        stats.num_leaves,
        stats.num_keyphrases,
        stats.num_tokens,
        stats.total_labels,
        stats.total_edges,
        stats.avg_degree,
    );
    let _ = writeln!(
        out,
        "heap: {} bytes  serialized: {} bytes",
        stats.heap_bytes,
        model.size_bytes()
    );
    if let Some(path) = args.get("model") {
        render_buildinfo(std::path::Path::new(path), &mut out);
    }

    render_leaf_table(&model, &mut out);
    Ok(out)
}

/// If the snapshot was produced by the build pipeline, its `BUILDINFO`
/// sits next to it — surface what curation did to the corpus (the stats
/// `build_with_stats` reports in-process, persisted for tooling).
fn render_buildinfo(model_path: &std::path::Path, out: &mut String) {
    let info_path = graphex_pipeline::buildinfo_path_for(model_path);
    if !info_path.is_file() {
        return;
    }
    match graphex_pipeline::BuildManifest::load(&info_path) {
        Ok(manifest) => {
            let c = &manifest.curation;
            let _ = writeln!(
                out,
                "curation ({}): {} records in, {} parse errors → {} kept \
                 ({} below threshold, {} token bounds, {} over leaf cap, {} duplicates merged)",
                info_path.display(),
                manifest.records_in,
                manifest.parse_errors,
                c.kept,
                c.dropped_low_search,
                c.dropped_token_bounds,
                c.dropped_leaf_cap,
                c.merged_duplicates,
            );
        }
        Err(e) => {
            let _ = writeln!(out, "buildinfo: unreadable ({e})");
        }
    }
}

/// Live serving counters from a running frontend's `/statusz`.
fn server_stats(addr: &str) -> Result<String, String> {
    let mut client = graphex_server::HttpClient::connect(addr)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client.get("/statusz").map_err(|e| format!("GET /statusz: {e}"))?;
    if response.status != 200 {
        return Err(format!("GET /statusz: HTTP {}", response.status));
    }
    let stats = graphex_server::json::parse(&response.text())
        .map_err(|e| format!("statusz payload: {e}"))?;
    let num = |key: &str| stats.get(key).and_then(|v| v.as_u64()).unwrap_or(0);

    let mut out = String::new();
    let _ = writeln!(out, "server: http://{addr}");
    let _ = writeln!(
        out,
        "model: snapshot_version {}  swaps {}",
        num("snapshot_version"),
        num("model_swaps")
    );
    let _ = writeln!(
        out,
        "admission: in-flight {}  shed {}  deadline-exceeded {}  queue depth {}",
        num("in_flight"),
        num("shed"),
        num("deadline_exceeded"),
        num("queue_depth")
    );
    let _ = writeln!(
        out,
        "serving: store hits {}  read-throughs {}  coalesced {}  direct {}  unservable {}  invalidated {}",
        num("store_hits"),
        num("read_throughs"),
        num("coalesced"),
        num("direct"),
        num("unservable"),
        num("invalidated")
    );
    if let Some(outcomes) = stats.get("outcomes") {
        let of = |key: &str| outcomes.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(
            out,
            "outcomes: exact_leaf {}  meta_fallback {}  unknown_leaf {}  empty {}",
            of("exact_leaf"),
            of("meta_fallback"),
            of("unknown_leaf"),
            of("empty")
        );
    }
    Ok(out)
}

fn render_leaf_table(model: &graphex_core::GraphExModel, out: &mut String) {
    let mut leaves: Vec<_> = model.leaf_ids().collect();
    leaves.sort_unstable();
    let _ = writeln!(out, "\n{:>10} {:>8} {:>8} {:>8} {:>10}", "leaf", "words", "labels", "edges", "avg deg");
    for leaf in leaves {
        let g = model.leaf_graph(leaf).expect("listed leaf");
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>8} {:>8} {:>10.2}",
            leaf.0,
            g.num_words(),
            g.num_labels(),
            g.num_edges(),
            g.avg_degree(),
        );
    }
}

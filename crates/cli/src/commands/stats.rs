//! `graphex stats` — model inventory: global stats plus a per-leaf table.
//! With `--server <addr>` it instead queries a running `graphex serve`
//! frontend's `/statusz` and renders the live serving counters, including
//! the admission-control gauges (shed / deadline-exceeded / in-flight).
//!
//! A comma-separated `--server a,b,c` (or `--map <shard map file>`)
//! aggregates across a backend cluster: one row per backend plus a
//! cluster rollup, with unreachable backends reported as `down` instead
//! of failing the whole command.

use super::load_model;
use crate::args::ParsedArgs;
use graphex_server::Json;
use std::fmt::Write as _;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    if args.get("map").is_some() {
        let map = super::route::map_from(args)?;
        return cluster_stats(map.backends());
    }
    if let Some(addr) = args.get("server") {
        let addrs: Vec<String> =
            addr.split(',').filter(|a| !a.is_empty()).map(str::to_string).collect();
        if addrs.len() > 1 {
            return cluster_stats(&addrs);
        }
        return server_stats(addr);
    }
    let model = load_model(args)?;
    let stats = model.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "alignment: {}  stemming: {}  fallback: {}",
        model.alignment(),
        model.stemming(),
        model.has_fallback()
    );
    let _ = writeln!(
        out,
        "leaves: {}  keyphrases: {}  tokens: {}  labels: {}  edges: {}  avg degree: {:.2}",
        stats.num_leaves,
        stats.num_keyphrases,
        stats.num_tokens,
        stats.total_labels,
        stats.total_edges,
        stats.avg_degree,
    );
    let _ = writeln!(
        out,
        "heap: {} bytes  serialized: {} bytes",
        stats.heap_bytes,
        model.size_bytes()
    );
    if let Some(path) = args.get("model") {
        render_buildinfo(std::path::Path::new(path), &mut out);
    }

    render_leaf_table(&model, &mut out);
    Ok(out)
}

/// If the snapshot was produced by the build pipeline, its `BUILDINFO`
/// sits next to it — surface what curation did to the corpus (the stats
/// `build_with_stats` reports in-process, persisted for tooling).
fn render_buildinfo(model_path: &std::path::Path, out: &mut String) {
    let info_path = graphex_pipeline::buildinfo_path_for(model_path);
    if !info_path.is_file() {
        return;
    }
    match graphex_pipeline::BuildManifest::load(&info_path) {
        Ok(manifest) => {
            let c = &manifest.curation;
            let _ = writeln!(
                out,
                "curation ({}): {} records in, {} parse errors → {} kept \
                 ({} below threshold, {} token bounds, {} over leaf cap, {} duplicates merged)",
                info_path.display(),
                manifest.records_in,
                manifest.parse_errors,
                c.kept,
                c.dropped_low_search,
                c.dropped_token_bounds,
                c.dropped_leaf_cap,
                c.merged_duplicates,
            );
        }
        Err(e) => {
            let _ = writeln!(out, "buildinfo: unreadable ({e})");
        }
    }
}

/// Live serving counters from a running frontend's `/statusz`.
fn server_stats(addr: &str) -> Result<String, String> {
    let mut client = graphex_server::HttpClient::connect(addr)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client.get("/statusz").map_err(|e| format!("GET /statusz: {e}"))?;
    if response.status != 200 {
        return Err(format!("GET /statusz: HTTP {}", response.status));
    }
    let stats = graphex_server::json::parse(&response.text())
        .map_err(|e| format!("statusz payload: {e}"))?;
    let num = |key: &str| stats.get(key).and_then(|v| v.as_u64()).unwrap_or(0);

    let mut out = String::new();
    let _ = writeln!(out, "server: http://{addr}");
    let _ = writeln!(
        out,
        "model: snapshot_version {}  swaps {}",
        num("snapshot_version"),
        num("model_swaps")
    );
    let _ = writeln!(
        out,
        "admission: in-flight {}  shed {}  deadline-exceeded {}  queue depth {}",
        num("in_flight"),
        num("shed"),
        num("deadline_exceeded"),
        num("queue_depth")
    );
    if let Some(latency) = stats.get("latency") {
        let q = |key: &str| latency.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "latency: {} inferences  p50 {:.0}µs  p90 {:.0}µs  p99 {:.0}µs",
            latency.get("count").and_then(|v| v.as_u64()).unwrap_or(0),
            q("p50_us"),
            q("p90_us"),
            q("p99_us"),
        );
    }
    if let Some(trace) = stats.get("trace") {
        if trace.get("enabled").and_then(|v| v.as_bool()) == Some(true) {
            let tn = |key: &str| trace.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
            let _ = writeln!(
                out,
                "tracing: recorded {}  slow {} (threshold {}µs)  — `graphex trace --server {addr}`",
                tn("recorded"),
                tn("slow"),
                tn("slow_threshold_us"),
            );
        }
    }
    let _ = writeln!(
        out,
        "serving: store hits {}  read-throughs {}  coalesced {}  direct {}  unservable {}  invalidated {}",
        num("store_hits"),
        num("read_throughs"),
        num("coalesced"),
        num("direct"),
        num("unservable"),
        num("invalidated")
    );
    if let Some(outcomes) = stats.get("outcomes") {
        let of = |key: &str| outcomes.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(
            out,
            "outcomes: exact_leaf {}  meta_fallback {}  unknown_leaf {}  empty {}",
            of("exact_leaf"),
            of("meta_fallback"),
            of("unknown_leaf"),
            of("empty")
        );
    }
    Ok(out)
}

/// One `/statusz` fetch for the cluster table; `None` = unreachable.
fn fetch_statusz(addr: &str) -> Option<Json> {
    let mut client = graphex_server::HttpClient::connect(addr).ok()?;
    let response = client.get("/statusz").ok()?;
    if response.status != 200 {
        return None;
    }
    graphex_server::json::parse(&response.text()).ok()
}

/// Per-backend rows + a cluster rollup across a shard map. Backends that
/// cannot be reached (or answer garbage) show as `down` — an operator
/// pointing `stats` at a half-up cluster still gets the full picture.
fn cluster_stats(addrs: &[String]) -> Result<String, String> {
    const COUNTERS: [&str; 6] =
        ["in_flight", "shed", "deadline_exceeded", "store_hits", "read_throughs", "unservable"];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5}  {:<21} {:>6} {:>9} {:>9} {:>6} {:>9} {:>11} {:>13} {:>11}",
        "shard", "backend", "state", "snapshot", "in-flight", "shed", "deadline", "store-hits",
        "read-through", "unservable"
    );
    let mut up = 0usize;
    let mut totals = [0u64; COUNTERS.len()];
    let mut versions: Vec<u64> = Vec::new();
    for (shard, addr) in addrs.iter().enumerate() {
        match fetch_statusz(addr) {
            Some(stats) => {
                up += 1;
                let num = |key: &str| stats.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
                versions.push(num("snapshot_version"));
                let mut row = [0u64; COUNTERS.len()];
                for (slot, key) in COUNTERS.iter().enumerate() {
                    row[slot] = num(key);
                    totals[slot] += row[slot];
                }
                let _ = writeln!(
                    out,
                    "{shard:>5}  {addr:<21} {:>6} {:>9} {:>9} {:>6} {:>9} {:>11} {:>13} {:>11}",
                    "up", num("snapshot_version"), row[0], row[1], row[2], row[3], row[4], row[5]
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{shard:>5}  {addr:<21} {:>6} {:>9} {:>9} {:>6} {:>9} {:>11} {:>13} {:>11}",
                    "down", "-", "-", "-", "-", "-", "-", "-"
                );
            }
        }
    }
    versions.sort_unstable();
    versions.dedup();
    let version_note = match versions.as_slice() {
        [] => "none".to_string(),
        [one] => one.to_string(),
        many => format!(
            "MIXED ({})",
            many.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        ),
    };
    let _ = writeln!(
        out,
        "cluster: {up}/{} up  snapshot {version_note}  in-flight {}  shed {}  \
         deadline-exceeded {}  store-hits {}  read-throughs {}  unservable {}",
        addrs.len(),
        totals[0],
        totals[1],
        totals[2],
        totals[3],
        totals[4],
        totals[5],
    );
    Ok(out)
}

fn render_leaf_table(model: &graphex_core::GraphExModel, out: &mut String) {
    let mut leaves: Vec<_> = model.leaf_ids().collect();
    leaves.sort_unstable();
    let _ = writeln!(out, "\n{:>10} {:>8} {:>8} {:>8} {:>10}", "leaf", "words", "labels", "edges", "avg deg");
    for leaf in leaves {
        let g = model.leaf_graph(leaf).expect("listed leaf");
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>8} {:>8} {:>10.2}",
            leaf.0,
            g.num_words(),
            g.num_labels(),
            g.num_edges(),
            g.avg_degree(),
        );
    }
}

//! `graphex stats` — model inventory: global stats plus a per-leaf table.

use super::load_model;
use crate::args::ParsedArgs;
use std::fmt::Write as _;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let model = load_model(args)?;
    let stats = model.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "alignment: {}  stemming: {}  fallback: {}",
        model.alignment(),
        model.stemming(),
        model.has_fallback()
    );
    let _ = writeln!(
        out,
        "leaves: {}  keyphrases: {}  tokens: {}  labels: {}  edges: {}  avg degree: {:.2}",
        stats.num_leaves,
        stats.num_keyphrases,
        stats.num_tokens,
        stats.total_labels,
        stats.total_edges,
        stats.avg_degree,
    );
    let _ = writeln!(
        out,
        "heap: {} bytes  serialized: {} bytes",
        stats.heap_bytes,
        model.size_bytes()
    );

    let mut leaves: Vec<_> = model.leaf_ids().collect();
    leaves.sort_unstable();
    let _ = writeln!(out, "\n{:>10} {:>8} {:>8} {:>8} {:>10}", "leaf", "words", "labels", "edges", "avg deg");
    for leaf in leaves {
        let g = model.leaf_graph(leaf).expect("listed leaf");
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>8} {:>8} {:>10.2}",
            leaf.0,
            g.num_words(),
            g.num_labels(),
            g.num_edges(),
            g.avg_degree(),
        );
    }
    Ok(out)
}

//! `graphex infer` — recommend keyphrases for one title (`--title`) or a
//! stream of titles (`--stdin`, one per line). Output is TSV:
//! `rank<TAB>keyphrase<TAB>score<TAB>search<TAB>recall` (with a leading
//! title column in stream mode).

use super::{load_model, parse_leaf};
use crate::args::ParsedArgs;
use graphex_core::{GraphExModel, InferenceParams, LeafId, Scratch};
use std::fmt::Write as _;
use std::io::BufRead;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let model = load_model(args)?;
    let leaf = parse_leaf(args)?;
    let k = args.get_num::<usize>("k", 20)?;
    let params = InferenceParams::with_k(k);
    let mut scratch = Scratch::new();

    if args.switch("stdin") {
        let stdin = std::io::stdin();
        let mut out = String::new();
        for line in stdin.lock().lines() {
            let title = line.map_err(|e| format!("stdin: {e}"))?;
            if title.trim().is_empty() {
                continue;
            }
            render_predictions(&model, &title, leaf, &params, &mut scratch, true, &mut out)?;
        }
        Ok(out)
    } else {
        let title = args.require("title")?;
        let mut out = String::new();
        render_predictions(&model, title, leaf, &params, &mut scratch, false, &mut out)?;
        Ok(out)
    }
}

fn render_predictions(
    model: &GraphExModel,
    title: &str,
    leaf: LeafId,
    params: &InferenceParams,
    scratch: &mut Scratch,
    include_title: bool,
    out: &mut String,
) -> Result<(), String> {
    let preds = model.infer(title, leaf, params, scratch).map_err(|e| e.to_string())?;
    let alignment = model.alignment();
    for (rank, p) in preds.iter().enumerate() {
        if include_title {
            let _ = write!(out, "{title}\t");
        }
        let _ = writeln!(
            out,
            "{}\t{}\t{:.4}\t{}\t{}",
            rank + 1,
            model.keyphrase_text(p.keyphrase).unwrap_or_default(),
            p.score(alignment),
            p.search_count,
            p.recall_count,
        );
    }
    Ok(())
}

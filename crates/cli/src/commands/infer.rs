//! `graphex infer` — recommend keyphrases for one title (`--title`) or a
//! stream of titles (`--stdin`, one per line). Output is TSV:
//! `rank<TAB>keyphrase<TAB>score<TAB>search<TAB>recall` (with a leading
//! title column in stream mode). `--alignment` overrides the model's
//! ranking function per request; `--outcome` appends a `# outcome: …`
//! line showing the inference provenance (exact leaf vs. meta fallback).

use super::{load_model, parse_leaf};
use crate::args::ParsedArgs;
use graphex_core::{Alignment, Engine, InferRequest, Outcome, Session};
use std::fmt::Write as _;
use std::io::BufRead;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let engine = Engine::from_model(load_model(args)?);
    let leaf = parse_leaf(args)?;
    let k = args.get_num::<usize>("k", 20)?;
    let alignment = match args.get("alignment") {
        None => None,
        Some("lta") => Some(Alignment::Lta),
        Some("wmr") => Some(Alignment::Wmr),
        Some("jac") => Some(Alignment::Jac),
        Some(other) => return Err(format!("unknown alignment {other:?} (lta|wmr|jac)")),
    };
    let show_outcome = args.switch("outcome");
    let mut session = engine.session();

    let template = {
        let mut req = InferRequest::new("", leaf).k(k).resolve_texts(true);
        if let Some(a) = alignment {
            req = req.alignment(a);
        }
        req
    };

    if args.switch("stdin") {
        let stdin = std::io::stdin();
        let mut out = String::new();
        for line in stdin.lock().lines() {
            let title = line.map_err(|e| format!("stdin: {e}"))?;
            if title.trim().is_empty() {
                continue;
            }
            render_response(&mut session, InferRequest { title: &title, ..template }, true, show_outcome, &mut out)?;
        }
        Ok(out)
    } else {
        let title = args.require("title")?;
        let mut out = String::new();
        render_response(&mut session, InferRequest { title, ..template }, false, show_outcome, &mut out)?;
        Ok(out)
    }
}

fn render_response(
    session: &mut Session<'_>,
    request: InferRequest<'_>,
    include_title: bool,
    show_outcome: bool,
    out: &mut String,
) -> Result<(), String> {
    let response = session.infer(&request);
    if response.outcome == Outcome::UnknownLeaf {
        return Err(format!(
            "no graph for {} and no fallback built into this model",
            request.leaf
        ));
    }
    let alignment = request.alignment.unwrap_or_else(|| session.engine().model().alignment());
    for (rank, (p, text)) in response.predictions.iter().zip(&response.texts).enumerate() {
        if include_title {
            let _ = write!(out, "{}\t", request.title);
        }
        let _ = writeln!(
            out,
            "{}\t{}\t{:.4}\t{}\t{}",
            rank + 1,
            text,
            p.score(alignment),
            p.search_count,
            p.recall_count,
        );
    }
    if show_outcome {
        let _ = writeln!(out, "# outcome: {}", response.outcome.name());
    }
    Ok(())
}

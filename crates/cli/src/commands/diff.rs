//! `graphex diff` — compare two model files (daily-refresh gate).

use crate::args::ParsedArgs;
use graphex_core::diff::diff_models;
use graphex_core::serialize;
use std::fmt::Write as _;

pub fn run(args: &ParsedArgs) -> Result<String, String> {
    let old_path = args.require("old")?;
    let new_path = args.require("new")?;
    let old = serialize::load_from(old_path).map_err(|e| format!("load {old_path}: {e}"))?;
    let new = serialize::load_from(new_path).map_err(|e| format!("load {new_path}: {e}"))?;
    let diff = diff_models(&old, &new);

    let mut out = String::new();
    let _ = writeln!(out, "{}", diff.summary());
    let max_listed = args.get_num::<usize>("max-listed", 10)?;
    for (leaf, change) in diff.changed_leaves.iter().take(max_listed) {
        let _ = writeln!(
            out,
            "  leaf {leaf}: +{} -{} (={})",
            change.added.len(),
            change.removed.len(),
            change.retained
        );
        for phrase in change.added.iter().take(3) {
            let _ = writeln!(out, "    + {phrase}");
        }
        for phrase in change.removed.iter().take(3) {
            let _ = writeln!(out, "    - {phrase}");
        }
    }
    if diff.changed_leaves.len() > max_listed {
        let _ = writeln!(out, "  ... {} more changed leaves", diff.changed_leaves.len() - max_listed);
    }
    Ok(out)
}

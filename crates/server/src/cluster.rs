//! Local cluster orchestration: boot N sharded backends plus a
//! scatter-gather router in one process, and roll a new model generation
//! across the fleet one shard at a time.
//!
//! This is the machinery behind `graphex cluster` and the cluster
//! integration tests. Each backend is a full [`crate::server`] frontend
//! over its own [`ModelRegistry`] root (`<cluster>/shard-<i>` by
//! convention, see `graphex_pipeline::shard_root`), so a rolling deploy
//! is literally N independent registry publishes — the router keeps
//! serving throughout because each backend hot-swaps under traffic
//! exactly like a monolith does.

use crate::router::{start_router, RouterConfig, RouterHandle};
use crate::server::{start, ServerConfig, ServerHandle};
use crate::shardmap::ShardMap;
use graphex_serving::{KvStore, ModelRegistry, ServingApi, SnapshotMeta};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard's publishable payload: the serialized snapshot bytes plus
/// named sidecar files (e.g. its `BUILDINFO` manifest) staged with it.
pub type ShardPayload = (Vec<u8>, Vec<(String, Vec<u8>)>);

/// One sharded backend: registry root, serving API, HTTP frontend.
pub struct LocalBackend {
    /// Which shard of the map this backend owns.
    pub shard: u32,
    /// The registry this backend watches; publishing here hot-swaps it.
    pub registry: Arc<ModelRegistry>,
    /// The serving API behind the frontend (stats, snapshot version).
    pub api: Arc<ServingApi>,
    server: ServerHandle,
}

impl LocalBackend {
    /// The backend's loopback address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The backend frontend's HTTP metrics (5xx gate input).
    pub fn metrics(&self) -> &crate::metrics::HttpMetrics {
        self.server.metrics()
    }

    /// Takes one history sample on this backend immediately; no-op when
    /// history is disabled.
    pub fn sample_history_now(&self) {
        self.server.sample_history_now();
    }
}

/// Errors from booting or rolling a local cluster.
#[derive(Debug)]
pub enum ClusterError {
    /// A registry root failed to open or publish.
    Registry(u32, graphex_serving::RegistryError),
    /// A socket-level failure booting a backend or the router.
    Io(std::io::Error),
    /// A rolled backend never observed its new snapshot version.
    SwapTimeout { shard: u32, expected: u64, observed: u64 },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Registry(shard, e) => write!(f, "shard {shard}: {e}"),
            Self::Io(e) => write!(f, "cluster io: {e}"),
            Self::SwapTimeout { shard, expected, observed } => write!(
                f,
                "shard {shard}: swap to version {expected} not observed (still {observed})"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// How a [`LocalCluster`] is booted.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Template for every backend (its `addr` is ignored — each backend
    /// binds an ephemeral loopback port).
    pub backend: ServerConfig,
    /// Router edge configuration (its `addr` is honoured).
    pub router: RouterConfig,
    /// Per-backend answer-store capacity hint (`ServingApi` default k).
    pub default_k: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            backend: ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
            router: RouterConfig::default(),
            default_k: 10,
        }
    }
}

/// N backends + a router, all in-process on loopback.
pub struct LocalCluster {
    backends: Vec<LocalBackend>,
    map: ShardMap,
    router: RouterHandle,
}

impl LocalCluster {
    /// Boots one backend per shard root (index order == shard index) and
    /// a router over the resulting shard map. Every root must already
    /// hold at least one published snapshot — a backend with no model
    /// cannot warm up.
    pub fn boot(shard_roots: &[PathBuf], config: &ClusterConfig) -> Result<Self, ClusterError> {
        let mut backends = Vec::with_capacity(shard_roots.len());
        for (shard, root) in shard_roots.iter().enumerate() {
            let shard = shard as u32;
            backends.push(boot_backend(shard, root, config)?);
        }
        let map = ShardMap::from_backends(
            backends.iter().map(|b| b.addr().to_string()).collect(),
        )
        .map_err(|e| ClusterError::Io(std::io::Error::new(std::io::ErrorKind::InvalidInput, e)))?;
        let router = start_router(config.router.clone(), map.clone())?;
        Ok(Self { backends, map, router })
    }

    /// The router's loopback address — what clients talk to.
    pub fn router_addr(&self) -> std::net::SocketAddr {
        self.router.addr()
    }

    /// The running router edge.
    pub fn router(&self) -> &RouterHandle {
        &self.router
    }

    /// The shard map the router was booted with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The backends, indexed by shard.
    pub fn backends(&self) -> &[LocalBackend] {
        &self.backends
    }

    /// Takes one history sample on the router and every backend at once
    /// (tests and smoke gates don't wait out the sampler interval).
    pub fn sample_history_now(&self) {
        self.router.sample_history_now();
        for backend in &self.backends {
            backend.sample_history_now();
        }
    }

    /// Total 5xx responses across the router and every backend — the
    /// cluster-wide zero-5xx gate reads this before and after a roll.
    pub fn server_errors(&self) -> u64 {
        self.router.metrics().server_errors()
            + self.backends.iter().map(|b| b.metrics().server_errors()).sum::<u64>()
    }

    /// Rolls a new model generation across the cluster **one shard at a
    /// time**: publish shard i's snapshot (+ sidecar files) into its
    /// registry — which validates, warms up, and hot-swaps that backend
    /// under live traffic — then wait until the backend's serving API
    /// observes the new version before touching shard i+1. Traffic keeps
    /// flowing through the router the whole time; the zero-5xx gate is
    /// the caller's to assert via [`Self::server_errors`].
    ///
    /// `snapshots[i]` is `(serialized model bytes, sidecar files)` for
    /// shard i; its length must equal the backend count.
    pub fn rolling_publish(
        &self,
        snapshots: &[ShardPayload],
        note: &str,
        swap_timeout: Duration,
    ) -> Result<Vec<SnapshotMeta>, ClusterError> {
        assert_eq!(
            snapshots.len(),
            self.backends.len(),
            "one snapshot per shard (got {}, cluster has {})",
            snapshots.len(),
            self.backends.len()
        );
        let mut published = Vec::with_capacity(snapshots.len());
        for (backend, (bytes, extras)) in self.backends.iter().zip(snapshots) {
            let extras: Vec<(&str, &[u8])> =
                extras.iter().map(|(name, content)| (name.as_str(), content.as_slice())).collect();
            let meta = backend
                .registry
                .publish_with_files(bytes, note, &extras)
                .map_err(|e| ClusterError::Registry(backend.shard, e))?;
            // Publish activates synchronously, but make the ordering
            // contract explicit: shard i serves the new generation
            // before shard i+1 is touched.
            let deadline = Instant::now() + swap_timeout;
            loop {
                let observed = backend.api.snapshot_version();
                if observed >= meta.version {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(ClusterError::SwapTimeout {
                        shard: backend.shard,
                        expected: meta.version,
                        observed,
                    });
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            published.push(meta);
        }
        Ok(published)
    }

    /// Stops the router first (no new fan-out), then every backend.
    pub fn shutdown(self) {
        self.router.shutdown();
        for backend in self.backends {
            backend.server.shutdown();
        }
    }
}

fn boot_backend(
    shard: u32,
    root: &Path,
    config: &ClusterConfig,
) -> Result<LocalBackend, ClusterError> {
    let registry =
        Arc::new(ModelRegistry::open(root).map_err(|e| ClusterError::Registry(shard, e))?);
    let watch = registry.watch().map_err(|e| ClusterError::Registry(shard, e))?;
    let api = Arc::new(ServingApi::with_watch(watch, Arc::new(KvStore::new()), config.default_k));
    let mut server_config = config.backend.clone();
    server_config.addr = "127.0.0.1:0".into();
    let server = start(server_config, Arc::clone(&api))?;
    Ok(LocalBackend { shard, registry, api, server })
}

//! Minimal hand-rolled JSON: enough for the `/v1/infer` envelopes and
//! `/statusz`, with no dependency. Parsing is strict where it matters for
//! robustness (depth limit, UTF-8 escapes, numbers via `f64`) and returns
//! errors — never panics — on malformed input; encoding escapes control
//! characters and quotes.
//!
//! Objects preserve insertion order in a `Vec<(String, Json)>`; lookups
//! are linear, which is the right trade for envelopes of a dozen keys.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (arrays + objects). Deep
/// enough for any real envelope, shallow enough that a hostile body can't
/// blow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integral number, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members in document order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Convenience constructor for object literals.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// `u64` counters render exactly (u64 → f64 is lossy past 2^53, which
    /// no counter in this process reaches; render via the integer path).
    pub fn uint(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    pub what: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null", Json::Null),
            Some(b't') => self.eat("true", Json::Bool(true)),
            Some(b'f') => self.eat("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // {
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (0xD800..=0xDBFF).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone leading surrogate"));
        }
        if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.err("lone trailing surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match byte {
                b'0'..=b'9' => u32::from(byte - b'0'),
                b'a'..=b'f' => u32::from(byte - b'a') + 10,
                b'A'..=b'F' => u32::from(byte - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_envelope() {
        let text = r#"{"title":"audeze maxwell \"pro\"","leaf":3001,"k":10,"flags":[true,false,null],"nested":{"x":-1.5e2}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("audeze maxwell \"pro\""));
        assert_eq!(v.get("leaf").unwrap().as_u64(), Some(3001));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("flags").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("nested").unwrap().get("x").unwrap().as_f64(), Some(-150.0));
        // Render → parse is identity.
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::obj(vec![("s", Json::str("line\nbreak\ttab \"quote\" \\ \u{1}"))]);
        let parsed = parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
        // Unicode escapes, including a surrogate pair.
        let v = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul", "01x", "\"unterminated",
            "{\"a\":1}trailing", "\"\\q\"", "\"\\u12\"", "\"\\ud800\"", "\"\\udc00 alone\"",
            "1e999", "{1:2}", "[,]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is rejected, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn u64_edges() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::uint(u64::from(u32::MAX)).as_u64(), Some(u64::from(u32::MAX)));
    }

    #[test]
    fn render_numbers() {
        assert_eq!(Json::uint(0).render(), "0");
        assert_eq!(Json::num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}

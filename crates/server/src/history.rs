//! Telemetry history: a fixed-size ring of periodic metric samples.
//!
//! `/metrics` and `/statusz` answer "what is the counter *now*"; this
//! module answers "what has it been doing" without a Prometheus server in
//! the loop. A background sampler thread (one per server or router
//! process) snapshots every counter, gauge, and per-stage latency
//! quantile into a [`HistorySample`] on a fixed interval, and
//! [`MetricsHistory`] retains the last `ring` samples. The ring is
//! process-local and loses nothing across model hot-swaps or tenant
//! evictions, because every sampled series is either a gauge or a
//! *lifetime-cumulative* counter (the fleet folds an evicted tenant's
//! counters into a persistent accumulator, so its series stays monotone
//! through evict/re-admit cycles).
//!
//! Surfaces:
//! * `GET /debug/history[?window=N&series=substr]` — the ring as JSON,
//!   each series with its aligned points plus a `rate_per_s` computed
//!   over the returned window (meaningful for cumulative series; for
//!   gauges it is just the end-to-end slope).
//! * a `history` block on `/statusz` — ring occupancy plus Unicode
//!   sparklines over the most recent samples, so a plain curl shows the
//!   shape of the last few minutes.
//!
//! Overhead: the hot path never touches this module. Sampling reads the
//! same atomics `/metrics` reads, once per interval, on a dedicated
//! thread; the `historybench` gate pins the cost below 1% of serving
//! throughput.

use crate::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Sampler knobs.
#[derive(Debug, Clone)]
pub struct HistoryConfig {
    /// Master switch: `false` spawns no sampler thread and serves 404 on
    /// `/debug/history`.
    pub enabled: bool,
    /// Time between samples.
    pub interval: Duration,
    /// Samples retained (the ring evicts oldest-first beyond this).
    pub ring: usize,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        Self { enabled: true, interval: Duration::from_secs(1), ring: 512 }
    }
}

/// One sampler pass: every series value observed at one instant.
#[derive(Debug, Clone)]
pub struct HistorySample {
    /// 1-based, strictly increasing, never reused — a consumer can prove
    /// it missed nothing by checking tick contiguity.
    pub tick: u64,
    /// Milliseconds since the history was created.
    pub at_ms: u64,
    /// `(series key, value)` pairs, sorted by key. Keys are
    /// slash-namespaced (`serve/requests`, `stage/traversal/p50_us`,
    /// `tenant/acme/requests`, `backend/2/calls`).
    pub values: Vec<(String, f64)>,
}

impl HistorySample {
    /// The value of one series in this sample.
    pub fn value(&self, key: &str) -> Option<f64> {
        self.values
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.values[i].1)
    }
}

/// The ring of completed samples plus the tick allocator.
#[derive(Debug)]
pub struct MetricsHistory {
    config: HistoryConfig,
    started: Instant,
    tick: AtomicU64,
    ring: Mutex<VecDeque<Arc<HistorySample>>>,
}

/// Series shown as `/statusz` sparklines, at most.
const STATUSZ_SPARKLINES: usize = 24;
/// Samples a `/statusz` sparkline spans, at most.
const SPARKLINE_WIDTH: usize = 32;

impl MetricsHistory {
    pub fn new(config: HistoryConfig) -> Self {
        Self {
            config,
            started: Instant::now(),
            tick: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn config(&self) -> &HistoryConfig {
        &self.config
    }

    /// Records one sampler pass. Values are sorted here so lookups can
    /// binary-search; the caller just collects.
    pub fn record(&self, mut values: Vec<(String, f64)>) -> Arc<HistorySample> {
        values.sort_by(|a, b| a.0.cmp(&b.0));
        let sample = Arc::new(HistorySample {
            tick: self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            at_ms: self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            values,
        });
        let mut ring = self.lock_ring();
        if self.config.ring > 0 && ring.len() >= self.config.ring {
            ring.pop_front();
        }
        ring.push_back(Arc::clone(&sample));
        sample
    }

    /// Samples recorded since creation (not bounded by the ring).
    pub fn recorded(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Ring occupancy.
    pub fn len(&self) -> usize {
        self.lock_ring().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock_ring().is_empty()
    }

    /// The last `window` samples, oldest first (`usize::MAX` = all).
    pub fn samples(&self, window: usize) -> Vec<Arc<HistorySample>> {
        let ring = self.lock_ring();
        let skip = ring.len().saturating_sub(window);
        ring.iter().skip(skip).cloned().collect()
    }

    /// One series' values over the last `window` samples (samples where
    /// the series is absent are skipped).
    pub fn series(&self, key: &str, window: usize) -> Vec<f64> {
        self.samples(window).iter().filter_map(|s| s.value(key)).collect()
    }

    /// The `GET /debug/history` body. Query grammar: `window=N` keeps
    /// the newest N samples, `series=substr` keeps series whose key
    /// contains the substring.
    pub fn render_debug(&self, query: Option<&str>) -> String {
        let mut window = usize::MAX;
        let mut filter = String::new();
        for part in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').unwrap_or((part, ""));
            match key {
                "window" => window = value.parse().unwrap_or(usize::MAX),
                "series" => filter = value.to_string(),
                _ => {}
            }
        }
        let samples = self.samples(window);
        let span_ms = match (samples.first(), samples.last()) {
            (Some(first), Some(last)) => last.at_ms.saturating_sub(first.at_ms),
            _ => 0,
        };
        // Union of keys across the window (a tenant admitted mid-window
        // contributes a series with leading nulls, not a shifted one).
        let mut keys: BTreeMap<&str, ()> = BTreeMap::new();
        for sample in &samples {
            for (key, _) in &sample.values {
                if filter.is_empty() || key.contains(&filter) {
                    keys.insert(key, ());
                }
            }
        }
        let series: Vec<(&str, Json)> = keys
            .keys()
            .map(|&key| {
                let points: Vec<Json> = samples
                    .iter()
                    .map(|s| s.value(key).map_or(Json::Null, Json::num))
                    .collect();
                let present: Vec<f64> =
                    samples.iter().filter_map(|s| s.value(key)).collect();
                let mut fields = vec![("points", Json::Arr(points))];
                if let (Some(&first), Some(&last)) = (present.first(), present.last()) {
                    fields.push(("last", Json::num(last)));
                    if span_ms > 0 {
                        fields.push((
                            "rate_per_s",
                            Json::num((last - first) / (span_ms as f64 / 1e3)),
                        ));
                    }
                }
                (key, Json::obj(fields))
            })
            .collect();
        Json::obj(vec![
            ("interval_ms", Json::num(self.config.interval.as_millis() as f64)),
            ("ring", Json::uint(self.config.ring as u64)),
            ("recorded", Json::uint(self.recorded())),
            ("samples", Json::uint(samples.len() as u64)),
            ("span_ms", Json::uint(span_ms)),
            ("ticks", Json::Arr(samples.iter().map(|s| Json::uint(s.tick)).collect())),
            ("at_ms", Json::Arr(samples.iter().map(|s| Json::uint(s.at_ms)).collect())),
            ("series", Json::obj(series)),
        ])
        .render()
    }

    /// The `/statusz` history block: ring occupancy plus sparklines over
    /// the most recent samples (alphabetical, capped so a curl stays
    /// readable).
    pub fn statusz_json(&self) -> Json {
        let samples = self.samples(SPARKLINE_WIDTH);
        let mut keys: BTreeMap<&str, ()> = BTreeMap::new();
        for sample in &samples {
            for (key, _) in &sample.values {
                keys.insert(key, ());
            }
        }
        let sparklines: Vec<(&str, Json)> = keys
            .keys()
            .take(STATUSZ_SPARKLINES)
            .map(|&key| {
                let points: Vec<f64> =
                    samples.iter().filter_map(|s| s.value(key)).collect();
                (key, Json::str(sparkline(&points)))
            })
            .collect();
        Json::obj(vec![
            ("enabled", Json::Bool(self.config.enabled)),
            ("interval_ms", Json::num(self.config.interval.as_millis() as f64)),
            ("recorded", Json::uint(self.recorded())),
            ("samples", Json::uint(self.len() as u64)),
            ("sparklines", Json::obj(sparklines)),
        ])
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<HistorySample>>> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Renders values as a Unicode block sparkline, scaled min..max (a flat
/// series renders as all-low, an empty one as "").
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        return String::new();
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return BLOCKS[0];
            }
            let idx = if span <= f64::EPSILON {
                0
            } else {
                (((v - lo) / span) * (BLOCKS.len() - 1) as f64).round() as usize
            };
            BLOCKS[idx.min(BLOCKS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(ring: usize) -> MetricsHistory {
        MetricsHistory::new(HistoryConfig {
            enabled: true,
            interval: Duration::from_millis(10),
            ring,
        })
    }

    fn kv(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn ticks_are_contiguous_and_ring_caps() {
        let h = history(3);
        for i in 0..5 {
            h.record(kv(&[("a", i as f64)]));
        }
        assert_eq!(h.recorded(), 5);
        let samples = h.samples(usize::MAX);
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples.iter().map(|s| s.tick).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest evicted, ticks contiguous"
        );
        assert_eq!(h.series("a", usize::MAX), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn debug_rendering_filters_and_windows() {
        let h = history(16);
        h.record(kv(&[("serve/requests", 10.0), ("queue/depth", 1.0)]));
        h.record(kv(&[("serve/requests", 30.0), ("queue/depth", 0.0)]));
        let all = h.render_debug(None);
        let parsed = crate::json::parse(&all).expect("valid JSON");
        let series = parsed.get("series").unwrap();
        assert!(series.get("serve/requests").is_some(), "{all}");
        assert!(series.get("queue/depth").is_some(), "{all}");
        let points = series.get("serve/requests").unwrap().get("points").unwrap();
        assert_eq!(points.as_arr().unwrap().len(), 2);
        assert_eq!(
            series.get("serve/requests").unwrap().get("last").unwrap().as_f64(),
            Some(30.0)
        );

        let filtered = h.render_debug(Some("series=serve"));
        let parsed = crate::json::parse(&filtered).unwrap();
        assert!(parsed.get("series").unwrap().get("queue/depth").is_none(), "{filtered}");

        let windowed = h.render_debug(Some("window=1"));
        let parsed = crate::json::parse(&windowed).unwrap();
        assert_eq!(parsed.get("samples").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn sparse_series_align_with_nulls() {
        let h = history(8);
        h.record(kv(&[("a", 1.0)]));
        h.record(kv(&[("a", 2.0), ("tenant/late/requests", 5.0)]));
        let parsed = crate::json::parse(&h.render_debug(None)).unwrap();
        let late = parsed.get("series").unwrap().get("tenant/late/requests").unwrap();
        let points = late.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 2);
        assert!(matches!(points[0], Json::Null));
        assert_eq!(points[1].as_f64(), Some(5.0));
        assert_eq!(late.get("last").unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn statusz_block_renders_sparklines() {
        let h = history(8);
        for i in 0..4 {
            h.record(kv(&[("serve/requests", (i * i) as f64)]));
        }
        let block = h.statusz_json().render();
        assert!(block.contains("sparklines"), "{block}");
        assert!(block.contains("serve/requests"), "{block}");
        let parsed = crate::json::parse(&block).unwrap();
        let line = parsed
            .get("sparklines")
            .unwrap()
            .get("serve/requests")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(line.chars().count(), 4);
    }

    #[test]
    fn sparkline_scales_and_handles_edges() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(line, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[f64::NAN, 1.0]).chars().count(), 2);
    }
}

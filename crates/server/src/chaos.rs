//! Fault-injection chaos backend for cluster tests: a TCP listener that
//! misbehaves **on demand**, so router ejection, retry exhaustion, and
//! re-admission become deterministic test subjects instead of hoped-for
//! production behaviours.
//!
//! The mode is runtime-switchable — a test boots one [`ChaosBackend`]
//! into a shard map, flips it through failure modes, and asserts the
//! router's `/statusz` health table and degradation counters at each
//! step. In [`ChaosMode::Healthy`] the backend speaks enough of the
//! `/v1/infer` protocol to satisfy the router: a valid batch envelope
//! echoing each request's id with canned keyphrases.
//!
//! This module is compiled into the library (not `#[cfg(test)]`) because
//! the cluster integration tests live out-of-crate; it has no place in a
//! production deployment, which is fine — nothing routes to it unless a
//! shard map says so.

use crate::http::{self, ReadError};
use crate::json::Json;
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// How the backend treats the next connection/request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Answer correctly: `/healthz` ok, `/v1/infer` echoes ids with
    /// canned keyphrases.
    Healthy,
    /// Accept and immediately close every connection (connection-refused
    /// as seen from a pooled client: EOF before any response byte).
    Refuse,
    /// Read the request, then hang without responding until the mode
    /// changes or `hang_cap` elapses — the caller's read timeout fires.
    Hang,
    /// Answer every request with HTTP 500.
    Error500,
    /// Serve one request correctly, then close the connection —
    /// keep-alive dies between requests.
    ServeThenDie,
    /// HTTP 200 with a body that is not JSON.
    Garbage,
    /// Declare a Content-Length larger than the bytes actually sent,
    /// then close (truncated body).
    Truncated,
    /// Declare an enormous Content-Length (tests the client-side
    /// response cap; no body of that size is ever sent).
    Oversized,
    /// Valid JSON, wrong shape (no `responses` array).
    WrongShape,
}

struct Shared {
    mode: Mutex<ChaosMode>,
    shutdown: AtomicBool,
    /// Requests that reached a handler (any mode).
    requests: AtomicU64,
    /// How long `Hang` holds a request before giving up.
    hang_cap: Duration,
}

impl Shared {
    fn mode(&self) -> ChaosMode {
        *self.mode.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running chaos backend.
pub struct ChaosBackend {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ChaosBackend {
    /// Starts on an ephemeral loopback port in [`ChaosMode::Healthy`].
    pub fn start() -> std::io::Result<Self> {
        Self::start_with_hang_cap(Duration::from_secs(5))
    }

    /// [`start`](Self::start) with an explicit cap on how long `Hang`
    /// mode holds a request (keep it above the router's backend timeout,
    /// below the test's patience).
    pub fn start_with_hang_cap(hang_cap: Duration) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            mode: Mutex::new(ChaosMode::Healthy),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            hang_cap,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("graphex-chaos".into())
                .spawn(move || accept_loop(listener, &shared))?
        };
        Ok(Self { addr, shared, acceptor: Some(acceptor) })
    }

    /// The bound loopback address (for a shard map).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switches the failure mode; takes effect for new requests (and for
    /// in-flight `Hang`s, which re-check the mode while waiting).
    pub fn set_mode(&self, mode: ChaosMode) {
        *self.shared.mode.lock().unwrap_or_else(PoisonError::into_inner) = mode;
    }

    /// Requests that reached a handler so far.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Stops the listener and joins the acceptor (per-connection threads
    /// die with their sockets).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosBackend {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        let accepted = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, _peer)) = accepted else {
            continue;
        };
        if shared.mode() == ChaosMode::Refuse {
            drop(stream); // EOF before any response byte
            continue;
        }
        let shared = Arc::clone(shared);
        // Thread-per-connection: chaos scale is a handful of router
        // workers, not production traffic.
        let _ = std::thread::Builder::new()
            .name("graphex-chaos-conn".into())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;

    loop {
        let request = match http::read_request(&mut reader, 1 << 20) {
            Ok(request) => request,
            Err(ReadError::Closed | ReadError::Io(_)) => return,
            Err(_) => return,
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let mode = shared.mode();
        match mode {
            ChaosMode::Refuse => return, // flipped mid-connection: just die
            ChaosMode::Hang => {
                // Hold until the mode changes, shutdown, or the cap —
                // the caller's read timeout is what's under test.
                let start = std::time::Instant::now();
                while shared.mode() == ChaosMode::Hang
                    && !shared.shutdown.load(Ordering::SeqCst)
                    && start.elapsed() < shared.hang_cap
                {
                    std::thread::sleep(Duration::from_millis(20));
                }
                return; // close without responding
            }
            ChaosMode::Error500 => {
                let _ = http::write_response(
                    &mut write_half,
                    500,
                    "text/plain; charset=utf-8",
                    b"chaos: injected failure\n",
                    true,
                    &[],
                );
            }
            ChaosMode::Garbage => {
                let _ = write_half
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nnot json!");
                let _ = write_half.flush();
            }
            ChaosMode::Truncated => {
                // Declares 1000 body bytes, sends 4, closes.
                let _ = write_half
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\noops");
                let _ = write_half.flush();
                return;
            }
            ChaosMode::Oversized => {
                let _ = write_half.write_all(
                    format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", 1u64 << 40)
                        .as_bytes(),
                );
                let _ = write_half.flush();
                return;
            }
            ChaosMode::WrongShape => {
                let body = Json::obj(vec![("surprise", Json::str("no responses here"))]).render();
                let _ = http::write_response(
                    &mut write_half,
                    200,
                    "application/json",
                    body.as_bytes(),
                    true,
                    &[],
                );
            }
            ChaosMode::Healthy | ChaosMode::ServeThenDie => {
                let body = healthy_response(&request);
                let keep_alive = mode == ChaosMode::Healthy;
                let written = http::write_response(
                    &mut write_half,
                    200,
                    body.1,
                    body.0.as_bytes(),
                    keep_alive,
                    &[],
                );
                if written.is_err() || !keep_alive {
                    return; // ServeThenDie: one good answer, then gone
                }
            }
        }
    }
}

/// The canned keyphrase every healthy chaos answer carries.
pub const CHAOS_KEYPHRASE: &str = "chaos keyphrase";

fn healthy_response(request: &http::Request) -> (String, &'static str) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ("ok\n".into(), "text/plain; charset=utf-8"),
        ("POST", "/v1/infer") => {
            let entry = |id: Option<&Json>| {
                let mut members = vec![
                    ("outcome", Json::str("exact_leaf")),
                    ("source", Json::str("direct")),
                    ("keyphrases", Json::Arr(vec![Json::str(CHAOS_KEYPHRASE)])),
                    ("snapshot_version", Json::uint(1)),
                ];
                if let Some(id) = id {
                    members.insert(0, ("id", id.clone()));
                }
                Json::obj(members)
            };
            let parsed = std::str::from_utf8(&request.body)
                .ok()
                .and_then(|text| crate::json::parse(text).ok());
            let body = match parsed.as_ref().and_then(|p| p.get("requests")).and_then(Json::as_arr)
            {
                Some(requests) => Json::obj(vec![
                    (
                        "responses",
                        Json::Arr(requests.iter().map(|r| entry(r.get("id"))).collect()),
                    ),
                    ("snapshot_version", Json::uint(1)),
                ]),
                None => entry(parsed.as_ref().and_then(|p| p.get("id"))),
            };
            (body.render(), "application/json")
        }
        _ => ("{}".into(), "application/json"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    #[test]
    fn healthy_mode_speaks_the_infer_protocol() {
        let chaos = ChaosBackend::start().unwrap();
        let mut client = HttpClient::connect(chaos.addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        let response = client
            .post_json("/v1/infer", r#"{"requests":[{"title":"x","leaf":1,"id":9}]}"#)
            .unwrap();
        assert_eq!(response.status, 200);
        let body = crate::json::parse(&response.text()).unwrap();
        let responses = body.get("responses").unwrap().as_arr().unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].get("id").unwrap().as_u64(), Some(9));
        assert_eq!(
            responses[0].get("keyphrases").unwrap().as_arr().unwrap()[0].as_str(),
            Some(CHAOS_KEYPHRASE)
        );
        assert_eq!(chaos.requests(), 2);
        drop(client);
        chaos.shutdown();
    }

    #[test]
    fn failure_modes_fail_the_way_they_claim() {
        let chaos = ChaosBackend::start_with_hang_cap(Duration::from_millis(500)).unwrap();

        chaos.set_mode(ChaosMode::Refuse);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        assert!(c.get("/healthz").is_err(), "refuse mode must yield no response");

        chaos.set_mode(ChaosMode::Error500);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 500);

        chaos.set_mode(ChaosMode::Garbage);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        let garbage = c.get("/healthz").unwrap();
        assert!(crate::json::parse(&garbage.text()).is_err());

        chaos.set_mode(ChaosMode::Truncated);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        assert!(c.get("/healthz").is_err(), "truncated body must be an IO error");

        chaos.set_mode(ChaosMode::Oversized);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        c.set_max_response_bytes(1 << 20);
        assert!(c.get("/healthz").is_err(), "oversized declaration must hit the cap");

        chaos.set_mode(ChaosMode::ServeThenDie);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        assert!(c.get("/healthz").is_err(), "second request on the connection must fail");

        chaos.set_mode(ChaosMode::Hang);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        let hung = c.get("/healthz");
        assert!(hung.is_err(), "hang mode answered: {hung:?}");

        chaos.set_mode(ChaosMode::Healthy);
        let mut c = HttpClient::connect(chaos.addr()).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 200, "recovery after chaos");
        chaos.shutdown();
    }
}

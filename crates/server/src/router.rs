//! The scatter-gather router: one HTTP edge in front of a leaf-sharded
//! backend cluster.
//!
//! ```text
//!                        ┌─► backend 0  (leaves ≡ 0 mod N)
//! clients ──► router ────┼─► backend 1  (leaves ≡ 1 mod N)
//!            (this file) └─► backend 2  (leaves ≡ 2 mod N)
//! ```
//!
//! The router speaks the same `/v1/infer` protocol as a single backend —
//! clients cannot tell whether they are talking to a monolith or a
//! cluster. Each request entry is validated with the backend's own
//! decoder (`crate::server::decode_one`), routed by
//! `leaf % shards` through the [`ShardMap`], scattered as per-backend
//! batch sub-envelopes over pooled keep-alive connections, and the
//! responses are merged back in the caller's order with per-request ids
//! (including the >2^53 decimal-string form) passed through verbatim.
//!
//! **Partial failure degrades, it does not storm.** A backend call that
//! exhausts its bounded retries yields per-request `Outcome`-level
//! degradation — `"outcome": "backend_unavailable"` with empty
//! keyphrases inside a 200 envelope — never a router 5xx, so one sick
//! shard cannot fail requests whose leaves live elsewhere.
//!
//! **Ejection state machine** (per backend):
//!
//! ```text
//!             K consecutive failures
//!   Healthy ──────────────────────────► Ejected(backoff)
//!      ▲                                   │ backoff elapsed
//!      │ /healthz probe ok                 ▼
//!      └──────────────────────────── half-open probe
//!                                          │ probe failed
//!                                          ▼
//!                                    Ejected(2·backoff, capped)
//! ```
//!
//! While ejected, calls fail fast (no connect attempt, no retry burn);
//! exactly one thread runs the half-open probe when the backoff expires.

use crate::client::HttpClient;
use crate::history::{HistoryConfig, MetricsHistory};
use crate::http::{self, ReadError, Request};
use crate::json::{self, Json};
use crate::metrics::{Endpoint, HttpMetrics};
use crate::queue::Bounded;
use crate::server::{decode_one, latency_json, MAX_BATCH, MAX_KEEPALIVE_REQUESTS};
use crate::shardmap::ShardMap;
use crate::trace::{
    backend_trace_from_json, parse_trace_id, trace_json_inline, BackendTrace, TraceConfig,
    TraceRecorder, TRACE_HEADER,
};
use graphex_core::{Stage, StageTrace};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Outcome label for a request whose shard was unreachable: router-level
/// degradation, not one of the model's [`graphex_core::Outcome`]s.
pub const OUTCOME_BACKEND_UNAVAILABLE: &str = "backend_unavailable";
/// `source` label accompanying [`OUTCOME_BACKEND_UNAVAILABLE`].
pub const SOURCE_ROUTER_DEGRADED: &str = "router_degraded";
/// Most pooled keep-alive connections kept per backend.
const POOL_SIZE: usize = 8;

/// Router tuning. `Default` is sized for a local cluster; production
/// callers set every field explicitly.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one client connection at a time).
    pub workers: usize,
    /// Accept-queue capacity; connections beyond it are shed with 429.
    pub queue_depth: usize,
    /// Cap on a client request body's declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Idle read timeout on client keep-alive connections.
    pub keep_alive_timeout: Duration,
    /// Connect + read/write timeout for each backend call (a hung
    /// backend costs at most this per attempt).
    pub backend_timeout: Duration,
    /// Extra attempts after a failed backend call (total = retries + 1),
    /// each on a fresh connection.
    pub retries: u32,
    /// Consecutive failed calls before a backend is ejected.
    pub eject_after: u32,
    /// First ejection backoff; doubles per failed half-open probe.
    pub backoff_initial: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Cap on a backend response body's declared `Content-Length`; a
    /// larger declaration is a backend failure, not an allocation.
    pub max_response_bytes: usize,
    /// Request tracing (stage spans, `/debug/traces`, slow ring). The
    /// router's traces embed per-backend breakdowns parsed from the
    /// sub-responses.
    pub trace: TraceConfig,
    /// Telemetry history (periodic counter samples, `/debug/history`).
    pub history: HistoryConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7900".into(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            keep_alive_timeout: Duration::from_secs(5),
            backend_timeout: Duration::from_secs(2),
            retries: 2,
            eject_after: 3,
            backoff_initial: Duration::from_millis(200),
            backoff_max: Duration::from_secs(5),
            max_response_bytes: 8 << 20,
            trace: TraceConfig::default(),
            history: HistoryConfig::default(),
        }
    }
}

/// Per-backend health, behind a mutex.
#[derive(Debug, Clone)]
enum Health {
    Healthy { consecutive_failures: u32 },
    Ejected { until: Instant, backoff: Duration },
}

/// One backend: address, connection pool, health, counters.
struct Backend {
    addr: String,
    pool: Mutex<Vec<HttpClient>>,
    health: Mutex<Health>,
    /// Backend calls attempted (each retry counts).
    calls: AtomicU64,
    /// Failed calls (each failed attempt counts).
    failures: AtomicU64,
    /// Retry attempts (calls beyond a sub-batch's first).
    retries: AtomicU64,
    /// Healthy → Ejected transitions (including failed-probe re-ejects).
    ejections: AtomicU64,
    /// Successful half-open probes.
    readmissions: AtomicU64,
    /// Calls refused locally because the backend was ejected.
    fast_failures: AtomicU64,
    /// Most recent failure message (sticky — survives recovery so
    /// `/statusz` can explain *why* the last ejection happened).
    last_error: Mutex<String>,
    /// Monotone tick of the most recent half-open probe (0 = never
    /// probed). Ticks come from the router-wide probe counter, so rows
    /// order probes across backends.
    last_probe_tick: AtomicU64,
}

impl Backend {
    fn new(addr: String) -> Self {
        Self {
            addr,
            pool: Mutex::new(Vec::new()),
            health: Mutex::new(Health::Healthy { consecutive_failures: 0 }),
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            fast_failures: AtomicU64::new(0),
            last_error: Mutex::new(String::new()),
            last_probe_tick: AtomicU64::new(0),
        }
    }

    fn note_error(&self, message: &str) {
        let mut last = self.last_error.lock().unwrap_or_else(PoisonError::into_inner);
        last.clear();
        last.push_str(message);
    }

    fn last_error_snapshot(&self) -> String {
        self.last_error.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    fn lock_health(&self) -> std::sync::MutexGuard<'_, Health> {
        self.health.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admission decision for one sub-batch. `Ok(())` means "go call
    /// it"; `Err` is an immediate local refusal. When an ejection
    /// backoff has expired, the *calling thread* runs the half-open
    /// probe — and pessimistically re-ejects first, so concurrent
    /// callers fail fast instead of queueing behind the probe.
    fn admit(&self, config: &RouterConfig, probe_ticks: &AtomicU64) -> Result<(), String> {
        let probe_backoff = {
            let mut health = self.lock_health();
            match &*health {
                Health::Healthy { .. } => return Ok(()),
                Health::Ejected { until, backoff } => {
                    if Instant::now() < *until {
                        self.fast_failures.fetch_add(1, Ordering::Relaxed);
                        return Err(format!("backend {} ejected", self.addr));
                    }
                    // Claim the probe: double the backoff in place so
                    // only this thread probes this expiry.
                    let doubled = (*backoff * 2).min(config.backoff_max);
                    *health = Health::Ejected { until: Instant::now() + doubled, backoff: doubled };
                    doubled
                }
            }
        };
        // Half-open probe, outside the lock.
        self.last_probe_tick.store(probe_ticks.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        let probe = HttpClient::connect_with_timeouts(
            &self.addr,
            config.backend_timeout,
            config.backend_timeout,
        )
        .and_then(|mut client| client.get("/healthz"));
        match probe {
            Ok(response) if response.status == 200 => {
                *self.lock_health() = Health::Healthy { consecutive_failures: 0 };
                self.readmissions.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            _ => {
                self.ejections.fetch_add(1, Ordering::Relaxed);
                self.fast_failures.fetch_add(1, Ordering::Relaxed);
                let reason = format!(
                    "backend {} still unhealthy (probe failed, backing off {probe_backoff:?})",
                    self.addr
                );
                self.note_error(&reason);
                Err(reason)
            }
        }
    }

    fn record_success(&self) {
        *self.lock_health() = Health::Healthy { consecutive_failures: 0 };
    }

    fn record_failure(&self, config: &RouterConfig) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let mut health = self.lock_health();
        if let Health::Healthy { consecutive_failures } = &mut *health {
            *consecutive_failures += 1;
            if *consecutive_failures >= config.eject_after {
                *health = Health::Ejected {
                    until: Instant::now() + config.backoff_initial,
                    backoff: config.backoff_initial,
                };
                self.ejections.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn take_pooled(&self) -> Option<HttpClient> {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner).pop()
    }

    fn return_pooled(&self, client: HttpClient) {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < POOL_SIZE {
            pool.push(client);
        }
    }

    fn drop_pool(&self) {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    fn health_label(&self) -> (&'static str, u64) {
        match &*self.lock_health() {
            Health::Healthy { consecutive_failures } => {
                ("healthy", u64::from(*consecutive_failures))
            }
            Health::Ejected { .. } => ("ejected", 0),
        }
    }
}

struct Inner {
    map: ShardMap,
    backends: Vec<Backend>,
    config: RouterConfig,
    metrics: HttpMetrics,
    queue: Bounded<Conn>,
    shutdown: AtomicBool,
    /// Client envelopes handled (single or batch).
    requests_in: AtomicU64,
    /// Sub-batches scattered to backends.
    fanout: AtomicU64,
    /// Individual request entries answered with degradation.
    degraded: AtomicU64,
    /// Trace recorder (None when tracing is disabled).
    traces: Option<Arc<TraceRecorder>>,
    /// Telemetry-history ring (None when history is disabled).
    history: Option<Arc<MetricsHistory>>,
    /// Router-wide half-open probe counter; feeds each backend's
    /// `last_probe_tick`.
    probe_ticks: AtomicU64,
}

struct Conn {
    stream: TcpStream,
}

/// A running router; dropping it shuts down gracefully.
pub struct RouterHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

/// Binds and starts the router over a validated shard map.
pub fn start_router(config: RouterConfig, map: ShardMap) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let backends = map.backends().iter().map(|a| Backend::new(a.clone())).collect();
    let traces = config.trace.enabled.then(|| Arc::new(TraceRecorder::new(config.trace.clone())));
    let history =
        config.history.enabled.then(|| Arc::new(MetricsHistory::new(config.history.clone())));
    let inner = Arc::new(Inner {
        map,
        backends,
        metrics: HttpMetrics::default(),
        queue: Bounded::new(config.queue_depth),
        shutdown: AtomicBool::new(false),
        requests_in: AtomicU64::new(0),
        fanout: AtomicU64::new(0),
        degraded: AtomicU64::new(0),
        traces,
        history,
        probe_ticks: AtomicU64::new(0),
        config,
    });

    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("graphex-route-accept".into())
            .spawn(move || accept_loop(listener, &inner))?
    };
    let worker_handles = (0..workers)
        .map(|i| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("graphex-route-{i}"))
                .spawn(move || worker_loop(&inner))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let sampler = match &inner.history {
        Some(_) => {
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("graphex-route-history".into())
                    .spawn(move || sampler_loop(&inner))?,
            )
        }
        None => None,
    };
    Ok(RouterHandle { addr, inner, acceptor: Some(acceptor), workers: worker_handles, sampler })
}

/// The router-side history sampler (same cadence contract as the
/// backend's: short sleep slices so shutdown joins promptly).
fn sampler_loop(inner: &Inner) {
    let interval = inner.config.history.interval;
    let slice = interval.min(Duration::from_millis(25));
    let mut last = Instant::now();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        if last.elapsed() >= interval {
            sample_history(inner);
            last = Instant::now();
        }
    }
}

/// One router history sample: HTTP-layer counters, fan-out counters,
/// per-backend call/failure/health series, and per-stage percentiles.
fn sample_history(inner: &Inner) {
    let Some(history) = &inner.history else {
        return;
    };
    let mut values: Vec<(String, f64)> = Vec::with_capacity(32);
    let mut push = |key: String, v: f64| values.push((key, v));
    let http = &inner.metrics;
    push("http/requests".into(), http.infer_latency.count() as f64);
    if http.infer_latency.count() > 0 {
        push("http/p50_us".into(), http.infer_latency.quantile(0.50) * 1e6);
        push("http/p99_us".into(), http.infer_latency.quantile(0.99) * 1e6);
    }
    push("http/accepted".into(), http.connections_accepted.load(Ordering::Relaxed) as f64);
    push("http/shed".into(), http.connections_shed.load(Ordering::Relaxed) as f64);
    push("queue/depth".into(), inner.queue.len() as f64);
    push("router/requests_in".into(), inner.requests_in.load(Ordering::Relaxed) as f64);
    push("router/fanout".into(), inner.fanout.load(Ordering::Relaxed) as f64);
    push("router/degraded".into(), inner.degraded.load(Ordering::Relaxed) as f64);
    let mut healthy = 0u64;
    for (shard, backend) in inner.backends.iter().enumerate() {
        let is_healthy = matches!(&*backend.lock_health(), Health::Healthy { .. });
        healthy += u64::from(is_healthy);
        push(format!("backend/{shard}/calls"), backend.calls.load(Ordering::Relaxed) as f64);
        push(
            format!("backend/{shard}/failures"),
            backend.failures.load(Ordering::Relaxed) as f64,
        );
        push(format!("backend/{shard}/healthy"), if is_healthy { 1.0 } else { 0.0 });
    }
    push("router/backends_healthy".into(), healthy as f64);
    if let Some(recorder) = &inner.traces {
        for (stage, count, p50, p99) in recorder.stage_summaries() {
            push(format!("stage/{stage}/count"), count as f64);
            push(format!("stage/{stage}/p50_us"), p50 * 1e6);
            push(format!("stage/{stage}/p99_us"), p99 * 1e6);
        }
    }
    history.record(values);
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// HTTP-layer metrics (what `/metrics` renders; `server_errors()` is
    /// the zero-5xx gate).
    pub fn metrics(&self) -> &HttpMetrics {
        &self.inner.metrics
    }

    /// The shard map this router routes by.
    pub fn map(&self) -> &ShardMap {
        &self.inner.map
    }

    /// Request entries answered with router-level degradation so far.
    pub fn degraded(&self) -> u64 {
        self.inner.degraded.load(Ordering::Relaxed)
    }

    /// The trace recorder, when tracing is enabled.
    pub fn traces(&self) -> Option<&Arc<TraceRecorder>> {
        self.inner.traces.as_ref()
    }

    /// The telemetry-history ring, or `None` when history is disabled.
    pub fn history(&self) -> Option<&Arc<MetricsHistory>> {
        self.inner.history.as_ref()
    }

    /// Takes one history sample immediately (tests and report capture
    /// don't wait out the interval). No-op when history is disabled.
    pub fn sample_history_now(&self) {
        sample_history(&self.inner);
    }

    /// Graceful shutdown: stop accepting, drain admitted connections,
    /// join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        for backend in &self.inner.backends {
            backend.drop_pool();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() || self.sampler.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: &Inner) {
    loop {
        let accepted = listener.accept();
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, _peer)) = accepted else {
            continue;
        };
        inner.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
        if let Err(refused) = inner.queue.try_push(Conn { stream }) {
            inner.metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = refused.stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let _ = http::write_response(
                &mut stream,
                429,
                "text/plain; charset=utf-8",
                b"shed: accept queue full\n",
                false,
                &[("Retry-After", "1")],
            );
        }
    }
    inner.queue.close();
}

fn worker_loop(inner: &Inner) {
    while let Some(conn) = inner.queue.pop() {
        // Same rationale as the backend frontend: a panic costs one
        // connection, never a worker.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(conn.stream, inner);
        }));
        if caught.is_err() {
            inner.metrics.record_response(Endpoint::Other, 500);
        }
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_read_timeout(Some(inner.config.keep_alive_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.keep_alive_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let mut requests_served = 0u64;

    loop {
        let request = match http::read_request(&mut reader, inner.config.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::Closed | ReadError::Io(_)) => return,
            Err(error) => {
                let (status, message) = match &error {
                    ReadError::Bad(what) => (400, format!("bad request: {what}\n")),
                    ReadError::BodyTooLarge { declared, max } => {
                        (413, format!("body of {declared} bytes exceeds cap of {max}\n"))
                    }
                    ReadError::UnsupportedTransferEncoding => {
                        (501, "transfer-encoding not supported; send content-length\n".into())
                    }
                    ReadError::Closed | ReadError::Io(_) => unreachable!("handled above"),
                };
                inner.metrics.record_response(Endpoint::Other, status);
                let _ = http::write_response(
                    &mut write_half,
                    status,
                    "text/plain; charset=utf-8",
                    message.as_bytes(),
                    false,
                    &[],
                );
                return;
            }
        };
        let started = Instant::now();
        requests_served += 1;
        let keep_alive = request.keep_alive()
            && !inner.shutdown.load(Ordering::SeqCst)
            && requests_served < MAX_KEEPALIVE_REQUESTS;
        let routed = route(&request, started, inner);
        let extra: Vec<(&str, &str)> =
            routed.extra_headers.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let written = http::write_response(
            &mut write_half,
            routed.status,
            routed.content_type,
            routed.body.as_bytes(),
            keep_alive,
            &extra,
        );
        inner.metrics.record_response(routed.endpoint, routed.status);
        if routed.endpoint == Endpoint::Infer {
            inner.metrics.infer_latency.record(started.elapsed());
        }
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

struct RoutedResponse {
    endpoint: Endpoint,
    status: u16,
    content_type: &'static str,
    body: String,
    extra_headers: Vec<(&'static str, String)>,
}

impl RoutedResponse {
    fn new(endpoint: Endpoint, status: u16, content_type: &'static str, body: String) -> Self {
        Self { endpoint, status, content_type, body, extra_headers: Vec::new() }
    }
}

fn error_response(endpoint: Endpoint, status: u16, message: impl Into<String>) -> RoutedResponse {
    let body = Json::obj(vec![("error", Json::str(message.into()))]).render();
    RoutedResponse::new(endpoint, status, "application/json", body)
}

fn route(request: &Request, started: Instant, inner: &Inner) -> RoutedResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => RoutedResponse::new(
            Endpoint::Healthz,
            200,
            "text/plain; charset=utf-8",
            "ok\n".into(),
        ),
        ("GET", "/statusz") => RoutedResponse::new(
            Endpoint::Statusz,
            200,
            "application/json",
            statusz(inner).render(),
        ),
        ("GET", "/metrics") => RoutedResponse::new(
            Endpoint::Metrics,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            render_metrics(inner),
        ),
        ("GET", "/debug/traces") => match &inner.traces {
            Some(recorder) => RoutedResponse::new(
                Endpoint::Traces,
                200,
                "application/json",
                recorder.render_debug(request.query.as_deref()),
            ),
            None => error_response(Endpoint::Traces, 404, "tracing is disabled"),
        },
        ("GET", "/debug/history") => match &inner.history {
            Some(history) => RoutedResponse::new(
                Endpoint::History,
                200,
                "application/json",
                history.render_debug(request.query.as_deref()),
            ),
            None => error_response(Endpoint::History, 404, "history is disabled"),
        },
        ("POST", "/v1/infer") => infer(request, started, inner),
        (_, "/healthz" | "/statusz" | "/metrics" | "/debug/traces" | "/debug/history"
            | "/v1/infer") => {
            error_response(Endpoint::Other, 405, "method not allowed")
        }
        _ => error_response(Endpoint::Other, 404, format!("no route for {}", request.path)),
    }
}

/// Router `/statusz`: fan-out counters plus the per-backend health table.
fn statusz(inner: &Inner) -> Json {
    let backends: Vec<Json> = inner
        .backends
        .iter()
        .enumerate()
        .map(|(shard, b)| {
            let (state, consecutive_failures) = b.health_label();
            Json::obj(vec![
                ("shard", Json::uint(shard as u64)),
                ("addr", Json::str(b.addr.clone())),
                ("state", Json::str(state)),
                ("consecutive_failures", Json::uint(consecutive_failures)),
                ("calls", Json::uint(b.calls.load(Ordering::Relaxed))),
                ("failures", Json::uint(b.failures.load(Ordering::Relaxed))),
                ("retries", Json::uint(b.retries.load(Ordering::Relaxed))),
                ("ejections", Json::uint(b.ejections.load(Ordering::Relaxed))),
                ("readmissions", Json::uint(b.readmissions.load(Ordering::Relaxed))),
                ("fast_failures", Json::uint(b.fast_failures.load(Ordering::Relaxed))),
                ("last_error", Json::str(b.last_error_snapshot())),
                ("last_probe_tick", Json::uint(b.last_probe_tick.load(Ordering::Relaxed))),
            ])
        })
        .collect();
    let trace_block =
        inner.traces.as_ref().map_or(Json::Null, |recorder| recorder.statusz_json());
    let history_block =
        inner.history.as_ref().map_or(Json::Null, |history| history.statusz_json());
    Json::obj(vec![
        ("role", Json::str("router")),
        ("shards", Json::uint(u64::from(inner.map.shards()))),
        ("requests_in", Json::uint(inner.requests_in.load(Ordering::Relaxed))),
        ("fanout_subrequests", Json::uint(inner.fanout.load(Ordering::Relaxed))),
        ("degraded", Json::uint(inner.degraded.load(Ordering::Relaxed))),
        ("latency", latency_json(&inner.metrics)),
        ("trace", trace_block),
        ("history", history_block),
        ("queue_depth", Json::uint(inner.queue.len() as u64)),
        ("backends", Json::Arr(backends)),
    ])
}

fn render_metrics(inner: &Inner) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    inner.metrics.render_http_families(inner.queue.len(), &mut out);
    let _ = writeln!(out, "# TYPE graphex_router_requests_total counter");
    let _ = writeln!(
        out,
        "graphex_router_requests_total {}",
        inner.requests_in.load(Ordering::Relaxed)
    );
    let _ = writeln!(out, "# TYPE graphex_router_fanout_total counter");
    let _ =
        writeln!(out, "graphex_router_fanout_total {}", inner.fanout.load(Ordering::Relaxed));
    let _ = writeln!(out, "# TYPE graphex_router_degraded_total counter");
    let _ =
        writeln!(out, "graphex_router_degraded_total {}", inner.degraded.load(Ordering::Relaxed));
    for family in ["calls", "failures", "retries", "ejections", "readmissions"] {
        let _ = writeln!(out, "# TYPE graphex_router_backend_{family}_total counter");
        for (shard, backend) in inner.backends.iter().enumerate() {
            let value = match family {
                "calls" => backend.calls.load(Ordering::Relaxed),
                "failures" => backend.failures.load(Ordering::Relaxed),
                "retries" => backend.retries.load(Ordering::Relaxed),
                "ejections" => backend.ejections.load(Ordering::Relaxed),
                _ => backend.readmissions.load(Ordering::Relaxed),
            };
            let _ = writeln!(
                out,
                "graphex_router_backend_{family}_total{{shard=\"{shard}\"}} {value}"
            );
        }
    }
    let _ = writeln!(out, "# TYPE graphex_router_backend_healthy gauge");
    for (shard, backend) in inner.backends.iter().enumerate() {
        let healthy = matches!(&*backend.lock_health(), Health::Healthy { .. });
        let _ = writeln!(
            out,
            "graphex_router_backend_healthy{{shard=\"{shard}\"}} {}",
            u8::from(healthy)
        );
    }
    if let Some(recorder) = &inner.traces {
        recorder.render_metrics(&mut out);
    }
    out
}

/// What one scattered sub-batch resolved to.
enum SubResult {
    /// Per-entry response objects, in sub-batch order, plus the
    /// backend's envelope snapshot version and the backend's embedded
    /// trace object (present when the router propagated a trace id).
    Ok(Vec<Json>, u64, Option<Json>),
    /// The whole sub-batch degrades with this reason.
    Degraded(String),
}

/// Trace bracket around [`infer_inner`]: checks a span buffer out of the
/// recorder, runs the request, finishes the record (with per-backend
/// breakdowns) and echoes the trace id back to the client.
fn infer(request: &Request, started: Instant, inner: &Inner) -> RoutedResponse {
    let Some(recorder) = &inner.traces else {
        return infer_inner(request, started, inner, &mut StageTrace::disabled(), 0, false).0;
    };
    let header_id = request.header(TRACE_HEADER).and_then(parse_trace_id);
    let propagated = header_id.is_some();
    let (mut trace, id) = recorder.begin(started, header_id);
    let (mut routed, entries, backends) =
        infer_inner(request, started, inner, &mut trace, id, propagated);
    recorder.finish(trace, id, None, routed.status, entries, started.elapsed(), backends);
    routed.extra_headers.push((TRACE_HEADER, format!("{id:016x}")));
    routed
}

fn infer_inner(
    request: &Request,
    started: Instant,
    inner: &Inner,
    trace: &mut StageTrace,
    trace_id: u64,
    embed: bool,
) -> (RoutedResponse, usize, Vec<BackendTrace>) {
    let parse_start = trace.clock();
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return (error_response(Endpoint::Infer, 400, "body is not valid UTF-8"), 0, Vec::new());
    };
    let envelope = match json::parse(text) {
        Ok(value) => value,
        Err(e) => {
            return (error_response(Endpoint::Infer, 400, format!("invalid JSON: {e}")), 0, Vec::new())
        }
    };
    inner.requests_in.fetch_add(1, Ordering::Relaxed);

    // Validate with the backend's own decoder so the router 400s exactly
    // what a backend would — a forwarded entry is never refused
    // downstream, which would otherwise surface as a degradation.
    let (entries, batch): (Vec<&Json>, bool) = match envelope.get("requests") {
        None => (vec![&envelope], false),
        Some(Json::Arr(list)) => {
            if list.len() > MAX_BATCH {
                return (
                    error_response(
                        Endpoint::Infer,
                        400,
                        format!("batch of {} exceeds cap of {MAX_BATCH}", list.len()),
                    ),
                    0,
                    Vec::new(),
                );
            }
            (list.iter().collect(), true)
        }
        Some(_) => {
            return (
                error_response(Endpoint::Infer, 400, "\"requests\" must be an array"),
                0,
                Vec::new(),
            )
        }
    };
    let mut decoded = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        match decode_one(entry) {
            Ok(d) => decoded.push(d),
            Err(message) => {
                let message =
                    if batch { format!("requests[{i}]: {message}") } else { message };
                return (error_response(Endpoint::Infer, 400, message), 0, Vec::new());
            }
        }
    }
    trace.record(Stage::Parse, parse_start);

    // Scatter: group entry indices by owning shard, preserving order.
    let shards = inner.map.shards() as usize;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, d) in decoded.iter().enumerate() {
        groups[inner.map.shard_for_leaf(d.leaf)].push(i);
    }
    let involved: Vec<usize> = (0..shards).filter(|s| !groups[*s].is_empty()).collect();

    let mut results: Vec<Option<SubResult>> = Vec::new();
    results.resize_with(shards, || None);
    // The forwarded trace id, as the backends will see it. The header
    // rides on every sub-request so backend records correlate with the
    // router record, and backends answer with an embedded breakdown.
    let forwarded_id = trace.is_enabled().then(|| format!("{trace_id:016x}"));
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(involved.len());
        for &shard in &involved {
            let body = Json::obj(vec![(
                "requests",
                Json::Arr(groups[shard].iter().map(|&i| entries[i].clone()).collect()),
            )])
            .render();
            let backend = &inner.backends[shard];
            let expected = groups[shard].len();
            let config = &inner.config;
            let probe_ticks = &inner.probe_ticks;
            let trace_header = forwarded_id.as_deref();
            inner.fanout.fetch_add(1, Ordering::Relaxed);
            // The span clock starts at the caller's dispatch point and
            // stops when the join returns, so a Fanout span covers the
            // whole window the router held this request open for the
            // shard — spawn and scheduling latency included, not just
            // the wire time the dispatcher thread itself observed.
            let dispatched = Instant::now();
            handles.push((
                shard,
                dispatched,
                scope.spawn(move || {
                    dispatch(backend, config, probe_ticks, &body, expected, trace_header)
                }),
            ));
        }
        for (shard, dispatched, handle) in handles {
            results[shard] = Some(match handle.join() {
                Ok(sub) => {
                    // One Fanout span per involved shard (detail = shard
                    // index), recorded post-join: StageTrace is owned by
                    // this thread, never shared with the dispatchers.
                    trace.record_span(Stage::Fanout, dispatched, dispatched.elapsed(), shard as u64);
                    sub
                }
                Err(_) => SubResult::Degraded("router dispatch panicked".into()),
            });
        }
    });

    // Gather: merge per-entry responses back into the caller's order.
    let mut merged: Vec<Option<Json>> = vec![None; decoded.len()];
    let mut snapshot_version = 0u64;
    let mut backend_traces: Vec<BackendTrace> = Vec::new();
    for shard in involved {
        let result = results[shard].take().expect("scattered shard has a result");
        match result {
            SubResult::Ok(responses, version, sub_trace) => {
                snapshot_version = snapshot_version.max(version);
                if let Some(sub_trace) = &sub_trace {
                    if let Some(parsed) =
                        backend_trace_from_json(shard, &inner.backends[shard].addr, sub_trace)
                    {
                        backend_traces.push(parsed);
                    }
                }
                for (&i, response) in groups[shard].iter().zip(responses) {
                    merged[i] = Some(response);
                }
            }
            SubResult::Degraded(reason) => {
                inner.degraded.fetch_add(groups[shard].len() as u64, Ordering::Relaxed);
                for &i in &groups[shard] {
                    merged[i] = Some(degraded_entry(decoded[i].id, shard, &reason));
                }
            }
        }
    }
    let merged: Vec<Json> = merged
        .into_iter()
        .map(|r| r.expect("every entry was grouped onto exactly one shard"))
        .collect();

    let serialize_start = trace.clock();
    let mut body = if batch {
        Json::obj(vec![
            ("responses", Json::Arr(merged)),
            ("snapshot_version", Json::uint(snapshot_version)),
        ])
    } else {
        merged.into_iter().next().expect("single request decoded")
    };
    if trace.is_enabled() {
        if let Json::Obj(members) = &mut body {
            members.push(("trace_id".into(), Json::str(format!("{trace_id:016x}"))));
            if embed {
                members
                    .push(("trace".into(), trace_json_inline(trace, trace_id, started.elapsed())));
            }
        }
    }
    let rendered = body.render();
    trace.record(Stage::Serialize, serialize_start);
    (
        RoutedResponse::new(Endpoint::Infer, 200, "application/json", rendered),
        decoded.len(),
        backend_traces,
    )
}

/// The degraded per-request answer: same shape as a served response so
/// batch consumers index it uniformly, with the outcome/source labels
/// marking router-level unavailability.
fn degraded_entry(id: Option<u64>, shard: usize, reason: &str) -> Json {
    let mut members = vec![
        ("outcome", Json::str(OUTCOME_BACKEND_UNAVAILABLE)),
        ("source", Json::str(SOURCE_ROUTER_DEGRADED)),
        ("keyphrases", Json::Arr(Vec::new())),
        ("snapshot_version", Json::uint(0)),
        ("shard", Json::uint(shard as u64)),
        ("error", Json::str(reason)),
    ];
    if let Some(id) = id {
        // Same >2^53 decimal-string rule as a served response.
        let id_json = if id <= 1 << 53 { Json::uint(id) } else { Json::str(id.to_string()) };
        members.insert(0, ("id", id_json));
    }
    Json::obj(members)
}

/// Sends one sub-batch to `backend` with bounded retries, validating the
/// response down to per-entry objects. Every exit path updates the
/// health state machine.
fn dispatch(
    backend: &Backend,
    config: &RouterConfig,
    probe_ticks: &AtomicU64,
    body: &str,
    expected: usize,
    trace_header: Option<&str>,
) -> SubResult {
    if let Err(reason) = backend.admit(config, probe_ticks) {
        return SubResult::Degraded(reason);
    }
    let mut last_error = String::new();
    for attempt in 0..=config.retries {
        if attempt > 0 {
            backend.retries.fetch_add(1, Ordering::Relaxed);
        }
        backend.calls.fetch_add(1, Ordering::Relaxed);
        match dispatch_once(backend, config, body, expected, attempt > 0, trace_header) {
            Ok((responses, version, sub_trace)) => {
                backend.record_success();
                return SubResult::Ok(responses, version, sub_trace);
            }
            Err(reason) => {
                backend.record_failure(config);
                backend.note_error(&reason);
                last_error = reason;
                // Ejection mid-retry-loop stops further attempts: the
                // state machine has spoken.
                if matches!(&*backend.lock_health(), Health::Ejected { .. }) {
                    break;
                }
            }
        }
    }
    SubResult::Degraded(format!("backend {}: {last_error}", backend.addr))
}

/// One attempt: pooled connection first (unless `fresh`), falling back
/// to a new connect. A pooled connection that fails is simply dropped —
/// the backend may have closed it between requests (keep-alive cap,
/// restart), which must never surface to the client while retries
/// remain.
fn dispatch_once(
    backend: &Backend,
    config: &RouterConfig,
    body: &str,
    expected: usize,
    fresh: bool,
    trace_header: Option<&str>,
) -> Result<(Vec<Json>, u64, Option<Json>), String> {
    let mut client = match if fresh { None } else { backend.take_pooled() } {
        Some(client) => client,
        None => {
            let mut client = HttpClient::connect_with_timeouts(
                &backend.addr,
                config.backend_timeout,
                config.backend_timeout,
            )
            .map_err(|e| format!("connect: {e}"))?;
            client.set_max_response_bytes(config.max_response_bytes);
            client
        }
    };
    let response = match trace_header {
        Some(id) => client.post_json_with_headers("/v1/infer", body, &[(TRACE_HEADER, id)]),
        None => client.post_json("/v1/infer", body),
    }
    .map_err(|e| format!("call: {e}"))?;
    let reusable =
        response.header("connection").map_or(true, |v| !v.eq_ignore_ascii_case("close"));
    if response.status != 200 {
        return Err(format!("HTTP {}", response.status));
    }
    let parsed = json::parse(&response.text())
        .map_err(|e| format!("unparsable backend response: {e}"))?;
    let responses = parsed
        .get("responses")
        .and_then(Json::as_arr)
        .ok_or("backend response missing \"responses\"")?;
    if responses.len() != expected {
        // A shard-map/backend mismatch shows up exactly here: the
        // backend answered a different number of entries than asked.
        return Err(format!(
            "backend answered {} responses for {expected} requests (mismatched shard map?)",
            responses.len()
        ));
    }
    let version = parsed.get("snapshot_version").and_then(Json::as_u64).unwrap_or(0);
    let out = responses.to_vec();
    // The backend's embedded breakdown (present exactly when this call
    // carried the trace header) rides back for the router's record.
    let sub_trace = parsed.get("trace").cloned();
    if reusable {
        backend.return_pooled(client);
    }
    Ok((out, version, sub_trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> RouterConfig {
        RouterConfig {
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_millis(400),
            eject_after: 2,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn ejection_after_k_consecutive_failures_then_fast_fail() {
        // Point at a dead port: record_failure drives the state machine
        // without any network.
        let backend = Backend::new("127.0.0.1:1".into());
        let config = test_config();
        let ticks = AtomicU64::new(0);
        assert!(backend.admit(&config, &ticks).is_ok());
        backend.record_failure(&config);
        assert!(backend.admit(&config, &ticks).is_ok(), "one failure is not ejection");
        backend.record_failure(&config);
        assert!(matches!(&*backend.lock_health(), Health::Ejected { .. }));
        assert_eq!(backend.ejections.load(Ordering::Relaxed), 1);
        assert!(backend.admit(&config, &ticks).is_err(), "ejected backends fail fast");
        assert_eq!(backend.fast_failures.load(Ordering::Relaxed), 1);
        assert_eq!(
            backend.last_probe_tick.load(Ordering::Relaxed),
            0,
            "fast-fail admits never probe"
        );
    }

    #[test]
    fn expired_backoff_probes_and_reejects_with_doubled_backoff() {
        let backend = Backend::new("127.0.0.1:1".into()); // nothing listens
        let config = test_config();
        let ticks = AtomicU64::new(0);
        backend.record_failure(&config);
        backend.record_failure(&config);
        std::thread::sleep(config.backoff_initial + Duration::from_millis(20));
        // Backoff expired → this call runs the half-open probe, which
        // fails (dead port) → re-ejected with doubled backoff.
        assert!(backend.admit(&config, &ticks).is_err());
        assert_eq!(backend.readmissions.load(Ordering::Relaxed), 0);
        assert_eq!(backend.ejections.load(Ordering::Relaxed), 2);
        assert_eq!(backend.last_probe_tick.load(Ordering::Relaxed), 1, "probe consumed a tick");
        assert!(
            backend.last_error_snapshot().contains("probe failed"),
            "failed probe leaves a last_error"
        );
        match &*backend.lock_health() {
            Health::Ejected { backoff, .. } => {
                assert_eq!(*backoff, config.backoff_initial * 2);
            }
            other => panic!("expected ejected, got {other:?}"),
        };
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let backend = Backend::new("127.0.0.1:1".into());
        let config = test_config();
        backend.record_failure(&config);
        backend.record_success();
        backend.record_failure(&config);
        assert!(
            matches!(&*backend.lock_health(), Health::Healthy { consecutive_failures: 1 }),
            "failures must be consecutive to eject"
        );
    }

    #[test]
    fn degraded_entry_shape_and_id_rules() {
        let small = degraded_entry(Some(7), 2, "down");
        assert_eq!(small.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(
            small.get("outcome").unwrap().as_str(),
            Some(OUTCOME_BACKEND_UNAVAILABLE)
        );
        assert_eq!(small.get("source").unwrap().as_str(), Some(SOURCE_ROUTER_DEGRADED));
        assert_eq!(small.get("keyphrases").unwrap().as_arr().unwrap().len(), 0);
        let big = degraded_entry(Some(u64::MAX), 0, "down");
        assert_eq!(big.get("id").unwrap().as_str(), Some(u64::MAX.to_string().as_str()));
        assert!(degraded_entry(None, 0, "down").get("id").is_none());
    }
}

//! The shard map: which backend serves which leaf residue class.
//!
//! Same plain-text `key value` philosophy as the registry `MANIFEST` and
//! the pipeline `BUILDINFO` (forward-compatible, diffable, no codec):
//!
//! ```text
//! graphex-shardmap 1
//! shards 3
//! backend 0 127.0.0.1:7001
//! backend 1 127.0.0.1:7002
//! backend 2 127.0.0.1:7003
//! ```
//!
//! Routing is the same arithmetic the pipeline uses for emission
//! (`graphex_pipeline::shard_of`): leaf `l` lives on backend
//! `l % shards`. The map is valid only when every index in `0..shards`
//! names exactly one backend — a partial map would silently blackhole
//! residue classes, so parsing rejects it.

use std::path::Path;

/// A validated shard map: `backends[i]` serves every leaf with
/// `leaf % len == i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    backends: Vec<String>,
}

impl ShardMap {
    /// A map over backends listed in shard order (index = position).
    pub fn from_backends(backends: Vec<String>) -> Result<Self, String> {
        if backends.is_empty() {
            return Err("shard map needs at least one backend".into());
        }
        for (i, addr) in backends.iter().enumerate() {
            if addr.trim().is_empty() {
                return Err(format!("backend {i} has an empty address"));
            }
        }
        Ok(Self { backends })
    }

    /// Number of shards (== number of backends).
    pub fn shards(&self) -> u32 {
        self.backends.len() as u32
    }

    /// Backend addresses in shard order.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// The shard index owning `leaf`.
    pub fn shard_for_leaf(&self, leaf: u32) -> usize {
        (leaf % self.shards()) as usize
    }

    /// The backend address owning `leaf`.
    pub fn backend_for_leaf(&self, leaf: u32) -> &str {
        &self.backends[self.shard_for_leaf(leaf)]
    }

    /// Serializes to shard-map text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graphex-shardmap 1");
        let _ = writeln!(out, "shards {}", self.backends.len());
        for (i, addr) in self.backends.iter().enumerate() {
            let _ = writeln!(out, "backend {i} {addr}");
        }
        out
    }

    /// Parses shard-map text, requiring every shard index exactly once.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut declared: Option<usize> = None;
        let mut versioned = false;
        let mut slots: Vec<Option<String>> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            let fail = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            match key {
                "graphex-shardmap" => {
                    if value.split_whitespace().next() != Some("1") {
                        return Err(fail("unsupported shardmap version"));
                    }
                    versioned = true;
                }
                "shards" => {
                    let n: usize = value.parse().map_err(|_| fail("bad shard count"))?;
                    if n == 0 {
                        return Err(fail("shard count must be at least 1"));
                    }
                    declared = Some(n);
                    slots.resize(n, None);
                }
                "backend" => {
                    let n = declared.ok_or_else(|| fail("backend before shards line"))?;
                    let (index, addr) =
                        value.split_once(' ').ok_or_else(|| fail("bad backend line"))?;
                    let index: usize = index.parse().map_err(|_| fail("bad backend index"))?;
                    if index >= n {
                        return Err(fail("backend index out of range"));
                    }
                    if addr.trim().is_empty() {
                        return Err(fail("empty backend address"));
                    }
                    if slots[index].replace(addr.trim().to_string()).is_some() {
                        return Err(fail("duplicate backend index"));
                    }
                }
                _ => {} // forward-compatible
            }
        }
        if !versioned {
            return Err("missing graphex-shardmap header".into());
        }
        let declared = declared.ok_or("missing shards line")?;
        let mut backends = Vec::with_capacity(declared);
        for (i, slot) in slots.into_iter().enumerate() {
            backends.push(slot.ok_or_else(|| format!("shard {i} has no backend"))?);
        }
        Self::from_backends(backends)
    }

    /// Reads and parses a shard-map file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardMap {
        ShardMap::from_backends(vec![
            "127.0.0.1:7001".into(),
            "127.0.0.1:7002".into(),
            "127.0.0.1:7003".into(),
        ])
        .unwrap()
    }

    #[test]
    fn render_parse_roundtrip() {
        let map = sample();
        assert_eq!(ShardMap::parse(&map.render()).unwrap(), map);
        // Out-of-order backend lines are fine; index wins.
        let shuffled = "graphex-shardmap 1\nshards 2\nbackend 1 b\nbackend 0 a\n";
        let map = ShardMap::parse(shuffled).unwrap();
        assert_eq!(map.backends(), ["a", "b"]);
    }

    #[test]
    fn routing_is_modular() {
        let map = sample();
        assert_eq!(map.shard_for_leaf(4000), 4000 % 3);
        assert_eq!(map.backend_for_leaf(7), map.backends()[1]);
        for leaf in 0..100u32 {
            assert_eq!(map.shard_for_leaf(leaf), (leaf % 3) as usize);
        }
    }

    #[test]
    fn rejects_incomplete_or_malformed_maps() {
        for (bad, why) in [
            ("", "missing header"),
            ("graphex-shardmap 2\nshards 1\nbackend 0 a\n", "bad version"),
            ("graphex-shardmap 1\n", "missing shards"),
            ("graphex-shardmap 1\nshards 0\n", "zero shards"),
            ("graphex-shardmap 1\nshards 2\nbackend 0 a\n", "missing shard 1"),
            ("graphex-shardmap 1\nshards 1\nbackend 0 a\nbackend 0 b\n", "duplicate"),
            ("graphex-shardmap 1\nshards 1\nbackend 5 a\n", "out of range"),
            ("graphex-shardmap 1\nbackend 0 a\nshards 1\n", "backend before shards"),
            ("graphex-shardmap 1\nshards 1\nbackend 0  \n", "empty address"),
        ] {
            assert!(ShardMap::parse(bad).is_err(), "accepted {why}: {bad:?}");
        }
    }

    #[test]
    fn unknown_keys_and_comments_are_ignored() {
        let text = "# local cluster\ngraphex-shardmap 1\nshards 1\nbackend 0 a\nfuture x y\n";
        assert_eq!(ShardMap::parse(text).unwrap().backends(), ["a"]);
    }
}

//! The network edge: a fixed worker pool over `std::net::TcpListener`.
//!
//! ```text
//! clients ──► acceptor ──► Bounded accept queue ──► worker pool ──► ServingApi
//!                │  full?                │ drained on shutdown
//!                └─► HTTP 429 (shed)     └─► per-request deadline → 503
//! ```
//!
//! One acceptor thread admits connections into a bounded queue; a full
//! queue is **load shed** — the acceptor answers `429 Too Many Requests`
//! and closes, so overload degrades into fast refusals instead of
//! unbounded buffering or hangs. Workers pop connections and speak
//! HTTP/1.1 keep-alive until the peer closes, errors, idles past the
//! read timeout, or shutdown begins. Requests that waited past the
//! configured deadline are answered `503` without running inference.
//!
//! The model behind the [`ServingApi`] hot-swaps under live traffic: each
//! inference resolves the current snapshot through the api's `ModelWatch`,
//! so a registry publish/rollback propagates to the next request with
//! in-flight requests finishing on the model they started with.
//!
//! [`ServerHandle::shutdown`] is graceful: stop accepting, drain every
//! admitted connection, answer in-flight requests, then join all threads.

use crate::history::{HistoryConfig, MetricsHistory};
use crate::http::{self, ReadError, Request};
use crate::json::{self, Json};
use crate::metrics::{render_overlay_families, Endpoint, HttpMetrics};
use crate::queue::Bounded;
use crate::trace::{parse_trace_id, trace_json_inline, TraceConfig, TraceRecorder, TRACE_HEADER};
use graphex_core::{Alignment, InferRequest, KeyphraseRecord, LeafId, Stage, StageTrace};
use graphex_serving::{
    FleetError, OverlayError, OverlayStatus, ServeSource, Served, ServingApi, TenantFleet,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Most requests accepted in one `/v1/infer` batch envelope.
pub const MAX_BATCH: usize = 1024;

/// Requests served on one keep-alive connection before the server closes
/// it (`Connection: close` on the last response). Thread-per-connection
/// means a chatty peer pins a worker; this cap bounds that pinning so
/// connections waiting in the accept queue are never starved forever —
/// a reconnect immediately re-admits the peer.
pub const MAX_KEEPALIVE_REQUESTS: u64 = 1024;

/// Frontend tuning. `Default` is sized for a laptop demo; production
/// callers set every field explicitly.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Accept-queue capacity; connections beyond it are shed with 429.
    pub queue_depth: usize,
    /// Cap on a request body's declared `Content-Length` (413 beyond it).
    pub max_body_bytes: usize,
    /// Per-request deadline over server-induced delay: accept-queue wait
    /// (charged to a connection's first request) plus processing; the
    /// peer's own think-time between requests is never counted. `None`
    /// disables. An expired deadline answers 503 without running
    /// inference.
    pub deadline: Option<Duration>,
    /// Idle read timeout on keep-alive connections; also bounds how long
    /// shutdown waits on an idle peer.
    pub keep_alive_timeout: Duration,
    /// Flight-recorder knobs; `trace.enabled = false` turns the whole
    /// trace layer off (no ids, no rings, no clock reads).
    pub trace: TraceConfig,
    /// Telemetry-history knobs; `history.enabled = false` spawns no
    /// sampler thread and 404s `/debug/history`.
    pub history: HistoryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            deadline: Some(Duration::from_secs(2)),
            keep_alive_timeout: Duration::from_secs(5),
            trace: TraceConfig::default(),
            history: HistoryConfig::default(),
        }
    }
}

/// One admitted connection, stamped for deadline accounting.
struct Conn {
    stream: TcpStream,
    enqueued_at: Instant,
}

/// What answers inference behind this frontend: one serving api, or a
/// tenant fleet multiplexed by request path (`POST /v1/t/<name>/infer`;
/// the legacy un-prefixed path serves the fleet's default tenant).
pub enum Backend {
    Single(Arc<ServingApi>),
    Fleet(Arc<TenantFleet>),
}

impl Backend {
    /// Connection-level shed (429 before any routing): in single mode
    /// the one api's counter takes it; in fleet mode no tenant can be
    /// blamed yet, so only the HTTP-layer `connections_shed` counter
    /// (recorded by the caller) sees it.
    fn note_shed(&self) {
        if let Backend::Single(api) = self {
            api.note_shed();
        }
    }
}

struct Inner {
    backend: Backend,
    metrics: HttpMetrics,
    queue: Bounded<Conn>,
    shutdown: AtomicBool,
    config: ServerConfig,
    /// The flight recorder; `None` when tracing is disabled.
    traces: Option<Arc<TraceRecorder>>,
    /// The telemetry-history ring; `None` when history is disabled.
    history: Option<Arc<MetricsHistory>>,
}

/// A running server; dropping it shuts down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

/// Binds and starts the frontend over a shared [`ServingApi`].
pub fn start(config: ServerConfig, api: Arc<ServingApi>) -> std::io::Result<ServerHandle> {
    start_backend(config, Backend::Single(api))
}

/// Binds and starts the frontend over a [`TenantFleet`]: requests to
/// `POST /v1/t/<tenant>/infer` route (and lazily admit) per tenant,
/// the legacy `POST /v1/infer` path serves the fleet's default tenant,
/// `/statusz` carries the fleet table, and `/metrics` exports
/// per-tenant counters.
pub fn start_fleet(config: ServerConfig, fleet: Arc<TenantFleet>) -> std::io::Result<ServerHandle> {
    start_backend(config, Backend::Fleet(fleet))
}

fn start_backend(config: ServerConfig, backend: Backend) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let traces = config
        .trace
        .enabled
        .then(|| Arc::new(TraceRecorder::new(config.trace.clone())));
    let history = config
        .history
        .enabled
        .then(|| Arc::new(MetricsHistory::new(config.history.clone())));
    let inner = Arc::new(Inner {
        backend,
        metrics: HttpMetrics::default(),
        queue: Bounded::new(config.queue_depth),
        shutdown: AtomicBool::new(false),
        config,
        traces,
        history,
    });

    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("graphex-accept".into())
            .spawn(move || accept_loop(listener, &inner))?
    };
    let worker_handles = (0..workers)
        .map(|i| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("graphex-worker-{i}"))
                .spawn(move || worker_loop(&inner))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let sampler = match &inner.history {
        Some(_) => {
            let inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("graphex-history".into())
                    .spawn(move || sampler_loop(&inner))?,
            )
        }
        None => None,
    };

    Ok(ServerHandle { addr, inner, acceptor: Some(acceptor), workers: worker_handles, sampler })
}

/// The history sampler: one sample per configured interval until
/// shutdown. Sleeps in short slices so shutdown joins promptly even
/// with a multi-second interval.
fn sampler_loop(inner: &Inner) {
    let interval = inner.config.history.interval;
    let slice = interval.min(Duration::from_millis(25));
    let mut last = Instant::now();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        if last.elapsed() >= interval {
            sample_history(inner);
            last = Instant::now();
        }
    }
}

/// Collects one history sample from the backend counters, the HTTP
/// metrics, and (when tracing is on) the per-stage histograms, and
/// records it into the ring. All reads are the same relaxed atomic
/// loads `/metrics` performs — the request path is never touched.
fn sample_history(inner: &Inner) {
    let Some(history) = &inner.history else {
        return;
    };
    let mut values: Vec<(String, f64)> = Vec::with_capacity(48);
    let push = |values: &mut Vec<(String, f64)>, key: &str, v: f64| {
        values.push((key.to_string(), v));
    };
    // HTTP layer: end-to-end latency histogram plus connection counters.
    let http = &inner.metrics;
    push(&mut values, "http/requests", http.infer_latency.count() as f64);
    if http.infer_latency.count() > 0 {
        push(&mut values, "http/p50_us", http.infer_latency.quantile(0.50) * 1e6);
        push(&mut values, "http/p99_us", http.infer_latency.quantile(0.99) * 1e6);
    }
    push(
        &mut values,
        "http/accepted",
        http.connections_accepted.load(Ordering::Relaxed) as f64,
    );
    push(&mut values, "http/shed", http.connections_shed.load(Ordering::Relaxed) as f64);
    push(&mut values, "queue/depth", inner.queue.len() as f64);
    // Serving layer: cumulative counters (monotone across hot-swaps; the
    // fleet folds evicted tenants' counters, so these survive eviction).
    match &inner.backend {
        Backend::Single(api) => {
            let stats = api.stats();
            serve_series(&mut values, "", &stats);
            if let Some(status) = api.overlay_status() {
                push(&mut values, "overlay/depth", status.depth as f64);
                push(&mut values, "overlay/seq", status.seq as f64);
            }
        }
        Backend::Fleet(fleet) => {
            let tenants = fleet.list();
            push(
                &mut values,
                "fleet/resident",
                tenants.iter().filter(|t| t.resident).count() as f64,
            );
            push(
                &mut values,
                "fleet/resident_bytes",
                tenants.iter().map(|t| t.resident_bytes).sum::<u64>() as f64,
            );
            for t in &tenants {
                serve_series(&mut values, &format!("tenant/{}/", t.name), &t.stats);
                push(
                    &mut values,
                    &format!("tenant/{}/resident", t.name),
                    if t.resident { 1.0 } else { 0.0 },
                );
            }
        }
    }
    // Trace layer: per-stage latency percentiles.
    if let Some(recorder) = &inner.traces {
        for (stage, count, p50, p99) in recorder.stage_summaries() {
            push(&mut values, &format!("stage/{stage}/count"), count as f64);
            push(&mut values, &format!("stage/{stage}/p50_us"), p50 * 1e6);
            push(&mut values, &format!("stage/{stage}/p99_us"), p99 * 1e6);
        }
    }
    history.record(values);
}

/// The per-[`ServeStats`] series (shared by single mode, with an empty
/// prefix, and fleet mode, prefixed `tenant/<name>/`).
fn serve_series(values: &mut Vec<(String, f64)>, prefix: &str, stats: &graphex_serving::ServeStats) {
    let mut push = |key: &str, v: f64| values.push((format!("{prefix}{key}"), v));
    push("serve/requests", stats.outcomes.total() as f64);
    push("serve/store_hits", stats.store_hits as f64);
    push("serve/read_throughs", stats.read_throughs as f64);
    push("serve/shed", stats.shed as f64);
    push("serve/deadline_exceeded", stats.deadline_exceeded as f64);
    push("serve/in_flight", stats.in_flight as f64);
    push("model/snapshot_version", stats.snapshot_version as f64);
    push("model/swaps", stats.model_swaps as f64);
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving facade behind a single-api frontend (counter
    /// access), or `None` on a fleet-mode server — per-tenant apis live
    /// behind [`ServerHandle::fleet`].
    pub fn api(&self) -> Option<&Arc<ServingApi>> {
        match &self.inner.backend {
            Backend::Single(api) => Some(api),
            Backend::Fleet(_) => None,
        }
    }

    /// The tenant fleet behind a fleet-mode frontend.
    pub fn fleet(&self) -> Option<&Arc<TenantFleet>> {
        match &self.inner.backend {
            Backend::Single(_) => None,
            Backend::Fleet(fleet) => Some(fleet),
        }
    }

    /// HTTP-layer metrics (what `/metrics` renders).
    pub fn metrics(&self) -> &HttpMetrics {
        &self.inner.metrics
    }

    /// The flight recorder, or `None` when tracing is disabled.
    pub fn traces(&self) -> Option<&Arc<TraceRecorder>> {
        self.inner.traces.as_ref()
    }

    /// The telemetry-history ring, or `None` when history is disabled.
    pub fn history(&self) -> Option<&Arc<MetricsHistory>> {
        self.inner.history.as_ref()
    }

    /// Takes one history sample immediately (in addition to the periodic
    /// sampler), so tests and report capture don't have to wait out the
    /// interval. No-op when history is disabled.
    pub fn sample_history_now(&self) {
        sample_history(&self.inner);
    }

    /// Graceful shutdown: stop accepting, drain admitted connections,
    /// finish in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor closed the queue on exit; workers drain it and stop.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() || self.sampler.is_some() {
            self.shutdown_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: &Inner) {
    loop {
        let accepted = listener.accept();
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, _peer)) = accepted else {
            // Transient accept failure (EMFILE, aborted handshake): keep
            // serving; a poisoned listener would spin, but every error
            // std reports here is per-connection, not per-listener.
            continue;
        };
        inner.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
        let conn = Conn { stream, enqueued_at: Instant::now() };
        if let Err(refused) = inner.queue.try_push(conn) {
            // Admission control: the queue is full (or shutting down) —
            // shed with 429 instead of buffering or hanging.
            inner.backend.note_shed();
            inner.metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = refused.stream;
            // The refusal is ~200 bytes into a fresh connection's empty
            // send buffer, so this write practically never blocks; the
            // short timeout is a backstop so a pathological peer cannot
            // stall the accept loop during the very overload that causes
            // sheds.
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let _ = http::write_response(
                &mut stream,
                429,
                "text/plain; charset=utf-8",
                b"shed: accept queue full\n",
                false,
                &[("Retry-After", "1")],
            );
        }
    }
    inner.queue.close();
}

fn worker_loop(inner: &Inner) {
    while let Some(conn) = inner.queue.pop() {
        // A panic must cost one connection, not one worker: an unwinding
        // thread would silently shrink the pool toward a server that
        // accepts and queues but never serves. Connection state is owned
        // by the call, so unwind safety holds; api-side invariants are
        // restored by its own guards (LeaderGuard, InFlightGuard).
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(conn, inner);
        }));
        if caught.is_err() {
            inner.metrics.record_response(Endpoint::Other, 500);
        }
    }
}

fn handle_connection(conn: Conn, inner: &Inner) {
    let Conn { stream, enqueued_at } = conn;
    // Server-induced delay so far: time spent waiting in the accept
    // queue. The first request's deadline budget is charged this wait
    // (plus its own processing) but NOT the peer's think-time between
    // connecting and sending — an idle client on an idle server must
    // never eat its own deadline.
    let queue_wait = enqueued_at.elapsed();
    let _ = stream.set_read_timeout(Some(inner.config.keep_alive_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.keep_alive_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let mut requests_served = 0u64;

    loop {
        let request = match http::read_request(&mut reader, inner.config.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(_)) => return, // includes idle timeouts
            Err(error) => {
                // Malformed input: answer the right 4xx/5xx and close —
                // a desynced byte stream cannot be trusted for reuse.
                let (status, message) = match &error {
                    ReadError::Bad(what) => (400, format!("bad request: {what}\n")),
                    ReadError::BodyTooLarge { declared, max } => {
                        (413, format!("body of {declared} bytes exceeds cap of {max}\n"))
                    }
                    ReadError::UnsupportedTransferEncoding => {
                        (501, "transfer-encoding not supported; send content-length\n".into())
                    }
                    ReadError::Closed | ReadError::Io(_) => unreachable!("handled above"),
                };
                inner.metrics.record_response(Endpoint::Other, status);
                let _ = http::write_response(
                    &mut write_half,
                    status,
                    "text/plain; charset=utf-8",
                    message.as_bytes(),
                    false,
                    &[],
                );
                return;
            }
        };

        // Deadline basis: read completion, back-dated by the accept-queue
        // wait for the connection's first request — so queue pressure
        // counts against the budget but client think-time never does.
        let first_request = requests_served == 0;
        let started = if first_request {
            Instant::now().checked_sub(queue_wait).unwrap_or_else(Instant::now)
        } else {
            Instant::now()
        };
        requests_served += 1;

        let draining = inner.shutdown.load(Ordering::SeqCst);
        let keep_alive = request.keep_alive()
            && !draining
            && requests_served < MAX_KEEPALIVE_REQUESTS;
        let charged_wait = if first_request { queue_wait } else { Duration::ZERO };
        let outcome = route(&request, started, charged_wait, inner);
        let extra: Vec<(&str, &str)> =
            outcome.extra_headers.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let written = http::write_response(
            &mut write_half,
            outcome.status,
            outcome.content_type,
            outcome.body.as_bytes(),
            keep_alive,
            &extra,
        );
        inner.metrics.record_response(outcome.endpoint, outcome.status);
        if outcome.endpoint == Endpoint::Infer {
            inner.metrics.infer_latency.record(started.elapsed());
        }
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

struct Routed {
    endpoint: Endpoint,
    status: u16,
    content_type: &'static str,
    body: String,
    extra_headers: Vec<(&'static str, String)>,
}

impl Routed {
    fn new(endpoint: Endpoint, status: u16, content_type: &'static str, body: String) -> Self {
        Self { endpoint, status, content_type, body, extra_headers: Vec::new() }
    }

    fn json(endpoint: Endpoint, status: u16, value: &Json) -> Self {
        Self::new(endpoint, status, "application/json", value.render())
    }

    fn error(endpoint: Endpoint, status: u16, message: impl Into<String>) -> Self {
        Self::json(endpoint, status, &Json::obj(vec![("error", Json::str(message.into()))]))
    }
}

/// Splits a tenant-scoped action path: `/v1/t/<tenant>/<action>` →
/// `Some(tenant)` (e.g. `tenant_action(path, "infer")`,
/// `tenant_action(path, "overlay/journal")`). The tenant segment is not
/// validated here — the fleet refuses bad names with a 404.
fn tenant_action<'p>(path: &'p str, action: &str) -> Option<&'p str> {
    let tenant =
        path.strip_prefix("/v1/t/")?.strip_suffix(action)?.strip_suffix('/')?;
    (!tenant.is_empty() && !tenant.contains('/')).then_some(tenant)
}

/// Shorthand for the inference flavour of [`tenant_action`].
fn tenant_path(path: &str) -> Option<&str> {
    tenant_action(path, "infer")
}

fn route(request: &Request, started: Instant, queue_wait: Duration, inner: &Inner) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            Routed::new(Endpoint::Healthz, 200, "text/plain; charset=utf-8", "ok\n".into())
        }
        ("GET", "/statusz") => Routed::json(Endpoint::Statusz, 200, &statusz(inner)),
        ("GET", "/metrics") => Routed::new(
            Endpoint::Metrics,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            {
                let mut out = match &inner.backend {
                    Backend::Single(api) => {
                        let mut out =
                            inner.metrics.render_prometheus(&api.stats(), inner.queue.len());
                        if let Some(status) = api.overlay_status() {
                            render_overlay_families(&[(String::new(), status)], &mut out);
                        }
                        out
                    }
                    Backend::Fleet(fleet) => {
                        inner.metrics.render_prometheus_fleet(fleet, inner.queue.len())
                    }
                };
                if let Some(recorder) = &inner.traces {
                    recorder.render_metrics(&mut out);
                }
                out
            },
        ),
        ("GET", "/debug/traces") => match &inner.traces {
            Some(recorder) => Routed::new(
                Endpoint::Traces,
                200,
                "application/json",
                recorder.render_debug(request.query.as_deref()),
            ),
            None => Routed::error(Endpoint::Traces, 404, "tracing is disabled"),
        },
        ("GET", "/debug/history") => match &inner.history {
            Some(history) => Routed::new(
                Endpoint::History,
                200,
                "application/json",
                history.render_debug(request.query.as_deref()),
            ),
            None => Routed::error(Endpoint::History, 404, "history is disabled"),
        },
        ("POST", "/v1/infer") => infer(request, started, queue_wait, inner, None),
        ("POST", path) if tenant_path(path).is_some() => {
            infer(request, started, queue_wait, inner, tenant_path(path))
        }
        ("POST", "/v1/upsert") => upsert(request, inner, None),
        ("POST", path) if tenant_action(path, "upsert").is_some() => {
            upsert(request, inner, tenant_action(path, "upsert"))
        }
        ("GET", "/v1/overlay/journal") => overlay_journal(inner, None),
        ("GET", path) if tenant_action(path, "overlay/journal").is_some() => {
            overlay_journal(inner, tenant_action(path, "overlay/journal"))
        }
        ("POST", "/v1/overlay/drain") => overlay_drain(request, inner, None),
        ("POST", path) if tenant_action(path, "overlay/drain").is_some() => {
            overlay_drain(request, inner, tenant_action(path, "overlay/drain"))
        }
        (_, "/healthz" | "/statusz" | "/metrics" | "/debug/traces" | "/debug/history") => {
            let mut routed = Routed::error(Endpoint::Other, 405, "method not allowed");
            routed.extra_headers.push(("Allow", "GET".into()));
            routed
        }
        (_, path)
            if path == "/v1/overlay/journal"
                || tenant_action(path, "overlay/journal").is_some() =>
        {
            let mut routed = Routed::error(Endpoint::Other, 405, "method not allowed");
            routed.extra_headers.push(("Allow", "GET".into()));
            routed
        }
        (_, path)
            if path == "/v1/infer"
                || path == "/v1/upsert"
                || path == "/v1/overlay/drain"
                || tenant_path(path).is_some()
                || tenant_action(path, "upsert").is_some()
                || tenant_action(path, "overlay/drain").is_some() =>
        {
            let mut routed = Routed::error(Endpoint::Other, 405, "method not allowed");
            routed.extra_headers.push(("Allow", "POST".into()));
            routed
        }
        _ => Routed::error(Endpoint::Other, 404, format!("no route for {}", request.path)),
    }
}

/// The `/statusz` payload: [`ServeStats`] plus queue/config gauges for
/// a single-api server, extended with the fleet table in fleet mode.
fn statusz(inner: &Inner) -> Json {
    match &inner.backend {
        Backend::Single(api) => statusz_single(api, inner),
        Backend::Fleet(fleet) => statusz_fleet(fleet, inner),
    }
}

/// The `/statusz` latency block: count plus quantile estimates from the
/// end-to-end inference histogram (the same numbers `/metrics` exports
/// as bucket counts). Shared with the router's `/statusz`.
pub(crate) fn latency_json(metrics: &HttpMetrics) -> Json {
    let h = &metrics.infer_latency;
    Json::obj(vec![
        ("count", Json::uint(h.count())),
        ("p50_us", Json::num(h.quantile(0.50) * 1e6)),
        ("p90_us", Json::num(h.quantile(0.90) * 1e6)),
        ("p99_us", Json::num(h.quantile(0.99) * 1e6)),
    ])
}

/// The `/statusz` trace block ([`TraceRecorder::statusz_json`]), or
/// `null` when tracing is disabled.
fn trace_block(inner: &Inner) -> Json {
    match &inner.traces {
        Some(recorder) => recorder.statusz_json(),
        None => Json::Null,
    }
}

/// The `/statusz` history block ([`MetricsHistory::statusz_json`]), or
/// `null` when history is disabled.
fn history_block(inner: &Inner) -> Json {
    match &inner.history {
        Some(history) => history.statusz_json(),
        None => Json::Null,
    }
}

/// The `/statusz` shape of one [`OverlayStatus`] snapshot (shared by
/// the single-mode top-level object and the fleet table rows).
fn overlay_status_json(status: &OverlayStatus) -> Json {
    Json::obj(vec![
        ("seq", Json::uint(status.seq)),
        ("drained_upto", Json::uint(status.drained_upto)),
        ("depth", Json::uint(status.depth as u64)),
        ("journal_bytes", Json::uint(status.journal_bytes as u64)),
        ("cap_bytes", Json::uint(status.cap_bytes as u64)),
        ("leaves", Json::uint(status.leaves as u64)),
        ("upserts_applied", Json::uint(status.upserts_applied)),
        ("records_applied", Json::uint(status.records_applied)),
        ("upserts_shed", Json::uint(status.upserts_shed)),
        ("drains", Json::uint(status.drains)),
    ])
}

fn statusz_single(api: &ServingApi, inner: &Inner) -> Json {
    let stats = api.stats();
    let stats = &stats;
    Json::obj(vec![
        ("snapshot_version", Json::uint(stats.snapshot_version)),
        ("model_swaps", Json::uint(stats.model_swaps)),
        ("in_flight", Json::uint(stats.in_flight)),
        ("shed", Json::uint(stats.shed)),
        ("deadline_exceeded", Json::uint(stats.deadline_exceeded)),
        ("store_hits", Json::uint(stats.store_hits)),
        ("read_throughs", Json::uint(stats.read_throughs)),
        ("coalesced", Json::uint(stats.coalesced)),
        ("direct", Json::uint(stats.direct)),
        ("unservable", Json::uint(stats.unservable)),
        ("invalidated", Json::uint(stats.invalidated)),
        ("overlay_invalidated", Json::uint(stats.overlay_invalidated)),
        (
            "overlay",
            match api.overlay_status() {
                Some(status) => overlay_status_json(&status),
                None => Json::Null,
            },
        ),
        (
            "outcomes",
            Json::obj(
                graphex_core::Outcome::ALL
                    .iter()
                    .map(|o| (o.name(), Json::uint(stats.outcomes.of(*o))))
                    .collect(),
            ),
        ),
        ("latency", latency_json(&inner.metrics)),
        ("trace", trace_block(inner)),
        ("history", history_block(inner)),
        ("queue_depth", Json::uint(inner.queue.len() as u64)),
        ("workers", Json::uint(inner.config.workers as u64)),
    ])
}

/// Fleet-mode `/statusz`: residency gauges plus one table row per
/// tenant (cold tenants included — their folded lifetime counters
/// survive eviction).
fn statusz_fleet(fleet: &TenantFleet, inner: &Inner) -> Json {
    let tenants = fleet.list();
    let rows: Vec<Json> = tenants
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("name", Json::str(t.name.clone())),
                ("resident", Json::Bool(t.resident)),
                ("snapshot_version", Json::uint(t.snapshot_version)),
                (
                    "load_mode",
                    match t.load_mode {
                        Some(mode) => Json::str(mode.as_str()),
                        None => Json::str("cold"),
                    },
                ),
                ("resident_bytes", Json::uint(t.resident_bytes)),
                ("admissions", Json::uint(t.admissions)),
                ("evictions", Json::uint(t.evictions)),
                (
                    "admitted_in_us",
                    Json::uint(t.admitted_in.map_or(0, |d| d.as_micros() as u64)),
                ),
                ("requests", Json::uint(t.stats.outcomes.total())),
                ("store_hits", Json::uint(t.stats.store_hits)),
                ("read_throughs", Json::uint(t.stats.read_throughs)),
                ("in_flight", Json::uint(t.stats.in_flight)),
                ("model_swaps", Json::uint(t.stats.model_swaps)),
                (
                    "overlay",
                    match &t.overlay {
                        Some(status) => overlay_status_json(status),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("mode", Json::str("fleet")),
        ("default_tenant", Json::str(fleet.default_tenant())),
        ("resident_cap", Json::uint(fleet.config().resident_cap as u64)),
        ("resident", Json::uint(tenants.iter().filter(|t| t.resident).count() as u64)),
        ("resident_bytes", Json::uint(tenants.iter().map(|t| t.resident_bytes).sum())),
        ("tenants", Json::Arr(rows)),
        ("latency", latency_json(&inner.metrics)),
        ("trace", trace_block(inner)),
        ("history", history_block(inner)),
        ("queue_depth", Json::uint(inner.queue.len() as u64)),
        ("workers", Json::uint(inner.config.workers as u64)),
    ])
}

/// Resolves the serving api a request addresses: single backend, or
/// per-tenant lookup (with lazy admission) through the fleet. Tenant
/// routing failures are client errors (404) — an unknown or invalid
/// tenant name must never count against the 5xx budget — while an
/// admission failure of a *known* tenant (corrupt snapshot) is a 503:
/// retrying after a fixed publish succeeds.
fn resolve_api(
    inner: &Inner,
    tenant: Option<&str>,
    endpoint: Endpoint,
) -> Result<Arc<ServingApi>, Routed> {
    match (&inner.backend, tenant) {
        (Backend::Single(api), None) => Ok(Arc::clone(api)),
        (Backend::Single(_), Some(_)) => {
            Err(Routed::error(endpoint, 404, "no tenant fleet configured"))
        }
        (Backend::Fleet(fleet), tenant) => {
            let name = tenant.unwrap_or(fleet.default_tenant());
            match fleet.api(name) {
                Ok(api) => Ok(api),
                Err(e @ (FleetError::InvalidName(_) | FleetError::UnknownTenant(_))) => {
                    Err(Routed::error(endpoint, 404, e.to_string()))
                }
                Err(e @ FleetError::Tenant { .. }) => {
                    let mut routed = Routed::error(endpoint, 503, e.to_string());
                    routed.extra_headers.push(("Retry-After", "1".into()));
                    Err(routed)
                }
            }
        }
    }
}

/// `POST /v1/infer` (and tenant variants): trace bookkeeping around
/// [`infer_inner`]. When tracing is on, the request checks a span buffer
/// out of the flight recorder (honouring a propagated
/// `x-graphex-trace` id from the router), charges the accept-queue wait
/// as the first span, and on completion files the trace and echoes the
/// id as a response header.
fn infer(
    request: &Request,
    started: Instant,
    queue_wait: Duration,
    inner: &Inner,
    tenant: Option<&str>,
) -> Routed {
    let Some(recorder) = &inner.traces else {
        return infer_inner(request, started, inner, tenant, &mut StageTrace::disabled(), 0, false)
            .0;
    };
    let header_id = request.header(TRACE_HEADER).and_then(parse_trace_id);
    let propagated = header_id.is_some();
    let (mut trace, id) = recorder.begin(started, header_id);
    if !queue_wait.is_zero() {
        trace.record_span(Stage::QueueWait, started, queue_wait, 0);
    }
    let (mut routed, entries) =
        infer_inner(request, started, inner, tenant, &mut trace, id, propagated);
    recorder.finish(
        trace,
        id,
        tenant.map(str::to_string),
        routed.status,
        entries,
        started.elapsed(),
        Vec::new(),
    );
    routed.extra_headers.push((TRACE_HEADER, format!("{id:016x}")));
    routed
}

/// The traced inference body. Returns the response plus the number of
/// envelope entries answered (for the trace record). `embed` (the
/// request carried a trace header — i.e. the router is upstream) embeds
/// the full span breakdown in the response body so the router can fold
/// it into its own trace.
fn infer_inner(
    request: &Request,
    started: Instant,
    inner: &Inner,
    tenant: Option<&str>,
    trace: &mut StageTrace,
    trace_id: u64,
    embed: bool,
) -> (Routed, usize) {
    let api = match resolve_api(inner, tenant, Endpoint::Infer) {
        Ok(api) => api,
        Err(routed) => return (routed, 0),
    };

    // Deadline check happens before any parsing or inference: a request
    // that waited out its budget in the accept queue is refused cheaply.
    if let Some(deadline) = inner.config.deadline {
        if started.elapsed() > deadline {
            api.note_deadline_exceeded();
            let mut routed = Routed::error(Endpoint::Infer, 503, "deadline exceeded");
            routed.extra_headers.push(("Retry-After", "1".into()));
            return (routed, 0);
        }
    }
    let parse_start = trace.clock();
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return (Routed::error(Endpoint::Infer, 400, "body is not valid UTF-8"), 0);
    };
    let envelope = match json::parse(text) {
        Ok(value) => value,
        Err(e) => return (Routed::error(Endpoint::Infer, 400, format!("invalid JSON: {e}")), 0),
    };

    let _guard = api.begin_request();
    match envelope.get("requests") {
        None => match decode_one(&envelope) {
            Err(message) => (Routed::error(Endpoint::Infer, 400, message), 0),
            Ok(decoded) => {
                trace.record(Stage::Parse, parse_start);
                let served = api.serve_request_traced(&decoded.request(), trace);
                let serialize_start = trace.clock();
                let mut body = render_served(&served, decoded.id);
                trace.record(Stage::Serialize, serialize_start);
                stamp_trace(&mut body, trace, trace_id, embed, started);
                (Routed::json(Endpoint::Infer, 200, &body), 1)
            }
        },
        Some(Json::Arr(entries)) => {
            if entries.len() > MAX_BATCH {
                return (
                    Routed::error(
                        Endpoint::Infer,
                        400,
                        format!("batch of {} exceeds cap of {MAX_BATCH}", entries.len()),
                    ),
                    0,
                );
            }
            let mut decoded = Vec::with_capacity(entries.len());
            for (i, entry) in entries.iter().enumerate() {
                match decode_one(entry) {
                    Ok(d) => decoded.push(d),
                    Err(message) => {
                        return (
                            Routed::error(
                                Endpoint::Infer,
                                400,
                                format!("requests[{i}]: {message}"),
                            ),
                            0,
                        )
                    }
                }
            }
            trace.record(Stage::Parse, parse_start);
            let requests: Vec<InferRequest<'_>> = decoded.iter().map(|d| d.request()).collect();
            let served = api.serve_batch_traced(&requests, trace);
            let serialize_start = trace.clock();
            let responses: Vec<Json> = served
                .iter()
                .zip(&decoded)
                .map(|(s, d)| render_served(s, d.id))
                .collect();
            let mut body = Json::obj(vec![
                ("responses", Json::Arr(responses)),
                // Envelope-level: the snapshot *serving* right now (the
                // per-response field is the snapshot that produced each
                // answer, which can be older on cached store hits).
                ("snapshot_version", Json::uint(api.snapshot_version())),
            ]);
            trace.record(Stage::Serialize, serialize_start);
            stamp_trace(&mut body, trace, trace_id, embed, started);
            (Routed::json(Endpoint::Infer, 200, &body), decoded.len())
        }
        Some(_) => (Routed::error(Endpoint::Infer, 400, "\"requests\" must be an array"), 0),
    }
}

/// Stamps a successful inference body with the trace id and — when the
/// request propagated one (the router is upstream) — the full span
/// breakdown for the router to fold into its own trace.
fn stamp_trace(body: &mut Json, trace: &StageTrace, trace_id: u64, embed: bool, started: Instant) {
    if !trace.is_enabled() {
        return;
    }
    if let Json::Obj(members) = body {
        members.push(("trace_id".to_string(), Json::str(format!("{trace_id:016x}"))));
        if embed {
            members.push((
                "trace".to_string(),
                trace_json_inline(trace, trace_id, started.elapsed()),
            ));
        }
    }
}

/// `POST /v1/upsert` (and `/v1/t/<tenant>/upsert`): the NRT overlay
/// write path. Accepts one record object or a `{"records":[...]}`
/// batch; an accepted batch is servable before the ack is written.
/// No overlay attached → 404; a full journal → 429 + `Retry-After`
/// (write shedding, mirroring the accept-queue policy); a malformed
/// record → 400. None of these count against the 5xx budget.
fn upsert(request: &Request, inner: &Inner, tenant: Option<&str>) -> Routed {
    let api = match resolve_api(inner, tenant, Endpoint::Upsert) {
        Ok(api) => api,
        Err(routed) => return routed,
    };
    if api.overlay().is_none() {
        return Routed::error(
            Endpoint::Upsert,
            404,
            "overlay serving is not enabled; start the server with --overlay",
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Routed::error(Endpoint::Upsert, 400, "body is not valid UTF-8");
    };
    let envelope = match json::parse(text) {
        Ok(value) => value,
        Err(e) => return Routed::error(Endpoint::Upsert, 400, format!("invalid JSON: {e}")),
    };
    let records = match envelope.get("records") {
        None => match decode_record(&envelope) {
            Ok(record) => vec![record],
            Err(message) => return Routed::error(Endpoint::Upsert, 400, message),
        },
        Some(Json::Arr(entries)) => {
            if entries.is_empty() {
                return Routed::error(Endpoint::Upsert, 400, "\"records\" must not be empty");
            }
            if entries.len() > MAX_BATCH {
                return Routed::error(
                    Endpoint::Upsert,
                    400,
                    format!("batch of {} exceeds cap of {MAX_BATCH}", entries.len()),
                );
            }
            let mut records = Vec::with_capacity(entries.len());
            for (i, entry) in entries.iter().enumerate() {
                match decode_record(entry) {
                    Ok(record) => records.push(record),
                    Err(message) => {
                        return Routed::error(
                            Endpoint::Upsert,
                            400,
                            format!("records[{i}]: {message}"),
                        )
                    }
                }
            }
            records
        }
        Some(_) => return Routed::error(Endpoint::Upsert, 400, "\"records\" must be an array"),
    };
    match api.apply_upsert(&records) {
        Ok(ack) => Routed::json(
            Endpoint::Upsert,
            200,
            &Json::obj(vec![
                ("seq", Json::uint(ack.seq)),
                ("applied", Json::uint(ack.applied as u64)),
                ("depth", Json::uint(ack.depth as u64)),
                ("journal_bytes", Json::uint(ack.journal_bytes as u64)),
                ("snapshot_version", Json::uint(api.snapshot_version())),
            ]),
        ),
        Err(e @ OverlayError::CapExceeded { retry_after_secs, .. }) => {
            let mut routed = Routed::error(Endpoint::Upsert, 429, e.to_string());
            routed.extra_headers.push(("Retry-After", retry_after_secs.to_string()));
            routed
        }
        Err(e @ OverlayError::Invalid(_)) => Routed::error(Endpoint::Upsert, 400, e.to_string()),
    }
}

/// `GET /v1/overlay/journal`: exports the uncompacted journal in the
/// line-oriented interchange format `graphex build --overlay-journal`
/// ingests. The compactor fetches this, rebuilds, publishes, then
/// `POST /v1/overlay/drain`s up to the journal's high-water mark.
fn overlay_journal(inner: &Inner, tenant: Option<&str>) -> Routed {
    let api = match resolve_api(inner, tenant, Endpoint::Overlay) {
        Ok(api) => api,
        Err(routed) => return routed,
    };
    match api.export_overlay_journal() {
        Some(journal) => Routed::new(
            Endpoint::Overlay,
            200,
            "text/plain; charset=utf-8",
            journal.to_text(),
        ),
        None => Routed::error(Endpoint::Overlay, 404, "overlay serving is not enabled"),
    }
}

/// `POST /v1/overlay/drain` with `{"upto": N}`: drops journal entries
/// absorbed by a published compaction. Entries that arrived after the
/// journal export survive and keep serving.
fn overlay_drain(request: &Request, inner: &Inner, tenant: Option<&str>) -> Routed {
    let api = match resolve_api(inner, tenant, Endpoint::Overlay) {
        Ok(api) => api,
        Err(routed) => return routed,
    };
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Routed::error(Endpoint::Overlay, 400, "body is not valid UTF-8");
    };
    let envelope = match json::parse(text) {
        Ok(value) => value,
        Err(e) => return Routed::error(Endpoint::Overlay, 400, format!("invalid JSON: {e}")),
    };
    let Some(upto) = envelope.get("upto").and_then(Json::as_u64) else {
        return Routed::error(Endpoint::Overlay, 400, "missing or non-integer \"upto\"");
    };
    match api.drain_overlay(upto) {
        Some(report) => Routed::json(
            Endpoint::Overlay,
            200,
            &Json::obj(vec![
                ("drained", Json::uint(report.drained as u64)),
                ("remaining", Json::uint(report.remaining as u64)),
            ]),
        ),
        None => Routed::error(Endpoint::Overlay, 404, "overlay serving is not enabled"),
    }
}

/// Decodes one upsert record: `{"text": "...", "leaf": N, "search": N,
/// "recall": N}` (recall optional, defaulting to 0). Validation beyond
/// shape — empty text, reserved bytes — happens in the overlay store so
/// HTTP and in-process writers are refused identically.
fn decode_record(value: &Json) -> Result<KeyphraseRecord, String> {
    if !matches!(value, Json::Obj(_)) {
        return Err("record must be a JSON object".into());
    }
    let text = value
        .get("text")
        .and_then(Json::as_str)
        .ok_or("missing or non-string \"text\"")?
        .to_string();
    let leaf = value
        .get("leaf")
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer \"leaf\"")?;
    let leaf = u32::try_from(leaf).map_err(|_| "\"leaf\" exceeds u32 range".to_string())?;
    let search = value
        .get("search")
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer \"search\"")?;
    let search = u32::try_from(search).map_err(|_| "\"search\" exceeds u32 range".to_string())?;
    let recall = match value.get("recall") {
        None => 0,
        Some(v) => {
            let recall = v.as_u64().ok_or("\"recall\" must be a non-negative integer")?;
            u32::try_from(recall).map_err(|_| "\"recall\" exceeds u32 range".to_string())?
        }
    };
    Ok(KeyphraseRecord::new(text, LeafId(leaf), search, recall))
}

/// One decoded infer envelope (owns the strings the borrowed
/// [`InferRequest`] points into). `pub(crate)` so the router validates
/// client envelopes with exactly the backend's rules — a request the
/// router forwards is never one a backend would 400.
pub(crate) struct Decoded {
    title: String,
    pub(crate) leaf: u32,
    k: Option<usize>,
    pub(crate) id: Option<u64>,
    alignment: Option<Alignment>,
}

impl Decoded {
    fn request(&self) -> InferRequest<'_> {
        let mut request =
            InferRequest::new(&self.title, graphex_core::LeafId(self.leaf)).resolve_texts(true);
        if let Some(k) = self.k {
            request = request.k(k);
        }
        if let Some(id) = self.id {
            request = request.id(id);
        }
        if let Some(alignment) = self.alignment {
            request = request.alignment(alignment);
        }
        request
    }
}

pub(crate) fn decode_one(value: &Json) -> Result<Decoded, String> {
    if !matches!(value, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let title = value
        .get("title")
        .and_then(Json::as_str)
        .ok_or("missing or non-string \"title\"")?
        .to_string();
    let leaf = value
        .get("leaf")
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer \"leaf\"")?;
    let leaf = u32::try_from(leaf).map_err(|_| "\"leaf\" exceeds u32 range".to_string())?;
    let k = match value.get("k") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&k| (1..=10_000).contains(&k))
                .ok_or("\"k\" must be an integer in 1..=10000")? as usize,
        ),
    };
    // KV keys are full u64 (PR 2); JSON numbers are f64 and lose
    // exactness past 2^53, so large ids are accepted as decimal strings.
    let id = match value.get("id") {
        None => None,
        Some(Json::Str(raw)) => {
            Some(raw.parse::<u64>().map_err(|_| "\"id\" string must be a decimal u64")?)
        }
        Some(v) => Some(v.as_u64().ok_or(
            "\"id\" must be a non-negative integer (< 2^53) or a decimal string",
        )?),
    };
    let alignment = match value.get("alignment").map(|v| (v, v.as_str())) {
        None => None,
        Some((_, Some("lta"))) => Some(Alignment::Lta),
        Some((_, Some("wmr"))) => Some(Alignment::Wmr),
        Some((_, Some("jac"))) => Some(Alignment::Jac),
        Some(_) => return Err("\"alignment\" must be one of lta|wmr|jac".into()),
    };
    Ok(Decoded { title, leaf, k, id, alignment })
}

fn source_label(source: ServeSource) -> &'static str {
    match source {
        ServeSource::Store => "store_hit",
        ServeSource::ReadThrough => "read_through",
        ServeSource::Coalesced => "coalesced",
        ServeSource::Direct => "direct",
        ServeSource::None => "none",
    }
}

fn render_served(served: &Served, id: Option<u64>) -> Json {
    let mut members = vec![
        ("outcome", Json::str(served.outcome.name())),
        ("source", Json::str(source_label(served.source))),
        (
            "keyphrases",
            Json::Arr(served.keyphrases.iter().map(|k| Json::str(k.clone())).collect()),
        ),
        ("snapshot_version", Json::uint(served.snapshot_version)),
    ];
    if let Some(id) = id {
        // Ids past 2^53 are echoed as strings, mirroring what the decoder
        // accepts: an f64 JSON number cannot carry them exactly.
        let id_json = if id <= 1 << 53 { Json::uint(id) } else { Json::str(id.to_string()) };
        members.insert(0, ("id", id_json));
    }
    Json::obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use graphex_core::{GraphExBuilder, GraphExConfig, KeyphraseRecord, LeafId};
    use graphex_serving::{KvStore, OverlayStore};
    use std::io::Write as _;

    fn api() -> Arc<ServingApi> {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        let model = GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("widget gadget", LeafId(1), 90, 5),
                KeyphraseRecord::new("widget gadget pro", LeafId(1), 50, 5),
                KeyphraseRecord::new("widget gadget pro max", LeafId(1), 30, 5),
            ])
            .build()
            .unwrap();
        Arc::new(ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10))
    }

    fn api_with_overlay(cap_bytes: usize) -> Arc<ServingApi> {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        config.build_meta_fallback = false;
        let model = GraphExBuilder::new(config)
            .add_records(vec![
                KeyphraseRecord::new("widget gadget", LeafId(1), 90, 5),
                KeyphraseRecord::new("widget gadget pro", LeafId(1), 50, 5),
            ])
            .build()
            .unwrap();
        Arc::new(
            ServingApi::new(Arc::new(model), Arc::new(KvStore::new()), 10)
                .with_overlay(Arc::new(OverlayStore::with_cap(cap_bytes))),
        )
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            max_body_bytes: 4096,
            deadline: None,
            keep_alive_timeout: Duration::from_secs(2),
            trace: TraceConfig::default(),
            history: HistoryConfig::default(),
        }
    }

    #[test]
    fn serves_all_four_endpoints_over_keep_alive() {
        let server = crate::start(test_config(), api()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();

        let health = client.get("/healthz").unwrap();
        assert_eq!((health.status, health.text().as_str()), (200, "ok\n"));

        let single = client
            .post_json("/v1/infer", r#"{"title":"widget gadget pro max","leaf":1,"k":2,"id":7}"#)
            .unwrap();
        assert_eq!(single.status, 200);
        let body = json::parse(&single.text()).unwrap();
        assert_eq!(body.get("outcome").unwrap().as_str(), Some("exact_leaf"));
        assert_eq!(body.get("source").unwrap().as_str(), Some("read_through"));
        assert_eq!(body.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(body.get("keyphrases").unwrap().as_arr().unwrap().len(), 2);

        // Same id again: a store hit over the same connection.
        let again = client
            .post_json("/v1/infer", r#"{"title":"widget gadget pro max","leaf":1,"k":2,"id":7}"#)
            .unwrap();
        assert_eq!(
            json::parse(&again.text()).unwrap().get("source").unwrap().as_str(),
            Some("store_hit")
        );

        let batch = client
            .post_json(
                "/v1/infer",
                r#"{"requests":[{"title":"widget gadget","leaf":1},{"title":"zz","leaf":999}]}"#,
            )
            .unwrap();
        assert_eq!(batch.status, 200);
        let body = json::parse(&batch.text()).unwrap();
        let responses = body.get("responses").unwrap().as_arr().unwrap();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].get("outcome").unwrap().as_str(), Some("exact_leaf"));
        assert_eq!(responses[1].get("outcome").unwrap().as_str(), Some("unknown_leaf"));

        let status = client.get("/statusz").unwrap();
        assert_eq!(status.status, 200);
        let stats = json::parse(&status.text()).unwrap();
        assert_eq!(stats.get("store_hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("snapshot_version").unwrap().as_u64(), Some(0));

        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let text = metrics.text();
        assert!(text.contains("graphex_http_requests_total{endpoint=\"infer\",code=\"200\"} 3"));
        assert!(text.contains("graphex_request_duration_seconds_count 3"));
        assert!(text.contains("graphex_serve_source_total{source=\"store_hit\"} 1"));

        drop(client); // close the keep-alive so shutdown doesn't wait it out
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_never_a_hang() {
        let server = crate::start(test_config(), api()).unwrap();
        let addr = server.addr();

        // Each malformed case desyncs the stream, so use a fresh
        // connection per probe (the server closes after an error).
        type Probe = Box<dyn Fn(&mut HttpClient) -> std::io::Result<crate::Response>>;
        let cases: Vec<(u16, Probe)> = vec![
            (400, Box::new(|c| c.post_json("/v1/infer", "this is not json"))),
            (400, Box::new(|c| c.post_json("/v1/infer", r#"{"leaf":1}"#))),
            (400, Box::new(|c| c.post_json("/v1/infer", r#"{"title":"x","leaf":-3}"#))),
            (400, Box::new(|c| c.post_json("/v1/infer", r#"{"title":"x","leaf":1,"k":0}"#))),
            (400, Box::new(|c| c.post_json("/v1/infer", r#"{"requests":7}"#))),
            (400, Box::new(|c| c.post_json("/v1/infer", r#"{"requests":[{"title":1,"leaf":1}]}"#))),
            (404, Box::new(|c| c.get("/nope"))),
            (405, Box::new(|c| c.get("/v1/infer"))),
            (405, Box::new(|c| c.post_json("/healthz", "{}"))),
        ];
        for (expected, probe) in cases {
            let mut client = HttpClient::connect(addr).unwrap();
            let response = probe(&mut client).unwrap();
            assert_eq!(response.status, expected, "{}", response.text());
        }

        // Oversized body: declared length beyond the cap → 413.
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client.post_json("/v1/infer", &"x".repeat(5000)).unwrap();
        assert_eq!(response.status, 413);

        // Raw garbage on the socket → 400, not a hang or panic.
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut reply = String::new();
        use std::io::Read as _;
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        // The server still serves normal traffic afterwards.
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn full_accept_queue_sheds_with_429() {
        let config = ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..test_config()
        };
        let server = crate::start(config, api()).unwrap();
        let addr = server.addr();

        // Occupy the single worker with a held keep-alive connection.
        let mut held = HttpClient::connect(addr).unwrap();
        assert_eq!(held.get("/healthz").unwrap().status, 200);
        // Fill the queue with a second (idle) connection. Poll the gauge
        // rather than sleeping: the acceptor thread admits it when ready.
        let _queued = std::net::TcpStream::connect(addr).unwrap();
        for _ in 0..200 {
            if server.inner.queue.len() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.inner.queue.len(), 1, "second connection queued");

        // A third connection must be shed immediately: 429, no hang.
        let mut shed = HttpClient::connect(addr).unwrap();
        let response = shed.get("/healthz").unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(server.api().unwrap().stats().shed, 1);
        assert_eq!(server.metrics().connections_shed.load(Ordering::Relaxed), 1);
        drop((held, _queued, shed));
        server.shutdown();
    }

    #[test]
    fn expired_deadline_answers_503_without_inference() {
        let config = ServerConfig {
            deadline: Some(Duration::from_nanos(1)),
            ..test_config()
        };
        let server = crate::start(config, api()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let response =
            client.post_json("/v1/infer", r#"{"title":"widget gadget","leaf":1}"#).unwrap();
        assert_eq!(response.status, 503);
        let stats = server.api().unwrap().stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.outcomes.total(), 0, "no inference ran");
        // Health/stats endpoints are exempt from the inference deadline.
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        server.shutdown();
    }

    /// KV keys are full u64; ids past 2^53 travel as decimal strings in
    /// both directions (JSON numbers are f64).
    #[test]
    fn large_ids_roundtrip_as_strings() {
        let server = crate::start(test_config(), api()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let big = u64::MAX;
        let body = format!(r#"{{"title":"widget gadget","leaf":1,"id":"{big}"}}"#);
        let response = client.post_json("/v1/infer", &body).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        let parsed = json::parse(&response.text()).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_str(), Some(big.to_string().as_str()));
        // Small ids keep the plain-number form.
        let response = client
            .post_json("/v1/infer", r#"{"title":"widget gadget","leaf":1,"id":12}"#)
            .unwrap();
        let parsed = json::parse(&response.text()).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(12));
        // A number past 2^53 is a 400, not silent precision loss.
        let response = client
            .post_json("/v1/infer", r#"{"title":"widget gadget","leaf":1,"id":18446744073709551615}"#)
            .unwrap();
        assert_eq!(response.status, 400);
        drop(client);
        server.shutdown();
    }

    /// The deadline budget covers server-induced delay only: a client
    /// that connects, thinks for longer than the deadline, and then
    /// sends on an idle server must be served, not 503'd.
    #[test]
    fn client_think_time_does_not_consume_the_deadline() {
        let config = ServerConfig {
            deadline: Some(Duration::from_millis(150)),
            ..test_config()
        };
        let server = crate::start(config, api()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(400)); // > deadline, pure think-time
        let response =
            client.post_json("/v1/infer", r#"{"title":"widget gadget","leaf":1}"#).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        assert_eq!(server.api().unwrap().stats().deadline_exceeded, 0);
        drop(client);
        server.shutdown();
    }

    /// Worker pinning is bounded: after `MAX_KEEPALIVE_REQUESTS` on one
    /// connection the server closes it, so a chatty peer cannot starve
    /// queued connections forever.
    #[test]
    fn keep_alive_connections_are_capped() {
        let server = crate::start(test_config(), api()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        for i in 1..MAX_KEEPALIVE_REQUESTS {
            let response = client.get("/healthz").unwrap();
            assert_eq!(response.status, 200);
            assert_ne!(response.header("connection"), Some("close"), "closed early at {i}");
        }
        let last = client.get("/healthz").unwrap();
        assert_eq!(last.status, 200);
        assert_eq!(last.header("connection"), Some("close"), "cap must close the connection");
        assert!(client.get("/healthz").is_err(), "server hung up after the cap");
        // A reconnect is admitted immediately.
        let mut fresh = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(fresh.get("/healthz").unwrap().status, 200);
        drop(fresh);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_queued_connections() {
        let config = ServerConfig { workers: 1, queue_depth: 8, ..test_config() };
        let server = crate::start(config, api()).unwrap();
        let addr = server.addr();
        // Subsequent requests on one connection under shutdown still get
        // answered (with Connection: close) rather than dropped.
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        server.shutdown();
        // After shutdown the port no longer accepts.
        assert!(HttpClient::connect(addr).is_err() || {
            // A TIME_WAIT race can let connect succeed; the write/read
            // must then fail.
            let mut c = HttpClient::connect(addr).unwrap();
            c.get("/healthz").is_err()
        });
    }

    fn tenant_model(tag: u32) -> graphex_core::GraphExModel {
        let mut config = GraphExConfig::default();
        config.curation.min_search_count = 0;
        GraphExBuilder::new(config)
            .add_records((0..4u32).map(|i| {
                KeyphraseRecord::new(format!("tenant{tag} widget v{i}"), LeafId(1), 100 + i, 10)
            }))
            .build()
            .unwrap()
    }

    fn fleet_fixture(label: &str, tenants: &[(&str, u32)]) -> (std::path::PathBuf, Arc<TenantFleet>) {
        let root = std::env::temp_dir()
            .join(format!("graphex-server-fleet-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let fleet = TenantFleet::open(
            &root,
            graphex_serving::FleetConfig { resident_cap: 2, ..Default::default() },
        )
        .unwrap();
        for &(name, tag) in tenants {
            fleet.publish_model(name, &tenant_model(tag), "seed").unwrap();
        }
        (root, Arc::new(fleet))
    }

    #[test]
    fn fleet_mode_multiplexes_tenants_by_path() {
        let (root, fleet) =
            fleet_fixture("mux", &[("default", 0), ("alpha", 1), ("beta", 2)]);
        let server = crate::start_fleet(test_config(), fleet).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();

        // Tenant paths reach the right tenant's model.
        for (tenant, tag) in [("alpha", 1), ("beta", 2)] {
            let body = format!(r#"{{"title":"tenant{tag} widget v0","leaf":1,"k":2}}"#);
            let response = client.post_json(&format!("/v1/t/{tenant}/infer"), &body).unwrap();
            assert_eq!(response.status, 200, "{tenant}: {}", response.text());
            let parsed = json::parse(&response.text()).unwrap();
            assert_eq!(parsed.get("outcome").unwrap().as_str(), Some("exact_leaf"));
            let phrases = parsed.get("keyphrases").unwrap().as_arr().unwrap();
            assert!(
                phrases.iter().all(|p| p.as_str().unwrap().contains(&format!("tenant{tag}"))),
                "{tenant} answered with another tenant's phrases: {phrases:?}"
            );
        }

        // The legacy path serves the default tenant.
        let legacy = client
            .post_json("/v1/infer", r#"{"title":"tenant0 widget v0","leaf":1,"k":2}"#)
            .unwrap();
        assert_eq!(legacy.status, 200);
        let parsed = json::parse(&legacy.text()).unwrap();
        assert_eq!(parsed.get("outcome").unwrap().as_str(), Some("exact_leaf"));

        // Unknown and invalid tenants are client errors, not 5xx.
        let unknown = client.post_json("/v1/t/ghost/infer", r#"{"title":"x","leaf":1}"#).unwrap();
        assert_eq!(unknown.status, 404);
        let invalid =
            client.post_json("/v1/t/..%2fescape/infer", r#"{"title":"x","leaf":1}"#).unwrap();
        assert_eq!(invalid.status, 404);
        // GET on a tenant infer path is a 405 like the legacy path.
        assert_eq!(client.get("/v1/t/alpha/infer").unwrap().status, 405);

        // /statusz reports the fleet table.
        let status = json::parse(&client.get("/statusz").unwrap().text()).unwrap();
        assert_eq!(status.get("mode").unwrap().as_str(), Some("fleet"));
        assert_eq!(status.get("default_tenant").unwrap().as_str(), Some("default"));
        let rows = status.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 3);
        let alpha = rows
            .iter()
            .find(|row| row.get("name").unwrap().as_str() == Some("alpha"))
            .expect("alpha row");
        assert_eq!(alpha.get("requests").unwrap().as_u64(), Some(1));

        // /metrics carries per-tenant families and zero server errors.
        // Three tenants took traffic under a cap of 2, so the first one
        // (alpha) has been LRU-evicted — but its counters keep exporting.
        let metrics = client.get("/metrics").unwrap().text();
        assert!(metrics.contains("graphex_tenant_resident{tenant=\"default\"} 1"));
        assert!(metrics.contains("graphex_tenant_resident{tenant=\"alpha\"} 0"));
        assert!(metrics.contains(
            "graphex_tenant_serve_outcome_total{tenant=\"alpha\",outcome=\"exact_leaf\"} 1"
        ));
        assert!(metrics.contains("graphex_fleet_resident_cap 2"));
        assert!(metrics.contains(
            "graphex_tenant_serve_outcome_total{tenant=\"beta\",outcome=\"exact_leaf\"} 1"
        ));
        assert_eq!(server.metrics().server_errors(), 0);

        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    /// The NRT write path end to end over HTTP: an acked upsert is
    /// servable on the very next request, the journal exports, and a
    /// drain drops exactly the absorbed prefix.
    #[test]
    fn upsert_round_trip_serves_new_leaf_immediately() {
        let server = crate::start(test_config(), api_with_overlay(1 << 20)).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();

        // Onboard a brand-new leaf.
        let ack = client
            .post_json("/v1/upsert", r#"{"text":"solar panel kit","leaf":42,"search":120,"recall":9}"#)
            .unwrap();
        assert_eq!(ack.status, 200, "{}", ack.text());
        let ack = json::parse(&ack.text()).unwrap();
        assert_eq!(ack.get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(ack.get("applied").unwrap().as_u64(), Some(1));

        // The very next request serves it.
        let served = client
            .post_json("/v1/infer", r#"{"title":"solar panel kit","leaf":42,"k":3}"#)
            .unwrap();
        assert_eq!(served.status, 200, "{}", served.text());
        let served = json::parse(&served.text()).unwrap();
        let phrases = served.get("keyphrases").unwrap().as_arr().unwrap();
        assert!(
            phrases.iter().any(|p| p.as_str() == Some("solar panel kit")),
            "upserted phrase must serve: {phrases:?}"
        );

        // Batch envelope onto an existing leaf: composes with base content.
        let batch = client
            .post_json("/v1/upsert", r#"{"records":[{"text":"widget gadget ultra","leaf":1,"search":80}]}"#)
            .unwrap();
        assert_eq!(batch.status, 200, "{}", batch.text());
        let augmented = client
            .post_json("/v1/infer", r#"{"title":"widget gadget ultra","leaf":1,"k":5}"#)
            .unwrap();
        let augmented = json::parse(&augmented.text()).unwrap();
        let phrases = augmented.get("keyphrases").unwrap().as_arr().unwrap();
        assert!(phrases.iter().any(|p| p.as_str() == Some("widget gadget ultra")), "{phrases:?}");
        assert!(phrases.iter().any(|p| p.as_str() == Some("widget gadget")), "base content kept: {phrases:?}");

        // The journal exports both records in interchange form.
        let journal = client.get("/v1/overlay/journal").unwrap();
        assert_eq!(journal.status, 200);
        let text = journal.text();
        assert!(text.contains("solar panel kit"), "{text}");
        assert!(text.contains("widget gadget ultra"), "{text}");

        // /statusz and /metrics surface the overlay.
        let status = json::parse(&client.get("/statusz").unwrap().text()).unwrap();
        let overlay = status.get("overlay").unwrap();
        assert_eq!(overlay.get("depth").unwrap().as_u64(), Some(2));
        assert_eq!(overlay.get("upserts_applied").unwrap().as_u64(), Some(2));
        let metrics = client.get("/metrics").unwrap().text();
        assert!(metrics.contains("graphex_overlay_depth 2"), "{metrics}");
        assert!(metrics.contains("graphex_http_requests_total{endpoint=\"upsert\",code=\"200\"} 2"));

        // Drain the first entry (as a compaction that absorbed seq 1 would).
        let drained = client.post_json("/v1/overlay/drain", r#"{"upto":1}"#).unwrap();
        assert_eq!(drained.status, 200, "{}", drained.text());
        let drained = json::parse(&drained.text()).unwrap();
        assert_eq!(drained.get("drained").unwrap().as_u64(), Some(1));
        assert_eq!(drained.get("remaining").unwrap().as_u64(), Some(1));

        assert_eq!(server.metrics().server_errors(), 0);
        drop(client);
        server.shutdown();
    }

    /// Write-path refusals are all client errors: no overlay → 404, a
    /// full journal → 429 with `Retry-After`, a bad record → 400.
    #[test]
    fn upsert_refusals_are_404_429_400() {
        // No overlay attached.
        let server = crate::start(test_config(), api()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let refused = client
            .post_json("/v1/upsert", r#"{"text":"x","leaf":1,"search":1}"#)
            .unwrap();
        assert_eq!(refused.status, 404);
        assert!(refused.text().contains("--overlay"), "{}", refused.text());
        assert_eq!(client.get("/v1/overlay/journal").unwrap().status, 404);
        // Wrong methods on overlay paths are 405s, not 404s.
        assert_eq!(client.get("/v1/upsert").unwrap().status, 405);
        assert_eq!(client.post_json("/v1/overlay/journal", "{}").unwrap().status, 405);
        drop(client);
        server.shutdown();

        // A tiny cap sheds the write with 429 + Retry-After.
        let server = crate::start(test_config(), api_with_overlay(8)).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let shed = client
            .post_json("/v1/upsert", r#"{"text":"a phrase far larger than the cap","leaf":7,"search":10}"#)
            .unwrap();
        assert_eq!(shed.status, 429, "{}", shed.text());
        assert_eq!(shed.header("retry-after"), Some("5"));

        // Malformed records are 400s.
        for body in [
            r#"{"text":"","leaf":1,"search":1}"#,
            r#"{"leaf":1,"search":1}"#,
            r#"{"text":"x","leaf":1}"#,
            r#"{"records":[]}"#,
            r#"{"records":7}"#,
        ] {
            let mut fresh = HttpClient::connect(server.addr()).unwrap();
            let response = fresh.post_json("/v1/upsert", body).unwrap();
            assert_eq!(response.status, 400, "{body}: {}", response.text());
        }
        assert_eq!(server.metrics().server_errors(), 0);
        drop(client);
        server.shutdown();
    }

    /// Fleet mode: upserts route per tenant, land in that tenant's
    /// overlay only, and export under its `tenant` metrics label.
    #[test]
    fn fleet_upserts_are_tenant_scoped() {
        let root = std::env::temp_dir()
            .join(format!("graphex-server-fleet-upsert-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let fleet = TenantFleet::open(
            &root,
            graphex_serving::FleetConfig { resident_cap: 2, overlay: true, ..Default::default() },
        )
        .unwrap();
        fleet.publish_model("default", &tenant_model(0), "seed").unwrap();
        fleet.publish_model("alpha", &tenant_model(1), "seed").unwrap();
        let server = crate::start_fleet(test_config(), Arc::new(fleet)).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();

        let ack = client
            .post_json("/v1/t/alpha/upsert", r#"{"text":"alpha exclusive phrase","leaf":9,"search":60}"#)
            .unwrap();
        assert_eq!(ack.status, 200, "{}", ack.text());

        // Alpha serves it; the default tenant does not know the leaf.
        let alpha = client
            .post_json("/v1/t/alpha/infer", r#"{"title":"alpha exclusive phrase","leaf":9}"#)
            .unwrap();
        let alpha = json::parse(&alpha.text()).unwrap();
        let phrases = alpha.get("keyphrases").unwrap().as_arr().unwrap();
        assert!(phrases.iter().any(|p| p.as_str() == Some("alpha exclusive phrase")), "{phrases:?}");
        let other = client
            .post_json("/v1/infer", r#"{"title":"alpha exclusive phrase","leaf":9}"#)
            .unwrap();
        let other = json::parse(&other.text()).unwrap();
        let leaked = other.get("keyphrases").unwrap().as_arr().unwrap();
        assert!(
            leaked.iter().all(|p| p.as_str() != Some("alpha exclusive phrase")),
            "alpha's upsert leaked into the default tenant: {leaked:?}"
        );

        // Observability carries the tenant label.
        let metrics = client.get("/metrics").unwrap().text();
        assert!(metrics.contains("graphex_overlay_depth{tenant=\"alpha\"} 1"), "{metrics}");
        let status = json::parse(&client.get("/statusz").unwrap().text()).unwrap();
        let rows = status.get("tenants").unwrap().as_arr().unwrap();
        let alpha_row = rows
            .iter()
            .find(|row| row.get("name").unwrap().as_str() == Some("alpha"))
            .unwrap();
        assert_eq!(alpha_row.get("overlay").unwrap().get("depth").unwrap().as_u64(), Some(1));

        assert_eq!(server.metrics().server_errors(), 0);
        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn single_mode_rejects_tenant_paths() {
        let server = crate::start(test_config(), api()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let response =
            client.post_json("/v1/t/alpha/infer", r#"{"title":"widget gadget","leaf":1}"#).unwrap();
        assert_eq!(response.status, 404);
        assert!(response.text().contains("no tenant fleet"), "{}", response.text());
        drop(client);
        server.shutdown();
    }

    #[test]
    fn fleet_eviction_under_traffic_never_5xxes() {
        let (root, fleet) =
            fleet_fixture("evict", &[("default", 0), ("a", 1), ("b", 2), ("c", 3)]);
        let server = crate::start_fleet(test_config(), Arc::clone(&fleet)).unwrap();
        let addr = server.addr();

        // Round-robin across more tenants than the residency cap (2), so
        // every request cycle forces admissions and LRU evictions.
        let names = ["a", "b", "c", "default"];
        let tags = [1u32, 2, 3, 0];
        let mut client = HttpClient::connect(addr).unwrap();
        for round in 0..6 {
            for (tenant, tag) in names.iter().zip(tags) {
                let body = format!(r#"{{"title":"tenant{tag} widget v0","leaf":1,"k":2}}"#);
                let response =
                    client.post_json(&format!("/v1/t/{tenant}/infer"), &body).unwrap();
                assert_eq!(response.status, 200, "round {round} {tenant}: {}", response.text());
            }
        }
        assert!(fleet.resident_count() <= 2, "cap must hold under churn");
        let evictions: u64 = fleet.list().iter().map(|t| t.evictions).sum();
        assert!(evictions > 0, "test must actually exercise eviction");
        assert_eq!(server.metrics().server_errors(), 0, "evictions caused 5xx");

        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
}

//! Server-side observability: request/outcome counters, a fixed-bucket
//! latency histogram, and the `/metrics` Prometheus text rendering.
//!
//! Everything is lock-free on the hot path except the per-response status
//! tally (one short mutexed map update per request — noise next to an
//! inference). The serving-layer counters (store hits, outcomes, shed,
//! in-flight) live in [`graphex_serving::ServeStats`] and are merged in at
//! render time, so `/metrics` and `/statusz` agree by construction.

use graphex_serving::{OverlayStatus, ServeStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Histogram bucket upper bounds, in seconds (Prometheus `le` labels).
/// Spans 100 µs (a warm store hit) to 1 s (pathological queueing).
pub const BUCKET_BOUNDS: [f64; 11] =
    [0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 1.0];

/// Cumulative-style latency histogram (buckets are recorded sparse and
/// accumulated at render time, like Prometheus expects).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1], // last = +Inf
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    pub fn record(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let idx = BUCKET_BOUNDS.iter().position(|&b| secs <= b).unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (0..=1) in seconds by linear
    /// interpolation inside the bucket the target rank falls in — the
    /// same estimate Prometheus' `histogram_quantile` computes. Returns 0
    /// for an empty histogram; observations past the last bound clamp to
    /// it (the estimate cannot exceed the largest finite bucket bound).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            let before = cumulative;
            cumulative += in_bucket;
            if cumulative >= target {
                let lower = if i == 0 { 0.0 } else { BUCKET_BOUNDS[i - 1] };
                let upper = BUCKET_BOUNDS.get(i).copied().unwrap_or(BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]);
                if in_bucket == 0 || upper <= lower {
                    return upper;
                }
                let frac = (target - before) as f64 / in_bucket as f64;
                return lower + (upper - lower) * frac;
            }
        }
        BUCKET_BOUNDS[BUCKET_BOUNDS.len() - 1]
    }

    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        self.render_series(name, "", out);
    }

    /// Renders this histogram's `_bucket`/`_sum`/`_count` series with
    /// `labels` spliced into every brace set (empty for an unlabeled
    /// family) — no `# TYPE` header, so several labeled histograms can
    /// share one family (e.g. `graphex_stage_latency_seconds{stage=...}`).
    pub fn render_series(&self, name: &str, labels: &str, out: &mut String) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.buckets[BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}");
        let sum = self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {sum}");
            let _ = writeln!(out, "{name}_count {}", self.count.load(Ordering::Relaxed));
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {sum}");
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count.load(Ordering::Relaxed));
        }
    }
}

/// The endpoint label a response is tallied under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    Infer,
    /// `POST /v1/upsert` (and tenant-scoped variants): the NRT overlay
    /// write path.
    Upsert,
    /// Overlay maintenance: journal export and post-compaction drain.
    Overlay,
    Healthz,
    Statusz,
    Metrics,
    /// `GET /debug/traces`: the flight-recorder dump.
    Traces,
    /// `GET /debug/history`: the telemetry-history ring dump.
    History,
    /// Unknown paths/methods (404/405/parse errors).
    Other,
}

impl Endpoint {
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Infer => "infer",
            Endpoint::Upsert => "upsert",
            Endpoint::Overlay => "overlay",
            Endpoint::Healthz => "healthz",
            Endpoint::Statusz => "statusz",
            Endpoint::Metrics => "metrics",
            Endpoint::Traces => "traces",
            Endpoint::History => "history",
            Endpoint::Other => "other",
        }
    }
}

/// The overlay metric families: `(name, prometheus type, extractor)`.
/// One table shared by the single-tenant and fleet expositions so the
/// family names cannot drift apart.
type OverlayFamily = (&'static str, &'static str, fn(&OverlayStatus) -> u64);
const OVERLAY_FAMILIES: [OverlayFamily; 10] = [
    ("graphex_overlay_depth", "gauge", |s| s.depth as u64),
    ("graphex_overlay_journal_bytes", "gauge", |s| s.journal_bytes as u64),
    ("graphex_overlay_cap_bytes", "gauge", |s| s.cap_bytes as u64),
    ("graphex_overlay_leaves", "gauge", |s| s.leaves as u64),
    ("graphex_overlay_seq", "gauge", |s| s.seq),
    ("graphex_overlay_drained_upto", "gauge", |s| s.drained_upto),
    ("graphex_overlay_upserts_total", "counter", |s| s.upserts_applied),
    ("graphex_overlay_records_total", "counter", |s| s.records_applied),
    ("graphex_overlay_shed_total", "counter", |s| s.upserts_shed),
    ("graphex_overlay_drains_total", "counter", |s| s.drains),
];

/// Appends the overlay gauge/counter families for a set of labeled
/// [`OverlayStatus`] rows. Each row's label string is spliced verbatim
/// inside the braces (empty for single-tenant mode, `tenant="acme"` in
/// fleet mode); all rows of a family render under one `# TYPE` header.
pub fn render_overlay_families(rows: &[(String, OverlayStatus)], out: &mut String) {
    if rows.is_empty() {
        return;
    }
    for (name, kind, extract) in OVERLAY_FAMILIES {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, status) in rows {
            if labels.is_empty() {
                let _ = writeln!(out, "{name} {}", extract(status));
            } else {
                let _ = writeln!(out, "{name}{{{labels}}} {}", extract(status));
            }
        }
    }
}

/// Mutable server metrics, shared across workers.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    /// (endpoint, status) → responses sent.
    responses: Mutex<BTreeMap<(Endpoint, u16), u64>>,
    /// End-to-end request latency (read complete → response written),
    /// inference endpoints only.
    pub infer_latency: LatencyHistogram,
    /// Connections accepted (including ones later shed).
    pub connections_accepted: AtomicU64,
    /// Connections refused 429 at admission.
    pub connections_shed: AtomicU64,
}

impl HttpMetrics {
    pub fn record_response(&self, endpoint: Endpoint, status: u16) {
        let mut map = self.responses.lock().unwrap_or_else(PoisonError::into_inner);
        *map.entry((endpoint, status)).or_insert(0) += 1;
    }

    /// Total responses with a 5xx status (the "failed requests" gate).
    pub fn server_errors(&self) -> u64 {
        let map = self.responses.lock().unwrap_or_else(PoisonError::into_inner);
        map.iter().filter(|((_, s), _)| (500..600).contains(s)).map(|(_, n)| n).sum()
    }

    /// Responses tallied for one (endpoint, status) pair.
    pub fn responses_for(&self, endpoint: Endpoint, status: u16) -> u64 {
        let map = self.responses.lock().unwrap_or_else(PoisonError::into_inner);
        map.get(&(endpoint, status)).copied().unwrap_or(0)
    }

    /// Renders the HTTP-layer metric families only (request tallies,
    /// connection counters, queue gauge, latency histogram) — the part
    /// shared by the backend frontend and the cluster router, which has
    /// no [`ServeStats`] of its own.
    pub fn render_http_families(&self, queue_depth: usize, out: &mut String) {
        let _ = writeln!(out, "# TYPE graphex_http_requests_total counter");
        {
            let map = self.responses.lock().unwrap_or_else(PoisonError::into_inner);
            for ((endpoint, status), n) in map.iter() {
                let _ = writeln!(
                    out,
                    "graphex_http_requests_total{{endpoint=\"{}\",code=\"{status}\"}} {n}",
                    endpoint.label()
                );
            }
        }
        let _ = writeln!(out, "# TYPE graphex_http_connections_accepted_total counter");
        let _ = writeln!(
            out,
            "graphex_http_connections_accepted_total {}",
            self.connections_accepted.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE graphex_http_shed_total counter");
        let _ = writeln!(
            out,
            "graphex_http_shed_total {}",
            self.connections_shed.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "# TYPE graphex_http_queue_depth gauge");
        let _ = writeln!(out, "graphex_http_queue_depth {queue_depth}");

        self.infer_latency.render("graphex_request_duration_seconds", out);
    }

    /// Renders the fleet-mode `/metrics` exposition: HTTP-layer
    /// families plus per-tenant serving counters (every family carries
    /// a `tenant` label; cold tenants keep exporting their folded
    /// lifetime counters so eviction never zeroes a time series).
    pub fn render_prometheus_fleet(
        &self,
        fleet: &graphex_serving::TenantFleet,
        queue_depth: usize,
    ) -> String {
        let tenants = fleet.list();
        let mut out = String::with_capacity(2048 + tenants.len() * 512);
        self.render_http_families(queue_depth, &mut out);

        let _ = writeln!(out, "# TYPE graphex_fleet_resident gauge");
        let _ = writeln!(
            out,
            "graphex_fleet_resident {}",
            tenants.iter().filter(|t| t.resident).count()
        );
        let _ = writeln!(out, "# TYPE graphex_fleet_resident_cap gauge");
        let _ = writeln!(out, "graphex_fleet_resident_cap {}", fleet.config().resident_cap);
        let _ = writeln!(out, "# TYPE graphex_fleet_resident_bytes gauge");
        let _ = writeln!(
            out,
            "graphex_fleet_resident_bytes {}",
            tenants.iter().map(|t| t.resident_bytes).sum::<u64>()
        );

        let _ = writeln!(out, "# TYPE graphex_tenant_resident gauge");
        for t in &tenants {
            let _ = writeln!(
                out,
                "graphex_tenant_resident{{tenant=\"{}\"}} {}",
                t.name,
                u8::from(t.resident)
            );
        }
        let _ = writeln!(out, "# TYPE graphex_tenant_resident_bytes gauge");
        for t in &tenants {
            let _ = writeln!(
                out,
                "graphex_tenant_resident_bytes{{tenant=\"{}\"}} {}",
                t.name, t.resident_bytes
            );
        }
        let _ = writeln!(out, "# TYPE graphex_tenant_snapshot_version gauge");
        for t in &tenants {
            let _ = writeln!(
                out,
                "graphex_tenant_snapshot_version{{tenant=\"{}\"}} {}",
                t.name, t.snapshot_version
            );
        }
        let _ = writeln!(out, "# TYPE graphex_tenant_admissions_total counter");
        for t in &tenants {
            let _ = writeln!(
                out,
                "graphex_tenant_admissions_total{{tenant=\"{}\"}} {}",
                t.name, t.admissions
            );
        }
        let _ = writeln!(out, "# TYPE graphex_tenant_evictions_total counter");
        for t in &tenants {
            let _ = writeln!(
                out,
                "graphex_tenant_evictions_total{{tenant=\"{}\"}} {}",
                t.name, t.evictions
            );
        }
        let _ = writeln!(out, "# TYPE graphex_tenant_serve_source_total counter");
        for t in &tenants {
            for (label, n) in [
                ("store_hit", t.stats.store_hits),
                ("read_through", t.stats.read_throughs),
                ("coalesced", t.stats.coalesced),
                ("direct", t.stats.direct),
                ("unservable", t.stats.unservable),
            ] {
                let _ = writeln!(
                    out,
                    "graphex_tenant_serve_source_total{{tenant=\"{}\",source=\"{label}\"}} {n}",
                    t.name
                );
            }
        }
        let _ = writeln!(out, "# TYPE graphex_tenant_serve_outcome_total counter");
        for t in &tenants {
            for outcome in graphex_core::Outcome::ALL {
                let _ = writeln!(
                    out,
                    "graphex_tenant_serve_outcome_total{{tenant=\"{}\",outcome=\"{}\"}} {}",
                    t.name,
                    outcome.name(),
                    t.stats.outcomes.of(outcome)
                );
            }
        }
        let _ = writeln!(out, "# TYPE graphex_tenant_model_swaps_total counter");
        for t in &tenants {
            let _ = writeln!(
                out,
                "graphex_tenant_model_swaps_total{{tenant=\"{}\"}} {}",
                t.name, t.stats.model_swaps
            );
        }
        let overlay_rows: Vec<(String, OverlayStatus)> = tenants
            .iter()
            .filter_map(|t| {
                t.overlay.map(|o| (format!("tenant=\"{}\"", t.name), o))
            })
            .collect();
        render_overlay_families(&overlay_rows, &mut out);
        out
    }

    /// Renders the Prometheus text exposition for `/metrics`: HTTP-layer
    /// counters plus the serving-layer [`ServeStats`] passed in.
    pub fn render_prometheus(&self, serve: &ServeStats, queue_depth: usize) -> String {
        let mut out = String::with_capacity(2048);
        self.render_http_families(queue_depth, &mut out);

        // Serving-layer counters (same numbers /statusz reports).
        let _ = writeln!(out, "# TYPE graphex_serve_source_total counter");
        for (label, n) in [
            ("store_hit", serve.store_hits),
            ("read_through", serve.read_throughs),
            ("coalesced", serve.coalesced),
            ("direct", serve.direct),
            ("unservable", serve.unservable),
        ] {
            let _ = writeln!(out, "graphex_serve_source_total{{source=\"{label}\"}} {n}");
        }
        let _ = writeln!(out, "# TYPE graphex_serve_outcome_total counter");
        for outcome in graphex_core::Outcome::ALL {
            let _ = writeln!(
                out,
                "graphex_serve_outcome_total{{outcome=\"{}\"}} {}",
                outcome.name(),
                serve.outcomes.of(outcome)
            );
        }
        let _ = writeln!(out, "# TYPE graphex_serve_invalidated_total counter");
        let _ = writeln!(out, "graphex_serve_invalidated_total {}", serve.invalidated);
        let _ = writeln!(out, "# TYPE graphex_serve_overlay_invalidated_total counter");
        let _ = writeln!(
            out,
            "graphex_serve_overlay_invalidated_total {}",
            serve.overlay_invalidated
        );
        let _ = writeln!(out, "# TYPE graphex_shed_total counter");
        let _ = writeln!(out, "graphex_shed_total {}", serve.shed);
        let _ = writeln!(out, "# TYPE graphex_deadline_exceeded_total counter");
        let _ = writeln!(out, "graphex_deadline_exceeded_total {}", serve.deadline_exceeded);
        let _ = writeln!(out, "# TYPE graphex_in_flight gauge");
        let _ = writeln!(out, "graphex_in_flight {}", serve.in_flight);
        let _ = writeln!(out, "# TYPE graphex_model_snapshot_version gauge");
        let _ = writeln!(out, "graphex_model_snapshot_version {}", serve.snapshot_version);
        let _ = writeln!(out, "# TYPE graphex_model_swaps_total counter");
        let _ = writeln!(out, "graphex_model_swaps_total {}", serve.model_swaps);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_stats() -> ServeStats {
        ServeStats {
            store_hits: 3,
            read_throughs: 2,
            coalesced: 0,
            direct: 0,
            unservable: 1,
            invalidated: 0,
            overlay_invalidated: 0,
            shed: 4,
            deadline_exceeded: 0,
            in_flight: 2,
            outcomes: Default::default(),
            snapshot_version: 7,
            model_swaps: 1,
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(50)); // first bucket
        h.record(Duration::from_micros(300)); // <=0.0005
        h.record(Duration::from_secs(5)); // +Inf
        let mut out = String::new();
        h.render("x", &mut out);
        assert!(out.contains("x_bucket{le=\"0.0001\"} 1"), "{out}");
        assert!(out.contains("x_bucket{le=\"0.0005\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"1\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("x_count 3"), "{out}");
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_interpolates_and_clamps() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0.0); // empty
        for _ in 0..100 {
            h.record(Duration::from_micros(50)); // first bucket: (0, 0.0001]
        }
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.0 && p50 <= 0.0001, "{p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > p50 && p99 <= 0.0001, "{p99}");
        h.record(Duration::from_secs(5)); // lands in +Inf
        assert!(h.quantile(1.0) <= 1.0); // clamps to the last finite bound
    }

    #[test]
    fn labeled_series_share_one_type_header() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(50));
        let mut out = String::new();
        out.push_str("# TYPE stage_seconds histogram\n");
        h.render_series("stage_seconds", "stage=\"parse\"", &mut out);
        h.render_series("stage_seconds", "stage=\"ranking\"", &mut out);
        assert_eq!(out.matches("# TYPE").count(), 1);
        assert!(out.contains("stage_seconds_bucket{stage=\"parse\",le=\"0.0001\"} 1"), "{out}");
        assert!(out.contains("stage_seconds_count{stage=\"ranking\"} 1"), "{out}");
    }

    #[test]
    fn prometheus_rendering_includes_all_families() {
        let m = HttpMetrics::default();
        m.record_response(Endpoint::Infer, 200);
        m.record_response(Endpoint::Infer, 200);
        m.record_response(Endpoint::Other, 404);
        m.record_response(Endpoint::Infer, 503);
        m.connections_accepted.fetch_add(5, Ordering::Relaxed);
        m.connections_shed.fetch_add(1, Ordering::Relaxed);
        let text = m.render_prometheus(&empty_stats(), 3);
        assert!(text.contains("graphex_http_requests_total{endpoint=\"infer\",code=\"200\"} 2"));
        assert!(text.contains("graphex_http_requests_total{endpoint=\"other\",code=\"404\"} 1"));
        assert!(text.contains("graphex_http_shed_total 1"));
        assert!(text.contains("graphex_http_queue_depth 3"));
        assert!(text.contains("graphex_serve_source_total{source=\"store_hit\"} 3"));
        assert!(text.contains("graphex_serve_outcome_total{outcome=\"exact_leaf\"} 0"));
        assert!(text.contains("graphex_shed_total 4"));
        assert!(text.contains("graphex_in_flight 2"));
        assert!(text.contains("graphex_model_snapshot_version 7"));
        assert_eq!(m.server_errors(), 1);
        assert_eq!(m.responses_for(Endpoint::Infer, 503), 1);
        assert!(text.contains("graphex_serve_overlay_invalidated_total 0"));
    }

    #[test]
    fn overlay_families_render_bare_and_tenant_labelled() {
        let status = OverlayStatus {
            seq: 9,
            depth: 4,
            journal_bytes: 128,
            cap_bytes: 1024,
            upserts_applied: 3,
            ..Default::default()
        };
        let mut bare = String::new();
        render_overlay_families(&[(String::new(), status)], &mut bare);
        assert!(bare.contains("# TYPE graphex_overlay_depth gauge"), "{bare}");
        assert!(bare.contains("graphex_overlay_depth 4"), "{bare}");
        assert!(bare.contains("graphex_overlay_upserts_total 3"), "{bare}");

        let mut fleet = String::new();
        render_overlay_families(
            &[("tenant=\"acme\"".into(), status), ("tenant=\"bob\"".into(), OverlayStatus::default())],
            &mut fleet,
        );
        assert!(fleet.contains("graphex_overlay_seq{tenant=\"acme\"} 9"), "{fleet}");
        assert!(fleet.contains("graphex_overlay_seq{tenant=\"bob\"} 0"), "{fleet}");
        // One TYPE header per family, not per row.
        assert_eq!(fleet.matches("# TYPE graphex_overlay_seq gauge").count(), 1);

        let mut empty = String::new();
        render_overlay_families(&[], &mut empty);
        assert!(empty.is_empty());
    }
}

//! Bounded MPMC queue built on `Mutex` + `Condvar` (std-only): the accept
//! queue between the acceptor thread and the worker pool.
//!
//! Admission control lives in the push side: [`Bounded::try_push`] never
//! blocks — a full queue returns the item back so the acceptor can shed
//! load (HTTP 429) instead of buffering unboundedly. The pop side blocks,
//! and [`Bounded::close`] turns it into a *drain*: workers keep popping
//! queued items until empty, then observe `None` and exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking push; `Err` returns the item when the queue is full or
    /// closed (the caller sheds it).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// drained, so closing never discards admitted work.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start failing, poppers drain then get
    /// `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued (admission-pressure gauge).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_shed_when_full() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue sheds");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"), "closed queue refuses new work");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_consumers() {
        let q = Arc::new(Bounded::new(8));
        let total = 400u32;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..total / 4 {
                        let mut item = p * 1000 + i;
                        // Spin on a full queue: producers in this test must
                        // not shed, so every item is accounted for below.
                        while let Err(back) = q.try_push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all.len() as u32, total);
        all.dedup();
        assert_eq!(all.len() as u32, total, "every item delivered exactly once");
    }
}

//! # server — the GraphEx network frontend
//!
//! The paper's production system (Sec. IV-H, Fig. 7) serves keyphrases to
//! sellers through an inference API behind eBay's edge; until this crate
//! the reproduction stopped at the library boundary. `graphex-server`
//! puts the serving stack on a real socket: a **dependency-free
//! HTTP/1.1 server** on `std::net::TcpListener` with a fixed worker
//! pool, a bounded accept queue, and production edge behaviours as
//! first-class citizens:
//!
//! * **Admission control** — a full accept queue sheds load with `429`
//!   (plus a `ServeStats::shed` counter) instead of buffering until
//!   collapse.
//! * **Deadlines** — requests that outwait their budget answer `503`
//!   without touching the model.
//! * **Hot swap under traffic** — inference resolves the active model
//!   snapshot per request through [`graphex_serving::ModelWatch`], so
//!   registry publishes and rollbacks land with zero failed requests.
//! * **Graceful shutdown** — stop accepting, drain admitted connections,
//!   finish in-flight requests, join every thread.
//!
//! Endpoints: `POST /v1/infer` (single or batch JSON envelopes),
//! `GET /healthz`, `GET /statusz` (counters as JSON), and `GET /metrics`
//! (Prometheus text). The JSON codec ([`json`]) and the HTTP wire format
//! ([`http`]) are hand-rolled minimal modules — the workspace is hermetic,
//! so no serde/hyper — and [`client`] is the matching blocking client used
//! by the smoke check, the loadgen bench, and `graphex stats --server`.
//!
//! ```no_run
//! use graphex_serving::{KvStore, ServingApi};
//! use std::sync::Arc;
//!
//! # fn demo(model: Arc<graphex_core::GraphExModel>) -> std::io::Result<()> {
//! let api = Arc::new(ServingApi::new(model, Arc::new(KvStore::new()), 10));
//! let server = graphex_server::start(
//!     graphex_server::ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
//!     api,
//! )?;
//! println!("serving on http://{}", server.addr());
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

//! ## Scale-out serving
//!
//! One process is the paper's unit of serving, but the reproduction also
//! scales out: [`shardmap`] names N backends each owning the leaves with
//! `leaf % N == shard`, [`router`] is a scatter-gather edge that fans a
//! batch envelope out across those backends (with bounded retries,
//! failure ejection, and half-open re-admission), [`cluster`] boots the
//! whole arrangement in-process for `graphex cluster` and the tests, and
//! [`chaos`] is the deliberately misbehaving backend the chaos tests
//! point the router at.

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod history;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod router;
pub mod server;
pub mod shardmap;
pub mod trace;

pub use chaos::{ChaosBackend, ChaosMode};
pub use client::{HttpClient, Response};
pub use cluster::{ClusterConfig, ClusterError, LocalBackend, LocalCluster, ShardPayload};
pub use history::{sparkline, HistoryConfig, HistorySample, MetricsHistory};
pub use json::Json;
pub use metrics::{Endpoint, HttpMetrics, LatencyHistogram};
pub use router::{
    start_router, RouterConfig, RouterHandle, OUTCOME_BACKEND_UNAVAILABLE, SOURCE_ROUTER_DEGRADED,
};
pub use server::{start, start_fleet, Backend, ServerConfig, ServerHandle, MAX_BATCH};
pub use shardmap::ShardMap;
pub use trace::{
    parse_trace_id, BackendTrace, OwnedSpan, TraceConfig, TraceRecord, TraceRecorder, TRACE_HEADER,
};

//! HTTP/1.1 wire format over blocking sockets: request parsing with hard
//! limits (header bytes, header count, body size) and response writing.
//! Supports persistent connections (`keep-alive`) and `Content-Length`
//! bodies; `Transfer-Encoding: chunked` is rejected as unsupported rather
//! than mis-parsed. Every malformed input maps to a typed error — the
//! caller turns those into 4xx responses; nothing here panics.

use std::io::{BufRead, Write};

/// Hard cap on request-line + header bytes (hostile clients can't make the
/// server buffer unboundedly before the body limit even applies).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Hard cap on header count.
pub const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path only (query strings are split off into `query`).
    pub path: String,
    /// Raw query string (without `?`), if any.
    pub query: Option<String>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open after this
    /// request (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before sending a request
    /// (normal end of a keep-alive session).
    Closed,
    /// Socket error (including read timeouts on idle keep-alive
    /// connections).
    Io(std::io::Error),
    /// Syntactically invalid request → 400.
    Bad(&'static str),
    /// Declared body larger than the configured cap → 413.
    BodyTooLarge { declared: usize, max: usize },
    /// `Transfer-Encoding` other than identity → 501.
    UnsupportedTransferEncoding,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Bad(what) => write!(f, "malformed request: {what}"),
            Self::BodyTooLarge { declared, max } => {
                write!(f, "declared body of {declared} bytes exceeds cap of {max}")
            }
            Self::UnsupportedTransferEncoding => write!(f, "unsupported transfer encoding"),
        }
    }
}

/// Reads one request from a buffered stream. `max_body` caps the declared
/// `Content-Length`.
pub fn read_request<S: BufRead>(stream: &mut S, max_body: usize) -> Result<Request, ReadError> {
    let mut header_bytes = 0usize;

    let request_line = read_line(stream, &mut header_bytes)?;
    if request_line.is_empty() {
        return Err(ReadError::Bad("empty request line"));
    }
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().ok_or(ReadError::Bad("missing request target"))?.to_string();
    let version = parts.next().ok_or(ReadError::Bad("missing HTTP version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad("malformed request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ReadError::Bad("malformed method"));
    }
    if !target.starts_with('/') {
        return Err(ReadError::Bad("request target must be absolute path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, &mut header_bytes)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Bad("too many headers"));
        }
        let (name, value) = line.split_once(':').ok_or(ReadError::Bad("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Bad("malformed header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let mut request = Request { method, path, query, headers, body: Vec::new() };

    if let Some(te) = request.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(ReadError::UnsupportedTransferEncoding);
        }
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(raw) => raw.parse::<usize>().map_err(|_| ReadError::Bad("bad content-length"))?,
    };
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge { declared: content_length, max: max_body });
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        stream.read_exact(&mut body).map_err(ReadError::Io)?;
        request.body = body;
    }
    Ok(request)
}

/// Reads one CRLF- (or LF-) terminated line, enforcing the header byte cap.
fn read_line<S: BufRead>(stream: &mut S, consumed: &mut usize) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && *consumed == 0 {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Bad("unexpected end of headers"));
            }
            Ok(_) => {
                *consumed += 1;
                if *consumed > MAX_HEADER_BYTES {
                    return Err(ReadError::Bad("headers too large"));
                }
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| ReadError::Bad("non-UTF-8 header bytes"));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response. `extra_headers` are written verbatim (e.g.
/// `("Retry-After", "1")`). When `keep_alive` is false a
/// `Connection: close` header is sent, telling the client not to reuse
/// the connection.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !keep_alive {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_and_post() {
        let get = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!((get.method.as_str(), get.path.as_str()), ("GET", "/healthz"));
        assert!(get.body.is_empty());
        assert!(get.keep_alive());

        let post = parse(
            "POST /v1/infer?debug=1 HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(post.path, "/v1/infer");
        assert_eq!(post.query.as_deref(), Some("debug=1"));
        assert_eq!(post.body, b"abcd");
        assert!(!post.keep_alive());
        assert_eq!(post.header("CONTENT-length"), Some("4"));
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(parse("GARBAGE\r\n\r\n"), Err(ReadError::Bad(_))));
        assert!(matches!(parse("GET noslash HTTP/1.1\r\n\r\n"), Err(ReadError::Bad(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(ReadError::Bad(_))));
        assert!(matches!(parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"), Err(ReadError::Bad(_))));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Bad(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(ReadError::BodyTooLarge { declared: 9999, max: 1024 })
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn header_limits_are_enforced() {
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(parse(&many), Err(ReadError::Bad(_))));

        let huge = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(MAX_HEADER_BYTES));
        assert!(matches!(parse(&huge), Err(ReadError::Bad(_))));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "text/plain", b"shed", false, &[("Retry-After", "1")])
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nshed"));
    }
}

//! The flight recorder: per-request trace ids, completed-trace retention,
//! and the trace expositions (`/debug/traces`, the `/statusz` block, the
//! `graphex_stage_latency_seconds` families).
//!
//! The hot-path recording itself lives in [`graphex_core::StageTrace`]
//! (pooled inside `Scratch`); this module is the *sink*. A request checks
//! a span buffer out of the recorder's pool ([`TraceRecorder::begin`]),
//! the serving layers fill it, and [`TraceRecorder::finish`] converts it
//! into an immutable [`TraceRecord`]: spans rebased to offsets from the
//! request origin, per-stage latency histograms fed, and the record
//! pushed onto two fixed-size rings — every completed trace on the
//! recent ring, plus a second ring holding only requests that crossed
//! the slow threshold (so one traffic burst cannot evict the evidence of
//! a tail-latency incident).
//!
//! Trace ids travel as 16-hex-digit strings in the `x-graphex-trace`
//! header: the scatter-gather router mints one per edge request and
//! sends it to every involved backend, so a router-level record embeds
//! each backend's stage breakdown under the same id.

use crate::json::Json;
use crate::metrics::LatencyHistogram;
use graphex_core::{Stage, StageTrace};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The request header (and response echo) carrying the trace id.
pub const TRACE_HEADER: &str = "x-graphex-trace";

/// Flight-recorder knobs.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch: `false` turns the whole layer off (requests carry
    /// no ids, record nothing, and skip every clock read).
    pub enabled: bool,
    /// Completed traces retained on the recent ring.
    pub ring: usize,
    /// Traces retained on the slow ring.
    pub slow_ring: usize,
    /// End-to-end latency at or above which a trace also lands on the
    /// slow ring.
    pub slow_threshold: Duration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            ring: 256,
            slow_ring: 64,
            slow_threshold: Duration::from_millis(25),
        }
    }
}

/// One completed span, rebased to nanosecond offsets from the request
/// origin.
#[derive(Debug, Clone)]
pub struct OwnedSpan {
    pub stage: Stage,
    /// Offset of the span start from the request origin, in nanoseconds.
    pub start_nanos: u64,
    pub nanos: u64,
    pub detail: u64,
}

/// One backend's stage breakdown, embedded in a router-level trace.
#[derive(Debug, Clone)]
pub struct BackendTrace {
    pub shard: usize,
    pub addr: String,
    pub total_nanos: u64,
    pub spans: Vec<OwnedSpan>,
}

/// An immutable completed trace on the rings.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    pub id: u64,
    /// Fleet mode: the tenant the request resolved to.
    pub tenant: Option<String>,
    pub status: u16,
    /// Envelope entries answered (1 for single, batch size for batch).
    pub entries: usize,
    pub total_nanos: u64,
    pub spans: Vec<OwnedSpan>,
    pub backends: Vec<BackendTrace>,
}

impl TraceRecord {
    /// The wire form of the trace id (16 hex digits, as carried in the
    /// [`TRACE_HEADER`]).
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }

    /// Renders this record as the `/debug/traces` JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", Json::str(self.id_hex())),
            ("status", Json::uint(u64::from(self.status))),
            ("entries", Json::uint(self.entries as u64)),
            ("total_us", Json::num(self.total_nanos as f64 / 1e3)),
            ("spans", spans_json(&self.spans)),
        ];
        if let Some(tenant) = &self.tenant {
            fields.insert(1, ("tenant", Json::str(tenant.clone())));
        }
        if !self.backends.is_empty() {
            fields.push((
                "backends",
                Json::Arr(
                    self.backends
                        .iter()
                        .map(|b| {
                            Json::obj(vec![
                                ("shard", Json::uint(b.shard as u64)),
                                ("addr", Json::str(b.addr.clone())),
                                ("total_us", Json::num(b.total_nanos as f64 / 1e3)),
                                ("spans", spans_json(&b.spans)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }
}

fn spans_json(spans: &[OwnedSpan]) -> Json {
    Json::Arr(
        spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("stage", Json::str(s.stage.name())),
                    ("start_us", Json::num(s.start_nanos as f64 / 1e3)),
                    ("us", Json::num(s.nanos as f64 / 1e3)),
                    ("detail", Json::uint(s.detail)),
                ])
            })
            .collect(),
    )
}

/// Parses a `"trace"` object (as produced by [`TraceRecord::to_json`],
/// minus the ring bookkeeping) embedded in a backend's response into a
/// [`BackendTrace`]. Unknown stages are skipped, not errors — a rolling
/// deploy may briefly mix span vocabularies across the cluster.
pub fn backend_trace_from_json(shard: usize, addr: &str, trace: &Json) -> Option<BackendTrace> {
    let total_nanos = (trace.get("total_us")?.as_f64()? * 1e3) as u64;
    let mut spans = Vec::new();
    if let Some(arr) = trace.get("spans").and_then(Json::as_arr) {
        for span in arr {
            let Some(stage) = span.get("stage").and_then(Json::as_str).and_then(Stage::from_name)
            else {
                continue;
            };
            spans.push(OwnedSpan {
                stage,
                start_nanos: (span.get("start_us").and_then(Json::as_f64).unwrap_or(0.0) * 1e3)
                    as u64,
                nanos: (span.get("us").and_then(Json::as_f64).unwrap_or(0.0) * 1e3) as u64,
                detail: span.get("detail").and_then(Json::as_u64).unwrap_or(0),
            });
        }
    }
    Some(BackendTrace { shard, addr: addr.to_string(), total_nanos, spans })
}

/// Renders an in-progress trace as the embeddable `"trace"` object a
/// backend attaches to its response when the request carried a
/// [`TRACE_HEADER`] (id + end-to-end so far + spans so far). The router
/// parses it back with [`backend_trace_from_json`].
pub fn trace_json_inline(trace: &StageTrace, id: u64, total: Duration) -> Json {
    let t0 = trace.origin();
    let spans: Vec<Json> = trace
        .spans()
        .iter()
        .map(|s| {
            let start_nanos = t0
                .and_then(|t0| s.start.checked_duration_since(t0))
                .map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
            Json::obj(vec![
                ("stage", Json::str(s.stage.name())),
                ("start_us", Json::num(start_nanos as f64 / 1e3)),
                ("us", Json::num(s.nanos as f64 / 1e3)),
                ("detail", Json::uint(s.detail)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("id", Json::str(format!("{id:016x}"))),
        ("total_us", Json::num(total.as_nanos() as f64 / 1e3)),
        ("spans", Json::Arr(spans)),
    ])
}

/// Parses a [`TRACE_HEADER`] value (16 hex digits) into a trace id.
pub fn parse_trace_id(value: &str) -> Option<u64> {
    let value = value.trim();
    if value.is_empty() || value.len() > 16 {
        return None;
    }
    u64::from_str_radix(value, 16).ok()
}

/// splitmix64: cheap, well-mixed id stream from a counter.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-process trace sink (one per server, one per router).
#[derive(Debug)]
pub struct TraceRecorder {
    config: TraceConfig,
    seed: u64,
    counter: AtomicU64,
    recorded: AtomicU64,
    slow: AtomicU64,
    stage_hist: [LatencyHistogram; Stage::ALL.len()],
    ring: Mutex<VecDeque<Arc<TraceRecord>>>,
    slow_ring: Mutex<VecDeque<Arc<TraceRecord>>>,
    /// Span-buffer pool for request paths with no `Scratch` of their own
    /// (the router, the frontend's outer loop).
    pool: Mutex<Vec<StageTrace>>,
}

impl TraceRecorder {
    pub fn new(config: TraceConfig) -> Self {
        // Seed the id stream per process so two backends never mint the
        // same ids (the router's ids still win end-to-end: backends echo
        // the header when present).
        let seed = mix(u64::from(std::process::id())
            ^ (std::ptr::addr_of!(BUCKET_SEED_ANCHOR) as u64).rotate_left(17));
        Self {
            config,
            seed,
            counter: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            stage_hist: std::array::from_fn(|_| LatencyHistogram::default()),
            ring: Mutex::new(VecDeque::new()),
            slow_ring: Mutex::new(VecDeque::new()),
            pool: Mutex::new(Vec::new()),
        }
    }

    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Mints a fresh trace id.
    pub fn mint_id(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // Never 0: 0 reads as "no trace" in rendered output.
        mix(self.seed ^ n) | 1
    }

    /// Checks an armed span buffer out of the pool for a request whose
    /// origin is `t0`, minting an id unless the caller propagates one
    /// from the [`TRACE_HEADER`].
    pub fn begin(&self, t0: Instant, header_id: Option<u64>) -> (StageTrace, u64) {
        let mut trace = self.lock_pool().pop().unwrap_or_default();
        trace.arm(t0);
        (trace, header_id.unwrap_or_else(|| self.mint_id()))
    }

    /// Completes a trace: rebases spans to offsets from the origin, feeds
    /// the per-stage histograms, pushes the record onto the rings, and
    /// returns the span buffer to the pool. Returns the record so the
    /// caller can embed it in the response.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &self,
        mut trace: StageTrace,
        id: u64,
        tenant: Option<String>,
        status: u16,
        entries: usize,
        total: Duration,
        backends: Vec<BackendTrace>,
    ) -> Arc<TraceRecord> {
        let t0 = trace.origin().unwrap_or_else(Instant::now);
        let spans: Vec<OwnedSpan> = trace
            .spans()
            .iter()
            .map(|s| OwnedSpan {
                stage: s.stage,
                start_nanos: s
                    .start
                    .checked_duration_since(t0)
                    .map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64),
                nanos: s.nanos,
                detail: s.detail,
            })
            .collect();
        for span in &spans {
            self.stage_hist[span.stage.index()].record(Duration::from_nanos(span.nanos));
        }
        for backend in &backends {
            for span in &backend.spans {
                self.stage_hist[span.stage.index()].record(Duration::from_nanos(span.nanos));
            }
        }
        trace.disarm();
        self.lock_pool().push(trace);

        let record = Arc::new(TraceRecord {
            id,
            tenant,
            status,
            entries,
            total_nanos: total.as_nanos().min(u128::from(u64::MAX)) as u64,
            spans,
            backends,
        });
        self.recorded.fetch_add(1, Ordering::Relaxed);
        push_ring(&self.ring, Arc::clone(&record), self.config.ring);
        if total >= self.config.slow_threshold {
            self.slow.fetch_add(1, Ordering::Relaxed);
            push_ring(&self.slow_ring, Arc::clone(&record), self.config.slow_ring);
        }
        record
    }

    /// Traces completed since boot.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces that crossed the slow threshold since boot.
    pub fn slow_count(&self) -> u64 {
        self.slow.load(Ordering::Relaxed)
    }

    /// Snapshot of a ring, newest first.
    pub fn recent(&self, slow: bool) -> Vec<Arc<TraceRecord>> {
        let ring = if slow { &self.slow_ring } else { &self.ring };
        let guard = ring.lock().unwrap_or_else(PoisonError::into_inner);
        guard.iter().rev().cloned().collect()
    }

    /// The `GET /debug/traces` body. Query grammar: `slow` selects the
    /// slow ring, `min_us=N` keeps traces at least that long end-to-end,
    /// `stage=<name>` keeps traces carrying a span of that stage (own or
    /// embedded backend spans — so a router waterfall query can target
    /// one hot stage), `limit=N` caps the count (newest first).
    pub fn render_debug(&self, query: Option<&str>) -> String {
        let mut slow = false;
        let mut min_us = 0u64;
        let mut limit = usize::MAX;
        let mut stage: Option<Stage> = None;
        let mut stage_raw = String::new();
        for part in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').unwrap_or((part, ""));
            match key {
                "slow" => slow = value.is_empty() || value == "1" || value == "true",
                "min_us" => min_us = value.parse().unwrap_or(0),
                "limit" => limit = value.parse().unwrap_or(usize::MAX),
                "stage" => {
                    stage = Stage::from_name(value);
                    stage_raw = value.to_string();
                }
                _ => {}
            }
        }
        // An unknown stage name filters everything (an empty, honest
        // answer) rather than silently ignoring the filter.
        let unknown_stage = !stage_raw.is_empty() && stage.is_none();
        let traces: Vec<Json> = self
            .recent(slow)
            .into_iter()
            .filter(|t| t.total_nanos >= min_us.saturating_mul(1000))
            .filter(|t| match stage {
                None => !unknown_stage,
                Some(stage) => {
                    t.spans.iter().any(|s| s.stage == stage)
                        || t.backends
                            .iter()
                            .any(|b| b.spans.iter().any(|s| s.stage == stage))
                }
            })
            .take(limit)
            .map(|t| t.to_json())
            .collect();
        Json::obj(vec![
            ("ring", Json::str(if slow { "slow" } else { "recent" })),
            ("recorded", Json::uint(self.recorded())),
            ("slow", Json::uint(self.slow_count())),
            (
                "slow_threshold_us",
                Json::num(self.config.slow_threshold.as_nanos() as f64 / 1e3),
            ),
            ("traces", Json::Arr(traces)),
        ])
        .render()
    }

    /// The `/statusz` trace block: ring occupancy plus per-stage count
    /// and quantile estimates.
    pub fn statusz_json(&self) -> Json {
        let ring_len = self.ring.lock().unwrap_or_else(PoisonError::into_inner).len();
        let slow_len = self.slow_ring.lock().unwrap_or_else(PoisonError::into_inner).len();
        let stages: Vec<(&str, Json)> = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let hist = &self.stage_hist[stage.index()];
                if hist.count() == 0 {
                    return None;
                }
                Some((
                    stage.name(),
                    Json::obj(vec![
                        ("count", Json::uint(hist.count())),
                        ("p50_us", Json::num(hist.quantile(0.50) * 1e6)),
                        ("p90_us", Json::num(hist.quantile(0.90) * 1e6)),
                        ("p99_us", Json::num(hist.quantile(0.99) * 1e6)),
                    ]),
                ))
            })
            .collect();
        Json::obj(vec![
            ("enabled", Json::Bool(self.config.enabled)),
            ("recorded", Json::uint(self.recorded())),
            ("slow", Json::uint(self.slow_count())),
            ("ring", Json::uint(ring_len as u64)),
            ("slow_ring", Json::uint(slow_len as u64)),
            (
                "slow_threshold_us",
                Json::num(self.config.slow_threshold.as_nanos() as f64 / 1e3),
            ),
            ("stages", Json::obj(stages)),
        ])
    }

    /// Per-stage `(name, count, p50 secs, p99 secs)` summaries for every
    /// stage that has recorded at least one span — what the history
    /// sampler snapshots into its ring each tick.
    pub fn stage_summaries(&self) -> Vec<(&'static str, u64, f64, f64)> {
        Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let hist = &self.stage_hist[stage.index()];
                let count = hist.count();
                (count > 0).then(|| {
                    (stage.name(), count, hist.quantile(0.50), hist.quantile(0.99))
                })
            })
            .collect()
    }

    /// Appends the trace metric families to a `/metrics` exposition: the
    /// recorder counters plus one `graphex_stage_latency_seconds`
    /// histogram family with a `stage` label per recorded stage.
    pub fn render_metrics(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE graphex_traces_recorded_total counter");
        let _ = writeln!(out, "graphex_traces_recorded_total {}", self.recorded());
        let _ = writeln!(out, "# TYPE graphex_traces_slow_total counter");
        let _ = writeln!(out, "graphex_traces_slow_total {}", self.slow_count());
        let _ = writeln!(out, "# TYPE graphex_stage_latency_seconds histogram");
        for stage in Stage::ALL {
            let hist = &self.stage_hist[stage.index()];
            if hist.count() == 0 {
                continue;
            }
            hist.render_series(
                "graphex_stage_latency_seconds",
                &format!("stage=\"{}\"", stage.name()),
                out,
            );
        }
    }

    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<StageTrace>> {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Address anchor for the id seed (see [`TraceRecorder::new`]).
static BUCKET_SEED_ANCHOR: u8 = 0;

fn push_ring(ring: &Mutex<VecDeque<Arc<TraceRecord>>>, record: Arc<TraceRecord>, cap: usize) {
    if cap == 0 {
        return;
    }
    let mut guard = ring.lock().unwrap_or_else(PoisonError::into_inner);
    if guard.len() >= cap {
        guard.pop_front();
    }
    guard.push_back(record);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(slow_ms: u64) -> TraceRecorder {
        TraceRecorder::new(TraceConfig {
            enabled: true,
            ring: 4,
            slow_ring: 2,
            slow_threshold: Duration::from_millis(slow_ms),
        })
    }

    fn finish_one(r: &TraceRecorder, total: Duration) -> Arc<TraceRecord> {
        let t0 = Instant::now();
        let (mut trace, id) = r.begin(t0, None);
        trace.record_span(Stage::Parse, t0, Duration::from_micros(10), 0);
        trace.record_span(Stage::Serialize, t0, Duration::from_micros(5), 0);
        r.finish(trace, id, None, 200, 1, total, Vec::new())
    }

    #[test]
    fn ids_are_unique_nonzero_and_hex_round_trip() {
        let r = recorder(25);
        let a = r.mint_id();
        let b = r.mint_id();
        assert_ne!(a, b);
        assert_ne!(a, 0);
        let hex = format!("{a:016x}");
        assert_eq!(parse_trace_id(&hex), Some(a));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("zz"), None);
        assert_eq!(parse_trace_id("00000000000000001"), None); // 17 digits
    }

    #[test]
    fn rings_cap_and_order_newest_first() {
        let r = recorder(1000);
        let ids: Vec<u64> =
            (0..6).map(|_| finish_one(&r, Duration::from_micros(100)).id).collect();
        let recent = r.recent(false);
        assert_eq!(recent.len(), 4); // capped
        assert_eq!(recent[0].id, ids[5]); // newest first
        assert_eq!(recent[3].id, ids[2]);
        assert!(r.recent(true).is_empty()); // nothing crossed 1s
        assert_eq!(r.recorded(), 6);
        assert_eq!(r.slow_count(), 0);
    }

    #[test]
    fn slow_ring_captures_threshold_crossers() {
        let r = recorder(1);
        finish_one(&r, Duration::from_micros(100)); // fast
        let slow = finish_one(&r, Duration::from_millis(5));
        assert_eq!(r.slow_count(), 1);
        let ring = r.recent(true);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].id, slow.id);
    }

    #[test]
    fn debug_rendering_filters_by_min_us_and_limit() {
        let r = recorder(1);
        finish_one(&r, Duration::from_micros(50));
        finish_one(&r, Duration::from_millis(10));
        let all = r.render_debug(None);
        assert_eq!(all.matches("\"id\"").count(), 2, "{all}");
        let filtered = r.render_debug(Some("min_us=1000"));
        assert_eq!(filtered.matches("\"id\"").count(), 1, "{filtered}");
        let slow = r.render_debug(Some("slow&limit=1"));
        assert_eq!(slow.matches("\"id\"").count(), 1, "{slow}");
        assert!(slow.contains("\"ring\": \"slow\"") || slow.contains("\"ring\":\"slow\""), "{slow}");
        // Valid JSON end to end.
        assert!(crate::json::parse(&all).is_ok());
    }

    #[test]
    fn finish_feeds_stage_histograms_and_statusz() {
        let r = recorder(25);
        finish_one(&r, Duration::from_micros(200));
        let block = r.statusz_json().render();
        assert!(block.contains("\"parse\""), "{block}");
        assert!(block.contains("\"serialize\""), "{block}");
        assert!(!block.contains("\"traversal\""), "{block}"); // unrecorded stage omitted
        let mut metrics = String::new();
        r.render_metrics(&mut metrics);
        assert_eq!(metrics.matches("# TYPE graphex_stage_latency_seconds").count(), 1);
        assert!(
            metrics.contains("graphex_stage_latency_seconds_count{stage=\"parse\"} 1"),
            "{metrics}"
        );
    }

    #[test]
    fn backend_trace_round_trips_through_json() {
        let r = recorder(25);
        let t0 = Instant::now();
        let (mut trace, id) = r.begin(t0, parse_trace_id("00000000000000ab"));
        assert_eq!(id, 0xab);
        trace.record_span(Stage::Traversal, t0, Duration::from_micros(40), 0);
        let record = r.finish(trace, id, None, 200, 1, Duration::from_micros(90), Vec::new());
        let json = record.to_json();
        let parsed = backend_trace_from_json(2, "127.0.0.1:9", &json).expect("parsable");
        assert_eq!(parsed.shard, 2);
        assert_eq!(parsed.total_nanos, 90_000);
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.spans[0].stage, Stage::Traversal);
        assert_eq!(parsed.spans[0].nanos, 40_000);
    }
}

//! Minimal blocking HTTP/1.1 client for loopback tooling: the smoke
//! check, the loadgen bench, `graphex stats --server`, and the suite's
//! integration tests. Keep-alive by default; one in-flight request per
//! connection (no pipelining).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One persistent connection to a server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connects with a timeout on connect, read, and write.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> std::io::Result<Self> {
        let host = addr.to_string();
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        let stream = TcpStream::connect_timeout(&resolved, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream, host })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.host);
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body)?;
        }
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

fn bad(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn read_response<S: BufRead>(stream: &mut S) -> std::io::Result<Response> {
    let mut status_line = String::new();
    if stream.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed before responding",
        ));
    }
    let mut parts = status_line.trim_end().splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 =
        parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if stream.read_line(&mut line)? == 0 {
            return Err(bad("truncated headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }

    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| bad("response without content-length"))?;
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_wire_format() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nContent-Type: text/plain\r\nRetry-After: 1\r\nContent-Length: 5\r\n\r\nshed\n";
        let response = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(response.text(), "shed\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_response(&mut BufReader::new(&b"SPDY/9 lol\r\n\r\n"[..])).is_err());
        assert!(read_response(&mut BufReader::new(&b""[..])).is_err());
        assert!(
            read_response(&mut BufReader::new(&b"HTTP/1.1 200 OK\r\n\r\n"[..])).is_err(),
            "missing content-length"
        );
    }
}

//! Minimal blocking HTTP/1.1 client for loopback tooling: the smoke
//! check, the loadgen bench, `graphex stats --server`, and the suite's
//! integration tests. Keep-alive by default; one in-flight request per
//! connection (no pipelining).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Default cap on a response body's declared `Content-Length`. Generous
/// for loopback tooling (a `/metrics` scrape is kilobytes); the router
/// sets a tighter cap per backend connection.
pub const DEFAULT_MAX_RESPONSE_BYTES: usize = 64 << 20;

/// One persistent connection to a server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
    max_response_bytes: usize,
}

impl HttpClient {
    /// Connects with a timeout on connect, read, and write.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> std::io::Result<Self> {
        Self::connect_with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(10))
    }

    /// [`connect`](Self::connect) with explicit connect and read/write
    /// timeouts (the router's backend deadline).
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs + std::fmt::Display,
        connect_timeout: Duration,
        rw_timeout: Duration,
    ) -> std::io::Result<Self> {
        let host = addr.to_string();
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
        let stream = TcpStream::connect_timeout(&resolved, connect_timeout)?;
        stream.set_read_timeout(Some(rw_timeout))?;
        stream.set_write_timeout(Some(rw_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream, host, max_response_bytes: DEFAULT_MAX_RESPONSE_BYTES })
    }

    /// Caps the declared `Content-Length` this client will buffer for a
    /// response; a larger declaration errors instead of allocating. The
    /// cap protects against a misbehaving or hijacked server — the body
    /// allocation happens *before* any byte of it is read.
    pub fn set_max_response_bytes(&mut self, cap: usize) {
        self.max_response_bytes = cap.max(1);
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None, &[])
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(body.as_bytes()), &[])
    }

    /// [`post_json`](Self::post_json) with extra request headers — how
    /// the router forwards `x-graphex-trace` to its backends.
    pub fn post_json_with_headers(
        &mut self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<Response> {
        self.request("POST", path, Some(body.as_bytes()), headers)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.host);
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body)?;
        }
        self.writer.flush()?;
        read_response(&mut self.reader, self.max_response_bytes)
    }
}

fn bad(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

fn read_response<S: BufRead>(stream: &mut S, max_body: usize) -> std::io::Result<Response> {
    let mut status_line = String::new();
    if stream.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed before responding",
        ));
    }
    let mut parts = status_line.trim_end().splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 =
        parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if stream.read_line(&mut line)? == 0 {
            return Err(bad("truncated headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
    }

    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| bad("response without content-length"))?;
    if content_length > max_body {
        // Refuse before allocating: an untrusted Content-Length must not
        // size a buffer.
        return Err(bad("response body exceeds cap"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_wire_format() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nContent-Type: text/plain\r\nRetry-After: 1\r\nContent-Length: 5\r\n\r\nshed\n";
        let response = read_response(&mut BufReader::new(raw.as_bytes()), 1024).unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(response.text(), "shed\n");
    }

    #[test]
    fn rejects_garbage() {
        let parse = |raw: &[u8]| read_response(&mut BufReader::new(raw), 1024);
        assert!(parse(b"SPDY/9 lol\r\n\r\n").is_err());
        assert!(parse(b"").is_err());
        assert!(parse(b"HTTP/1.1 200 OK\r\n\r\n").is_err(), "missing content-length");
    }

    #[test]
    fn oversized_declared_body_errors_before_allocating() {
        // A hostile Content-Length must not size a buffer: usize::MAX
        // here would abort the process if the allocation were attempted.
        let raw = format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        let err =
            read_response(&mut BufReader::new(raw.as_bytes()), 1024).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // At the cap is fine, one past it is not.
        let ok = "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
        assert!(read_response(&mut BufReader::new(ok.as_bytes()), 4).is_ok());
        assert!(read_response(&mut BufReader::new(ok.as_bytes()), 3).is_err());
    }
}

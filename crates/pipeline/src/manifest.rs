//! The build manifest (`BUILDINFO`): per-leaf content fingerprints stored
//! next to a snapshot so the *next* build can reconstruct only what
//! changed.
//!
//! Plain `key value` text lines, same philosophy as the registry's
//! `MANIFEST` (forward-compatible: unknown keys are ignored):
//!
//! ```text
//! graphex-buildinfo 1
//! config <16-hex config fingerprint>
//! snapshot_checksum <16-hex FNV-1a of the whole model.gexm>
//! fallback <16-hex corpus fingerprint | none>
//! records_in <raw records ingested>
//! parse_errors <records skipped as unparsable>
//! curation <input> <kept> <low_search> <token_bounds> <leaf_cap> <merged>
//! shard <index> <of>            (per-shard snapshots only)
//! leaf <leaf id> <16-hex fingerprint of the leaf's curated records>
//! leaf …
//! ```

use graphex_core::CurationStats;
use std::collections::BTreeMap;
use std::path::Path;

/// File name used both inside registry version directories and (with a
/// `.buildinfo` suffix convention) next to bare snapshot files.
pub const BUILDINFO_FILE: &str = "BUILDINFO";

/// Parsed `BUILDINFO`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildManifest {
    /// Fingerprint of everything in [`graphex_core::GraphExConfig`] that
    /// affects the built bytes; delta reuse requires an exact match.
    pub config_fingerprint: u64,
    /// FNV-1a over the whole serialized snapshot this manifest describes
    /// (the same value the registry `MANIFEST` records) — lets tooling
    /// cross-check that a snapshot really is the manifest's build.
    pub snapshot_checksum: u64,
    /// Fingerprint of the full curated corpus (what the meta-fallback
    /// graph depends on); `None` when no fallback was built.
    pub fallback_fingerprint: Option<u64>,
    /// Raw records ingested (before curation).
    pub records_in: u64,
    /// Records skipped as unparsable during ingestion.
    pub parse_errors: u64,
    /// What curation kept/dropped for this build.
    pub curation: CurationStats,
    /// `(index, of)` when this manifest describes one shard of a
    /// leaf-partitioned emission (`leaf % of == index`); `None` for a
    /// monolithic snapshot. Old parsers ignore the line (forward
    /// compatibility), so a shard snapshot is still a valid delta base.
    pub shard: Option<(u32, u32)>,
    /// Leaf id → fingerprint of the leaf's curated records.
    pub leaves: BTreeMap<u32, u64>,
}

impl BuildManifest {
    /// Serializes to `BUILDINFO` text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graphex-buildinfo 1");
        let _ = writeln!(out, "config {:016x}", self.config_fingerprint);
        let _ = writeln!(out, "snapshot_checksum {:016x}", self.snapshot_checksum);
        match self.fallback_fingerprint {
            Some(fp) => {
                let _ = writeln!(out, "fallback {fp:016x}");
            }
            None => {
                let _ = writeln!(out, "fallback none");
            }
        }
        let _ = writeln!(out, "records_in {}", self.records_in);
        let _ = writeln!(out, "parse_errors {}", self.parse_errors);
        let c = &self.curation;
        let _ = writeln!(
            out,
            "curation {} {} {} {} {} {}",
            c.input, c.kept, c.dropped_low_search, c.dropped_token_bounds, c.dropped_leaf_cap,
            c.merged_duplicates
        );
        if let Some((index, of)) = self.shard {
            let _ = writeln!(out, "shard {index} {of}");
        }
        for (leaf, fp) in &self.leaves {
            let _ = writeln!(out, "leaf {leaf} {fp:016x}");
        }
        out
    }

    /// Parses `BUILDINFO` text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut manifest = BuildManifest {
            config_fingerprint: 0,
            snapshot_checksum: 0,
            fallback_fingerprint: None,
            records_in: 0,
            parse_errors: 0,
            curation: CurationStats::default(),
            shard: None,
            leaves: BTreeMap::new(),
        };
        let mut versioned = false;
        let mut saw_config = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            let fail = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            match key {
                "graphex-buildinfo" => {
                    if value.split_whitespace().next() != Some("1") {
                        return Err(fail("unsupported buildinfo version"));
                    }
                    versioned = true;
                }
                "config" => {
                    manifest.config_fingerprint =
                        u64::from_str_radix(value, 16).map_err(|_| fail("bad fingerprint"))?;
                    saw_config = true;
                }
                "snapshot_checksum" => {
                    manifest.snapshot_checksum =
                        u64::from_str_radix(value, 16).map_err(|_| fail("bad checksum"))?;
                }
                "fallback" => {
                    manifest.fallback_fingerprint = if value == "none" {
                        None
                    } else {
                        Some(u64::from_str_radix(value, 16).map_err(|_| fail("bad fingerprint"))?)
                    };
                }
                "records_in" => {
                    manifest.records_in = value.parse().map_err(|_| fail("bad count"))?;
                }
                "parse_errors" => {
                    manifest.parse_errors = value.parse().map_err(|_| fail("bad count"))?;
                }
                "curation" => {
                    let nums: Vec<usize> = value
                        .split_whitespace()
                        .map(str::parse)
                        .collect::<Result<_, _>>()
                        .map_err(|_| fail("bad curation stats"))?;
                    if nums.len() != 6 {
                        return Err(fail("curation stats need 6 fields"));
                    }
                    manifest.curation = CurationStats {
                        input: nums[0],
                        kept: nums[1],
                        dropped_low_search: nums[2],
                        dropped_token_bounds: nums[3],
                        dropped_leaf_cap: nums[4],
                        merged_duplicates: nums[5],
                    };
                }
                "shard" => {
                    let (index, of) = value.split_once(' ').ok_or_else(|| fail("bad shard line"))?;
                    let index: u32 = index.parse().map_err(|_| fail("bad shard index"))?;
                    let of: u32 = of.parse().map_err(|_| fail("bad shard count"))?;
                    if of == 0 || index >= of {
                        return Err(fail("shard index out of range"));
                    }
                    manifest.shard = Some((index, of));
                }
                "leaf" => {
                    let (id, fp) = value.split_once(' ').ok_or_else(|| fail("bad leaf line"))?;
                    let id: u32 = id.parse().map_err(|_| fail("bad leaf id"))?;
                    let fp = u64::from_str_radix(fp, 16).map_err(|_| fail("bad fingerprint"))?;
                    if manifest.leaves.insert(id, fp).is_some() {
                        return Err(fail("duplicate leaf"));
                    }
                }
                _ => {} // forward-compatible
            }
        }
        if !versioned {
            return Err("missing graphex-buildinfo header".into());
        }
        if !saw_config {
            return Err("missing config fingerprint".into());
        }
        Ok(manifest)
    }

    /// Reads and parses a `BUILDINFO` file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The conventional `BUILDINFO` location for a snapshot path: the file
/// itself inside a registry version directory, a `.buildinfo`-suffixed
/// sibling for a bare `model.gexm`.
pub fn buildinfo_path_for(snapshot: &Path) -> std::path::PathBuf {
    match snapshot.parent() {
        Some(dir) if dir.join(BUILDINFO_FILE).is_file() => dir.join(BUILDINFO_FILE),
        _ => {
            let mut name = snapshot.file_name().unwrap_or_default().to_os_string();
            name.push(".buildinfo");
            snapshot.with_file_name(name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BuildManifest {
        BuildManifest {
            config_fingerprint: 0xDEAD_BEEF_0123_4567,
            snapshot_checksum: 0x0FED_CBA9_8765_4321,
            fallback_fingerprint: Some(42),
            records_in: 1000,
            parse_errors: 3,
            curation: CurationStats {
                input: 1000,
                kept: 800,
                dropped_low_search: 150,
                dropped_token_bounds: 30,
                dropped_leaf_cap: 0,
                merged_duplicates: 20,
            },
            shard: None,
            leaves: [(7, 0x1111), (9, 0x2222)].into_iter().collect(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let manifest = sample();
        assert_eq!(BuildManifest::parse(&manifest.render()).unwrap(), manifest);

        let mut no_fallback = sample();
        no_fallback.fallback_fingerprint = None;
        assert_eq!(BuildManifest::parse(&no_fallback.render()).unwrap(), no_fallback);

        let mut sharded = sample();
        sharded.shard = Some((2, 3));
        assert_eq!(BuildManifest::parse(&sharded.render()).unwrap(), sharded);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(BuildManifest::parse("").is_err(), "missing header");
        assert!(BuildManifest::parse("graphex-buildinfo 2\nconfig 0\n").is_err(), "bad version");
        assert!(BuildManifest::parse("graphex-buildinfo 1\n").is_err(), "missing config");
        let dup = "graphex-buildinfo 1\nconfig 0\nleaf 1 aa\nleaf 1 bb\n";
        assert!(BuildManifest::parse(dup).is_err(), "duplicate leaf");
        let bad = "graphex-buildinfo 1\nconfig zz\n";
        assert!(BuildManifest::parse(bad).is_err(), "bad hex");
        let shard = "graphex-buildinfo 1\nconfig 0\nshard 3 3\n";
        assert!(BuildManifest::parse(shard).is_err(), "shard index out of range");
        let shard = "graphex-buildinfo 1\nconfig 0\nshard 0 0\n";
        assert!(BuildManifest::parse(shard).is_err(), "zero shard count");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let text = format!("{}future_key some value\n", sample().render());
        assert_eq!(BuildManifest::parse(&text).unwrap(), sample());
    }
}
